"""Site-level network characteristics.

RTTs to the submitting site (nancy) are taken from the paper's figure
legends — these are what P2P-MPI itself measured, and they are the only
latencies that influence allocation:

=========  ==========
Site       RTT to nancy (ms)
=========  ==========
nancy      0.087 (LAN)
lyon       10.576
rennes     11.612
bordeaux   12.674
grenoble   13.204
sophia     17.167
=========  ==========

(§5 also quotes ICMP frontal-to-frontal values — lyon 10.5, rennes
11.6, bordeaux 12.6, grenoble 13.2, sophia 17.1 — which the P2P-MPI
measurements track closely.)

Bandwidth: "10 Gbps everywhere except the link to bordeaux which is at
1 Gbps".
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["SITE_ORDER", "SITE_RTT_MS_FROM_NANCY", "ICMP_RTT_MS_FROM_NANCY",
           "wan_bandwidth_bps", "site_rtt_matrix"]

#: Sites ordered by RTT to nancy (the cached-list sort order, noise-free).
SITE_ORDER = ["nancy", "lyon", "rennes", "bordeaux", "grenoble", "sophia"]

#: P2P-MPI-measured RTT to nancy, ms (figure legends).
SITE_RTT_MS_FROM_NANCY: Dict[str, float] = {
    "nancy": 0.087,
    "lyon": 10.576,
    "rennes": 11.612,
    "bordeaux": 12.674,
    "grenoble": 13.204,
    "sophia": 17.167,
}

#: ICMP frontal-host RTTs quoted in §5, ms (for the measurement-accuracy
#: ablation: P2P-MPI RTT need not match ICMP, only preserve ranking).
ICMP_RTT_MS_FROM_NANCY: Dict[str, float] = {
    "nancy": 0.0,
    "lyon": 10.5,
    "rennes": 11.6,
    "bordeaux": 12.6,
    "grenoble": 13.2,
    "sophia": 17.1,
}


def wan_bandwidth_bps(site_a: str, site_b: str) -> float:
    """10 Gb/s backbone, 1 Gb/s on any path touching bordeaux."""
    if site_a == site_b:
        raise ValueError("wan_bandwidth_bps is for distinct sites")
    if "bordeaux" in (site_a, site_b):
        return 1.0e9
    return 10.0e9


#: Shared-backbone overlap for inter-site paths not involving nancy.
#: Grid'5000 sites interconnect over RENATER through a common segment;
#: a pure hub-through-nancy sum would double-count it.  rtt(a, b) =
#: max(floor, r_a + r_b - overlap).
BACKBONE_OVERLAP_MS = 8.0
MIN_WAN_RTT_MS = 2.0


def site_rtt_matrix(
    overlap_ms: float = BACKBONE_OVERLAP_MS,
    floor_ms: float = MIN_WAN_RTT_MS,
) -> Dict[Tuple[str, str], float]:
    """Pairwise site RTTs: figure-legend values to nancy, overlap-
    corrected backbone approximation for the other pairs."""
    rtt: Dict[Tuple[str, str], float] = {}
    for site, value in SITE_RTT_MS_FROM_NANCY.items():
        if site != "nancy":
            rtt[("nancy", site)] = value
    names = [s for s in SITE_ORDER if s != "nancy"]
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            rtt[(a, b)] = max(
                floor_ms,
                SITE_RTT_MS_FROM_NANCY[a] + SITE_RTT_MS_FROM_NANCY[b]
                - overlap_ms,
            )
    return rtt
