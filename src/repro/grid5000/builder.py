"""Assemble the Grid'5000 :class:`~repro.net.topology.Topology`."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.grid5000.resources import CLUSTERS
from repro.grid5000.sites import (
    SITE_RTT_MS_FROM_NANCY,
    site_rtt_matrix,
    wan_bandwidth_bps,
)
from repro.net.topology import Cluster, Site, Topology

__all__ = ["build_topology", "paper_site_legend"]


def build_topology(
    clusters: Optional[List[Cluster]] = None,
    lan_rtt_ms: float = SITE_RTT_MS_FROM_NANCY["nancy"],
) -> Topology:
    """Build the paper's testbed (or a variant with custom clusters).

    The intra-site LAN RTT defaults to the 0.087 ms the paper's legend
    reports for nancy-to-nancy probes.
    """
    clusters = CLUSTERS if clusters is None else clusters
    by_site: Dict[str, List[Cluster]] = defaultdict(list)
    for cluster in clusters:
        by_site[cluster.site].append(cluster)
    sites = [Site(name=s, clusters=tuple(cl)) for s, cl in by_site.items()]

    site_names = set(by_site)
    rtt = {
        pair: value
        for pair, value in site_rtt_matrix().items()
        if pair[0] in site_names and pair[1] in site_names
    }
    bw: Dict[Tuple[str, str], float] = {}
    names = sorted(site_names)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            bw[(a, b)] = wan_bandwidth_bps(a, b)

    return Topology(
        sites=sites,
        site_rtt_ms=rtt,
        site_bw_bps=bw,
        hub="nancy" if "nancy" in site_names else None,
        lan_rtt_ms=lan_rtt_ms,
        lan_bw_bps=1.0e9,
        default_wan_bw_bps=10.0e9,
    )


def paper_site_legend(topology: Topology) -> List[Tuple[str, float, int, int]]:
    """The figure-legend rows: (site, RTT-to-nancy ms, hosts, cores),
    sorted by descending RTT as in the paper's legends."""
    rows = []
    for name in sorted(topology.sites):
        site = topology.sites[name]
        rtt = SITE_RTT_MS_FROM_NANCY.get(name, 0.0)
        rows.append((name, rtt, site.n_hosts, site.n_cores))
    rows.sort(key=lambda row: -row[1])
    return rows
