"""Grid'5000 testbed model (paper Table 1 + figure-legend RTTs).

The experiment federation: six sites (nancy local + five distant),
eight clusters, 350 hosts, 1040 cores.  `repro.grid5000.builder` turns
the static description into a :class:`repro.net.topology.Topology`.
"""

from repro.grid5000.resources import (
    CLUSTERS,
    CPU_SPEEDS,
    cluster_by_name,
    total_cores,
    total_hosts,
)
from repro.grid5000.sites import SITE_RTT_MS_FROM_NANCY, SITE_ORDER, wan_bandwidth_bps
from repro.grid5000.builder import build_topology, paper_site_legend

__all__ = [
    "CLUSTERS",
    "CPU_SPEEDS",
    "cluster_by_name",
    "total_cores",
    "total_hosts",
    "SITE_RTT_MS_FROM_NANCY",
    "SITE_ORDER",
    "wan_bandwidth_bps",
    "build_topology",
    "paper_site_legend",
]
