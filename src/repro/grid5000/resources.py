"""Paper Table 1: characteristics of available computing resources.

Reproduced verbatim:

=========  ===========  =================  ======  =====  ======
Site       Cluster      CPU                #Nodes  #CPUs  #Cores
=========  ===========  =================  ======  =====  ======
nancy      grelon       Intel Xeon 5110    60      120    240
lyon       capricorn    AMD Opteron 246    50      100    100
rennes     paravent     AMD Opteron 246    90      180    180
bordeaux   bordereau    AMD Opteron 2218   60      120    240
grenoble   idpot        Intel Xeon IA32    8       16     16
grenoble   idcalc       Intel Itanium 2    12      24     48
sophia     azur         AMD Opteron 246    32      64     64
sophia     sol          AMD Opteron 2218   38      76     152
=========  ===========  =================  ======  =====  ======

Totals: 350 hosts / 1040 cores (the paper's §5.1 narrative relies on the
350-host figure for the spread "stair at 400").

Relative per-core speeds are our calibration (the paper gives none):
normalised to the submitting site's Xeon 5110.  Only the Figure 4
application models consume them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.topology import Cluster

__all__ = ["CPU_SPEEDS", "CPU_MEMORY_MB", "CLUSTERS", "cluster_by_name",
           "total_hosts", "total_cores"]

#: Relative per-core compute rate by CPU model (Xeon 5110 = 1.0).
CPU_SPEEDS: Dict[str, float] = {
    "Intel Xeon 5110": 1.00,
    "AMD Opteron 246": 0.95,
    "AMD Opteron 2218": 1.15,
    "Intel Xeon IA32": 0.75,
    "Intel Itanium 2": 0.95,
}

#: Node memory by CPU model (MB) — era-typical Grid'5000 configurations.
CPU_MEMORY_MB: Dict[str, int] = {
    "Intel Xeon 5110": 2048,
    "AMD Opteron 246": 2048,
    "AMD Opteron 2218": 4096,
    "Intel Xeon IA32": 1536,
    "Intel Itanium 2": 3072,
}


def _cluster(name: str, site: str, cpu: str, nodes: int, cpus: int,
             cores: int) -> Cluster:
    return Cluster(
        name=name, site=site, cpu_model=cpu, nodes=nodes, cpus=cpus,
        cores=cores, speed=CPU_SPEEDS[cpu], memory_mb=CPU_MEMORY_MB[cpu],
    )


#: The eight clusters of paper Table 1, in paper row order.
CLUSTERS: List[Cluster] = [
    _cluster("grelon", "nancy", "Intel Xeon 5110", 60, 120, 240),
    _cluster("capricorn", "lyon", "AMD Opteron 246", 50, 100, 100),
    _cluster("paravent", "rennes", "AMD Opteron 246", 90, 180, 180),
    _cluster("bordereau", "bordeaux", "AMD Opteron 2218", 60, 120, 240),
    _cluster("idpot", "grenoble", "Intel Xeon IA32", 8, 16, 16),
    _cluster("idcalc", "grenoble", "Intel Itanium 2", 12, 24, 48),
    _cluster("azur", "sophia", "AMD Opteron 246", 32, 64, 64),
    _cluster("sol", "sophia", "AMD Opteron 2218", 38, 76, 152),
]


def cluster_by_name(name: str) -> Cluster:
    for cluster in CLUSTERS:
        if cluster.name == name:
            return cluster
    raise KeyError(f"unknown cluster {name!r}")


def total_hosts() -> int:
    """350 in the paper."""
    return sum(c.nodes for c in CLUSTERS)


def total_cores() -> int:
    """1040 in the paper."""
    return sum(c.cores for c in CLUSTERS)
