"""Fault tolerance: replication analysis and failure detection (§3.2).

P2P-MPI replaces checkpoint/restart (which "requires the presence of
some reliable resources") with process replication: ``-r r`` runs
``r`` copies of every rank on distinct hosts.  This package provides
the replica bookkeeping used to decide whether a job survives a set of
host failures, plus a heartbeat failure detector service.
"""

from repro.ft.replication import (
    ReplicaSets,
    coverage,
    min_hosts_to_kill,
    survival_probability,
    survives,
)
from repro.ft.detector import HeartbeatDetector
from repro.ft.replicated_mpi import (CommCheckpoint, MigrationCheckpoint,
                                     ReplicatedComm, ReplicatedWorld)
from repro.ft.migration import (DiffusiveBalancer, MigratableWorkApp,
                                MigrationRecord, RankMigrator)

__all__ = [
    "ReplicaSets",
    "coverage",
    "survives",
    "min_hosts_to_kill",
    "survival_probability",
    "HeartbeatDetector",
    "CommCheckpoint",
    "DiffusiveBalancer",
    "MigrationCheckpoint",
    "MigratableWorkApp",
    "MigrationRecord",
    "RankMigrator",
    "ReplicatedComm",
    "ReplicatedWorld",
]
