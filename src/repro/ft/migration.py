"""Mid-run rank migration: checkpoint / teardown / re-register / rejoin.

The paper's §3.2 fault tolerance is purely *reactive*: replication
lets a job survive host death, but placement is frozen at submit time.
This module adds mobility on two levels:

* **Engine level** — :class:`RankMigrator` moves one (rank, replica)
  copy of a :class:`~repro.ft.replicated_mpi.ReplicatedWorld` between
  hosts mid-run.  The copy checkpoints cooperatively (programs call
  ``comm.checkpoint(state)`` between communication phases), tears down
  on the old host, the network port mapping is re-registered on the
  destination (:meth:`~repro.net.transport.Network.redirect_port` +
  :meth:`~repro.net.transport.Network.move_queued`, so no logical
  message is lost), the checkpoint image pays a real transfer delay,
  and the program respawns with its send/delivered sequence vectors
  intact — dedup invariants hold across the move by construction.

* **Campaign level** — :class:`DiffusiveBalancer` is a periodic
  controller process that watches per-host load and host health across
  a booted :class:`~repro.cluster.P2PMPICluster`, trades running
  migratable copies between RTT-neighboring hosts using the pure
  decision functions of :mod:`repro.alloc.diffusive`, and resurrects
  copies stranded on crashed hosts from its shadow checkpoint table.

:class:`MigratableWorkApp` is the synthetic fixed-work application the
migration campaign submits: its MPD-side runtime executes in
checkpointable quanta so a migration only ever loses sub-quantum
progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.alloc.diffusive import DiffusivePolicy, diffusive_moves, neighbor_map
from repro.ft.replicated_mpi import (CommCheckpoint, MigrationCheckpoint,
                                     ReplicatedComm, ReplicatedWorld)
from repro.net.topology import Host
from repro.sim.process import Interrupt, Process

__all__ = [
    "CommCheckpoint",
    "MigrationCheckpoint",
    "MigrationRecord",
    "RankMigrator",
    "MigratableWorkApp",
    "DiffusiveBalancer",
]


@dataclass(frozen=True)
class MigrationRecord:
    """One attempted copy move (engine level)."""

    rank: int
    replica: int
    src_host: str
    dst_host: str
    requested_at: float
    completed_at: float
    #: ``done`` (respawned on dst), ``noop`` (program finished before
    #: reaching a checkpoint), ``lost`` (dst died during transfer).
    status: str


class RankMigrator:
    """Moves (rank, replica) copies of one :class:`ReplicatedWorld`.

    Attaching the migrator sets ``world.migrations``, which is what
    arms ``comm.checkpoint``: a checkpoint call only unwinds the
    program when a migration is pending for that exact copy, so
    checkpoints are free in the steady state.

    :meth:`migrate` is asynchronous — it returns the *driver* process
    that replaces the copy's result-bearing slot in the world, waits
    for the cooperative checkpoint, performs the port re-registration
    and transfer, and respawns the program on the destination.  The
    driver resolves with the copy's final ``(status, value)`` either
    way, so ``world.run()`` aggregates migrated copies exactly like
    stationary ones.
    """

    def __init__(self, world: ReplicatedWorld,
                 checkpoint_bytes: int = 1 << 20) -> None:
        self.world = world
        self.checkpoint_bytes = checkpoint_bytes
        self.records: List[MigrationRecord] = []
        self._pending: Dict[Tuple[int, int], Host] = {}
        world.migrations = self

    def pending_dest(self, rank: int, replica: int) -> Optional[Host]:
        """Destination host of a pending migration for this copy."""
        return self._pending.get((rank, replica))

    def migrate(self, rank: int, replica: int, dest: Host) -> Process:
        """Request that one copy move to ``dest`` at its next checkpoint.

        Issuing a second migration for the same copy before the first
        checkpoints simply retargets it (last destination wins); the
        drivers compose, each forwarding the eventual result.
        """
        key = (rank, replica)
        old_proc = self.world._procs[key]
        self._pending[key] = dest
        driver = self.world.sim.process(
            self._drive(rank, replica, dest, old_proc))
        self.world._procs[key] = driver
        return driver

    def _drive(self, rank: int, replica: int, dest: Host,
               old_proc: Process) -> Generator:
        sim = self.world.sim
        net = self.world.network
        key = (rank, replica)
        requested_at = sim.now

        outcome = yield old_proc
        status, value = outcome
        # Consume the request only if it is still ours: a retargeted
        # migration leaves the newer pending entry for the outer driver.
        if self._pending.get(key) == dest:
            del self._pending[key]
        if status != "migrated":
            # Program finished (or died) before reaching a checkpoint;
            # nothing moved, forward the result untouched.
            self.records.append(MigrationRecord(
                rank, replica, self.world.host_of(rank, replica).name,
                dest.name, requested_at, sim.now, "noop"))
            return outcome

        ckpt: CommCheckpoint = value
        old_host = self.world.host_of(rank, replica)
        port = self.world.port_of(rank, replica)

        # Re-register the port on the destination before the image
        # transfer: in-flight and newly sent messages land at ``dest``
        # (delivery-time resolution), queued ones are carried over, so
        # the seq/dedup invariants see an unbroken stream.
        net.register(dest.name)
        net.redirect_port(old_host.name, port, dest.name)
        net.move_queued(old_host.name, port, dest.name)

        yield sim.timeout(net.transfer_time_s(
            old_host, dest, self.checkpoint_bytes))

        if net.is_down(dest.name):
            # Destination died while the image was in flight: the copy
            # is gone (the source already tore down).  Replication is
            # what absorbs this, exactly like a plain host death.
            self.records.append(MigrationRecord(
                rank, replica, old_host.name, dest.name,
                requested_at, sim.now, "lost"))
            return ("dead", None)

        self.world._hosts[key] = dest
        proc = self.world.respawn(ckpt)
        self.records.append(MigrationRecord(
            rank, replica, old_host.name, dest.name,
            requested_at, sim.now, "done"))
        result = yield proc
        return result


@dataclass(frozen=True)
class MigratableWorkApp:
    """Fixed-work application whose copies checkpoint every quantum.

    Like the churnload campaign's ``FixedWorkApp`` each copy performs
    ``duration_s`` of work, but the MPD runtime executes it in
    ``quantum_s`` slices with a checkpoint boundary between slices:
    a migration or resurrection restarts from the last boundary, so at
    most one quantum of progress is ever repeated.  ``deadline_factor``
    stretches the submitter's completion deadline per surviving unit of
    remaining work whenever a MIGRATED notice arrives (moves cost real
    transfer time the static deadline knows nothing about).
    """

    duration_s: float = 30.0
    quantum_s: float = 5.0
    checkpoint_bytes: int = 1 << 20
    deadline_factor: float = 3.0
    name: str = "migratablework"
    migratable: bool = True

    def predicted_rank_times(self, plan, env) -> Dict[tuple, float]:
        return {(p.rank, p.replica): self.duration_s
                for p in plan.placements}


class DiffusiveBalancer:
    """Periodic migration controller over a booted cluster.

    Every :attr:`DiffusivePolicy.period_s` the balancer

    1. mirrors the durable checkpoint images of all running migratable
       copies into its *shadow table* — controller-side state that
       survives worker-host crashes;
    2. resurrects copies whose host died since the last tick: the last
       checkpoint is shipped (from the submitter's image store) to the
       least-loaded admitting host and re-enters through
       :meth:`~repro.middleware.mpd.MPD.adopt_copy`, losing at most one
       quantum of work;
    3. runs one diffusion step (:func:`repro.alloc.diffusive.diffusive_moves`)
       over the copies-per-core load of the alive hosts with an RTT
       k-nearest neighbor map, cooperatively freezing one copy on each
       chosen source and re-adopting it on the destination after a real
       checkpoint transfer.  A destination dying mid-transfer bounces
       the copy back to its source.

    Everything is deterministic (sorted iteration, name tie-breaks), so
    campaign cells that embed a balancer stay byte-identical across
    ``--jobs`` fan-out and shard/merge.
    """

    def __init__(self, cluster, policy: Optional[DiffusivePolicy] = None,
                 resurrect: bool = True) -> None:
        self.cluster = cluster
        self.policy = policy or DiffusivePolicy()
        self.resurrect = resurrect
        #: Completed migrations / crash resurrections / refused moves.
        self.moves = 0
        self.rejoins = 0
        self.failed_moves = 0
        #: (job_id, rank, replica) -> last durable snapshot (+ host).
        self._shadow: Dict[Tuple[str, int, int], Dict[str, Any]] = {}
        self._proc: Optional[Process] = None

    def start(self) -> Process:
        """Spawn the controller loop (cluster must be booted)."""
        self._proc = self.cluster.sim.process(self._run())
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("balancer stopped")
            self._proc = None

    # -- controller loop --------------------------------------------------
    def _run(self) -> Generator:
        sim = self.cluster.sim
        while True:
            try:
                yield sim.timeout(self.policy.period_s)
            except Interrupt:
                return
            yield from self._tick()

    def _alive(self) -> List[str]:
        return sorted(name for name in self.cluster.mpds
                      if not self.cluster.network.is_down(name))

    def _load(self, host_name: str) -> float:
        mpd = self.cluster.mpds[host_name]
        cores = self.cluster.topology.host(host_name).cores
        return len(mpd.running_copies()) / max(1, cores)

    def _job_finished(self, snap: Dict[str, Any]) -> bool:
        submitter = self.cluster.mpds.get(snap["submitter"])
        return (submitter is not None
                and snap["job_id"] in submitter.results)

    def _refresh_shadow(self, alive: List[str]) -> None:
        mpds = self.cluster.mpds
        for name in alive:
            for snap in mpds[name].copy_snapshots():
                key3 = (snap["job_id"], snap["rank"], snap["replica"])
                self._shadow[key3] = dict(snap, host=name)
        # A shadow entry whose (alive) host no longer runs the copy is
        # finished business; entries on dead hosts stay — they are the
        # resurrection candidates.
        for key3, snap in list(self._shadow.items()):
            if snap["host"] in alive and key3 not in mpds[snap["host"]]._copies:
                del self._shadow[key3]

    def _pick_dest(self, alive: List[str], snap: Dict[str, Any],
                   exclude: Tuple[str, ...] = ()) -> Optional[str]:
        mpds = self.cluster.mpds
        candidates = [name for name in alive
                      if name not in exclude
                      and mpds[name].can_adopt(snap["job_id"],
                                               snap["submitter"])]
        if not candidates:
            return None
        return min(candidates, key=lambda name: (self._load(name), name))

    def _tick(self) -> Generator:
        sim = self.cluster.sim
        net = self.cluster.network
        topo = self.cluster.topology
        mpds = self.cluster.mpds
        alive = self._alive()
        if not alive:
            return
        self._refresh_shadow(alive)

        # -- resurrection: copies stranded on crashed hosts -------------
        if self.resurrect:
            for key3, snap in sorted(self._shadow.items()):
                if snap["host"] in alive:
                    continue
                if self._job_finished(snap):
                    del self._shadow[key3]
                    continue
                dest = self._pick_dest(alive, snap)
                if dest is None:
                    continue  # retried next tick
                # The image is re-fetched from the submitter's
                # checkpoint store — the crashed host cannot serve it.
                yield sim.timeout(net.transfer_time_s(
                    topo.host(snap["submitter"]), topo.host(dest),
                    snap["checkpoint_bytes"]))
                if dest in self._alive() and mpds[dest].adopt_copy(
                        snap, event="rejoined"):
                    self.rejoins += 1
                    del self._shadow[key3]

        # -- one diffusion step over copies-per-core load ---------------
        alive = self._alive()
        if len(alive) < 2:
            return
        loads = {name: self._load(name) for name in alive}
        neighbors = neighbor_map(topo, alive, self.policy.neighbor_k)
        for src, dst in diffusive_moves(loads, neighbors,
                                        self.policy.threshold,
                                        self.policy.max_moves_per_tick):
            candidates = mpds[src].running_copies()
            if not candidates:
                continue
            job_id, rank, replica = candidates[0]
            snap_preview = self._shadow.get((job_id, rank, replica))
            submitter = (snap_preview or {}).get("submitter", "")
            if not mpds[dst].can_adopt(job_id, submitter):
                self.failed_moves += 1
                continue
            snap = yield from mpds[src].migrate_copy_out(job_id, rank,
                                                         replica)
            if snap is None:
                continue
            yield sim.timeout(net.transfer_time_s(
                topo.host(src), topo.host(dst), snap["checkpoint_bytes"]))
            if not net.is_down(dst) and mpds[dst].adopt_copy(snap):
                self.moves += 1
                self._shadow[(job_id, rank, replica)] = dict(
                    snap, host=dst)
            elif not net.is_down(src) and mpds[src].adopt_copy(snap):
                # Destination died (or filled up) mid-transfer: bounce
                # the frozen copy back where it came from.
                self.failed_moves += 1
                self._shadow[(job_id, rank, replica)] = dict(
                    snap, host=src)
            else:
                # Both ends gone: the shadow entry stays and the copy
                # is resurrected from its last durable checkpoint.
                self.failed_moves += 1
