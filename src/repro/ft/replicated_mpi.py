"""Replica-transparent message passing (§3.2).

"Note that the communication library transparently handles all
extra-communications needed to keep the system in a coherent state."

This module implements that transparency on the message-level engine:
a :class:`ReplicatedWorld` runs ``r`` copies of every rank (placed by
the allocation plan's replica slices) and a :class:`ReplicatedComm`
wraps each copy so that

* a logical ``send(dest)`` physically multicasts to *every* replica of
  ``dest`` (so any surviving copy can proceed);
* a logical ``recv`` consumes the first arriving copy of a logical
  message and discards late duplicates (deduplicated by a per-sender
  sequence number — both replicas of a sender send the same sequence);
* the run succeeds as long as every rank keeps one live replica, which
  is exactly the §3.2 guarantee the rank-assignment criterion (b)
  makes possible.

The engine-level demonstration: crash a host mid-run and the program
still completes with correct collective results
(``tests/ft/test_replicated_mpi.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.alloc.base import AllocationPlan
from repro.mpi.datatypes import Op, SUM
from repro.net.topology import Host
from repro.net.transport import Message, Network
from repro.sim.core import Simulator
from repro.sim.process import Interrupt, Process

__all__ = ["CommCheckpoint", "MigrationCheckpoint", "ReplicatedComm",
           "ReplicatedWorld"]


@dataclass(frozen=True)
class CommCheckpoint:
    """The logical state of one (rank, replica) copy at a safe point.

    Everything a destination host needs to resume the copy without
    violating the dedup/seq invariants: the per-(dest, tag) send
    counters (so re-sent sequences keep advancing identically in every
    replica), the per-(source, tag) delivered vectors (so stale
    duplicates stay stale), and whatever program state the application
    passed to :meth:`ReplicatedComm.checkpoint`.
    """

    rank: int
    replica: int
    host_name: str
    send_seq: Dict[Tuple[int, int], int] = field(default_factory=dict)
    delivered: Dict[Tuple[int, int], int] = field(default_factory=dict)
    app_state: Any = None
    taken_at: float = 0.0


class MigrationCheckpoint(Exception):
    """Raised inside a program at a cooperative checkpoint to tear the
    copy down for migration; carries the :class:`CommCheckpoint`."""

    def __init__(self, checkpoint: CommCheckpoint) -> None:
        super().__init__(checkpoint)
        self.checkpoint = checkpoint


class ReplicatedComm:
    """Communicator for one (rank, replica) copy.

    Exposes logical ``send``/``recv``/``allreduce`` over physical
    replica multicast.  The copy is addressed as
    ``rmpi:<job>:<rank>:<replica>``.
    """

    def __init__(self, world: "ReplicatedWorld", rank: int, replica: int) -> None:
        self.world = world
        self.rank = rank
        self.replica = replica
        self.host: Host = world.host_of(rank, replica)
        self._send_seq: Dict[Tuple[int, int], int] = defaultdict(int)
        self._delivered: Dict[Tuple[int, int], int] = defaultdict(int)
        #: Program state restored from a migration checkpoint (``None``
        #: on a fresh start); migratable programs consult it on entry.
        self.restored_state: Any = None
        # Stale duplicates are refused on arrival: once a logical
        # message is delivered, late physical copies (lower seq) would
        # otherwise accumulate in the host inbox forever.
        world.network.set_port_filter(self.host.name, self._port(),
                                      self._accepts)

    def _accepts(self, msg: Message) -> bool:
        """Arrival predicate: only sequences not yet delivered enter."""
        payload = msg.payload
        return (msg.kind != "RMPI"
                or payload["seq"] >= self._delivered[
                    (payload["source"], payload["tag"])])

    @classmethod
    def restore(cls, world: "ReplicatedWorld",
                checkpoint: CommCheckpoint) -> "ReplicatedComm":
        """Rebuild a copy's communicator from a migration checkpoint.

        The world's host table must already point at the destination
        host; the restored communicator re-registers the copy's port
        filter there and resumes the send/delivered counters exactly
        where the checkpoint froze them.
        """
        comm = cls(world, checkpoint.rank, checkpoint.replica)
        comm._send_seq.update(checkpoint.send_seq)
        comm._delivered.update(checkpoint.delivered)
        comm.restored_state = checkpoint.app_state
        return comm

    def detach(self) -> None:
        """Unregister this copy's arrival filter (migration teardown)."""
        self.world.network.clear_port_filter(self.host.name, self._port())

    # -- introspection -----------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.n

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    def _port(self) -> str:
        return self.world.port_of(self.rank, self.replica)

    # -- logical point-to-point ------------------------------------------------
    def isend(self, dest: int, payload: Any = None, size_bytes: int = 0,
              tag: int = 0) -> None:
        """Multicast one logical message to every replica of ``dest``.

        The sequence number is derived from a per-(dest, tag) counter
        that advances identically in every replica of *this* rank
        (SPMD), so receivers can deduplicate sender copies.
        """
        seq = self._send_seq[(dest, tag)]
        self._send_seq[(dest, tag)] += 1
        for replica in range(self.world.r):
            target = self.world.host_of(dest, replica)
            self.world.network.send(
                self.host.name, target.name,
                port=self.world.port_of(dest, replica),
                kind="RMPI",
                payload={"source": self.rank, "tag": tag, "seq": seq,
                         "data": payload},
                size_bytes=size_bytes,
            )

    def recv(self, source: int, tag: int = 0) -> Generator:
        """Receive the next logical message from ``source``.

        The first physical copy with the expected sequence number wins;
        stale duplicates (lower sequence) are consumed and dropped.
        """
        expected = self._delivered[(source, tag)]
        inbox = self.world.network.inbox(self.host.name)
        while True:
            def match(msg: Message, _src=source, _tag=tag, _exp=expected):
                return (msg.port == self._port() and msg.kind == "RMPI"
                        and msg.payload["source"] == _src
                        and msg.payload["tag"] == _tag
                        and msg.payload["seq"] <= _exp)

            msg = yield inbox.get(match)
            if msg.payload["seq"] == expected:
                self._delivered[(source, tag)] = expected + 1
                # Purge duplicates of this (and any earlier) logical
                # message that are already queued: no future recv for
                # this (source, tag) may ever run, so leaving them
                # would leak them into the host inbox forever.
                inbox.discard(match)
                return msg.payload["data"]
            # stale duplicate: drop and keep waiting

    # -- cooperative migration -------------------------------------------
    def checkpoint(self, state: Any = None) -> bool:
        """Cooperative checkpoint: a safe point for migration.

        Programs call this between communication phases, passing
        whatever ``state`` they need to resume from.  When no migration
        is pending for this copy the call is free and returns ``False``.
        When one *is* pending, the copy's logical state is captured and
        :class:`MigrationCheckpoint` unwinds the program — the world's
        guard hands the checkpoint to the migration driver, which
        respawns the program on the destination host with
        :attr:`restored_state` set.
        """
        migrations = self.world.migrations
        if migrations is None:
            return False
        if migrations.pending_dest(self.rank, self.replica) is None:
            return False
        raise MigrationCheckpoint(CommCheckpoint(
            rank=self.rank,
            replica=self.replica,
            host_name=self.host.name,
            send_seq=dict(self._send_seq),
            delivered=dict(self._delivered),
            app_state=state,
            taken_at=self.sim.now,
        ))

    # -- logical collectives -----------------------------------------------------
    def allreduce(self, value: Any, op: Op = SUM,
                  size_bytes: int = 32) -> Generator:
        """Replica-transparent allreduce (flat tree through rank 0).

        Simplicity over speed: every rank logically sends to 0, rank 0
        reduces and broadcasts back.  All replica copies of rank 0
        perform the reduction independently, so any of them can serve
        the result.
        """
        tag = -77  # reserved collective tag for this primitive
        if self.rank == 0:
            acc = value
            for src in range(1, self.size):
                data = yield from self.recv(src, tag=tag)
                acc = op.fn(acc, data)
            for dest in range(1, self.size):
                self.isend(dest, acc, size_bytes, tag=tag)
            return acc
        self.isend(0, value, size_bytes, tag=tag)
        result = yield from self.recv(0, tag=tag)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ReplicatedComm rank={self.rank} replica={self.replica} "
                f"on {self.host.name}>")


class ReplicatedWorld:
    """Runs ``n`` logical ranks x ``r`` replicas from an allocation plan."""

    def __init__(self, sim: Simulator, network: Network,
                 plan: AllocationPlan, job_id: str = "rjob") -> None:
        if plan.r < 1:
            raise ValueError("plan must carry at least one replica")
        self.sim = sim
        self.network = network
        self.plan = plan
        self.job_id = job_id
        self.n = plan.n
        self.r = plan.r
        self._hosts: Dict[Tuple[int, int], Host] = {}
        for placement in plan.placements:
            self._hosts[(placement.rank, placement.replica)] = placement.host
            network.register(placement.host.name)
        #: Result-bearing process per copy (the migration driver after a
        #: migrate; it resolves with the copy's final result either way).
        self._procs: Dict[Tuple[int, int], Process] = {}
        #: The live *program* process per copy (interrupt target).
        self._active: Dict[Tuple[int, int], Process] = {}
        #: Attached :class:`repro.ft.migration.RankMigrator` (or None).
        self.migrations = None
        self._program: Optional[Callable[[ReplicatedComm], Generator]] = None

    def host_of(self, rank: int, replica: int) -> Host:
        return self._hosts[(rank, replica)]

    def port_of(self, rank: int, replica: int) -> str:
        return f"rmpi:{self.job_id}:{rank}:{replica}"

    # -- running ------------------------------------------------------------------
    def spawn(self, program: Callable[[ReplicatedComm], Generator]) -> None:
        """Start ``program`` on every (rank, replica) copy."""
        self._program = program
        for (rank, replica) in sorted(self._hosts):
            comm = ReplicatedComm(self, rank, replica)
            proc = self.sim.process(self._guard(program, comm))
            self._procs[(rank, replica)] = proc
            self._active[(rank, replica)] = proc

    def respawn(self, checkpoint: CommCheckpoint) -> Process:
        """Restart a migrated copy's program on its (new) current host.

        Called by the migration driver after the host table and port
        registrations were updated; the program re-enters with
        ``comm.restored_state`` carrying the checkpointed state.
        """
        if self._program is None:
            raise RuntimeError("respawn before spawn: no program recorded")
        comm = ReplicatedComm.restore(self, checkpoint)
        proc = self.sim.process(self._guard(self._program, comm))
        self._active[(checkpoint.rank, checkpoint.replica)] = proc
        return proc

    def _guard(self, program, comm) -> Generator:
        """Wrap a copy so host-death interrupts end it quietly."""
        try:
            result = yield from program(comm)
        except Interrupt:
            return ("dead", None)
        except MigrationCheckpoint as exc:
            # Cooperative teardown: drop the old host's port filter so
            # the restored copy's registration is the only one left.
            comm.detach()
            return ("migrated", exc.checkpoint)
        return ("ok", result)

    def kill_copy(self, rank: int, replica: int, cause: str = "host down") -> None:
        """Crash one copy (its host is marked down by the caller)."""
        proc = self._active.get((rank, replica)) or self._procs.get(
            (rank, replica))
        if proc is not None and proc.is_alive:
            proc.interrupt(cause)

    def run(self, program: Callable[[ReplicatedComm], Generator],
            limit_s: float = 1e5) -> Dict[int, List[Any]]:
        """Run all copies; returns rank -> list of surviving results.

        Raises
        ------
        RuntimeError
            If some rank has no surviving copy (the job is lost, as an
            unreplicated failure would be).
        """
        from repro.sim.core import SimulationError

        if not self._procs:
            self.spawn(program)
        # Migrations swap a copy's result-bearing process mid-run (the
        # driver replaces the torn-down program process), so wait in
        # rounds until the process table is stable *and* drained.
        while True:
            procs = list(self._procs.values())
            done = self.sim.all_of(procs)
            try:
                self.sim.run_until_complete(done, limit=self.sim.now + limit_s)
            except SimulationError:
                # Some copies are blocked forever (all replicas of a peer
                # died before communicating): report the stuck ranks.
                stuck = sorted({rank
                                for (rank, _rep), proc in self._procs.items()
                                if proc.is_alive})
                raise RuntimeError(
                    f"replicated run deadlocked; stuck ranks: {stuck}") from None
            if list(self._procs.values()) == procs:
                break
        results: Dict[int, List[Any]] = defaultdict(list)
        for (rank, _replica), proc in sorted(self._procs.items()):
            status, value = proc.value
            if status == "ok":
                results[rank].append(value)
        missing = [rank for rank in range(self.n) if not results.get(rank)]
        if missing:
            raise RuntimeError(f"ranks without surviving replica: {missing}")
        return dict(results)
