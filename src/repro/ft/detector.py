"""Heartbeat failure detector.

The middleware's built-in detection is timeout-based (silent RESERVE /
missing DONE); this standalone detector implements the overlay-level
mechanism — periodic alive signals with a suspicion timeout — so churn
experiments can observe detection latency directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Set

from repro.net.transport import Message, Network
from repro.sim.core import Simulator

__all__ = ["HeartbeatDetector"]

HEARTBEAT_PORT = "heartbeat"


@dataclass
class _PeerState:
    last_seen: float
    suspected: bool = False


class HeartbeatDetector:
    """Monitors a set of peers via periodic heartbeats.

    Parameters
    ----------
    sim, network:
        Substrate.
    host_name:
        Where the detector runs.
    peers:
        Host names to monitor; each must run :meth:`emitter`.
    period_s / timeout_s:
        Heartbeat period and suspicion timeout (timeout should be a
        small multiple of the period plus worst-case latency).
    """

    def __init__(self, sim: Simulator, network: Network, host_name: str,
                 peers: List[str], period_s: float = 1.0,
                 timeout_s: float = 3.5) -> None:
        if timeout_s <= period_s:
            raise ValueError("timeout must exceed the heartbeat period")
        self.sim = sim
        self.network = network
        self.host_name = host_name
        self.period_s = period_s
        self.timeout_s = timeout_s
        self.states: Dict[str, _PeerState] = {
            p: _PeerState(last_seen=sim.now) for p in peers
        }
        #: (time, peer) suspicion events, in order.
        self.suspicions: List = []

    # -- monitored side --------------------------------------------------------
    def emitter(self, host_name: str) -> Generator:
        """Heartbeat loop to run on each monitored peer."""
        while True:
            self.network.send(
                host_name, self.host_name, port=HEARTBEAT_PORT,
                kind="HB", payload={}, size_bytes=64,
            )
            yield self.sim.timeout(self.period_s)

    # -- detector side -----------------------------------------------------------
    def suspects(self) -> Set[str]:
        return {p for p, s in self.states.items() if s.suspected}

    def _sweep(self) -> None:
        now = self.sim.now
        for peer, state in self.states.items():
            if not state.suspected and now - state.last_seen > self.timeout_s:
                state.suspected = True
                self.suspicions.append((now, peer))

    def service(self) -> Generator:
        """Receive heartbeats and sweep for timeouts."""
        self.sim.process(self._sweeper())
        while True:
            msg: Message = yield self.network.receive(self.host_name, HEARTBEAT_PORT)
            state = self.states.get(msg.src)
            if state is not None:
                state.last_seen = self.sim.now
                if state.suspected:
                    # Peer came back: clear suspicion (detector is eventually
                    # perfect in this simulated setting).
                    state.suspected = False

    def _sweeper(self) -> Generator:
        while True:
            yield self.sim.timeout(self.period_s / 2.0)
            self._sweep()
