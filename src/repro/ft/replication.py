"""Replica-set analysis over allocation plans.

The §3.2 guarantee — "a failure of H0 or H1 leaves a fully functional
set of processes" — holds because rank assignment never puts two copies
of a rank on one host.  These helpers quantify that guarantee for
arbitrary plans and failure sets.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import numpy as np

from repro.alloc.base import AllocationPlan

__all__ = ["ReplicaSets", "coverage", "survives", "min_hosts_to_kill",
           "survival_probability"]


class ReplicaSets:
    """rank -> set of hosts holding a copy of that rank."""

    def __init__(self, plan: AllocationPlan) -> None:
        self.plan = plan
        self.by_rank: Dict[int, FrozenSet[str]] = {}
        buckets: Dict[int, Set[str]] = defaultdict(set)
        for placement in plan.placements:
            buckets[placement.rank].add(placement.host.name)
        for rank in range(plan.n):
            self.by_rank[rank] = frozenset(buckets[rank])

    def hosts_of(self, rank: int) -> FrozenSet[str]:
        return self.by_rank[rank]

    def all_hosts(self) -> Set[str]:
        out: Set[str] = set()
        for hosts in self.by_rank.values():
            out |= hosts
        return out

    def live_ranks(self, dead_hosts: Iterable[str]) -> List[int]:
        dead = set(dead_hosts)
        return [rank for rank, hosts in self.by_rank.items()
                if hosts - dead]


def coverage(completions: Iterable[Tuple[int, int]], n: int) -> Tuple[Set[int], Set[int]]:
    """Split ranks into (covered, missing) given completed (rank, replica)s."""
    covered = {rank for rank, _replica in completions if 0 <= rank < n}
    missing = set(range(n)) - covered
    return covered, missing


def survives(plan: AllocationPlan, dead_hosts: Iterable[str]) -> bool:
    """True iff every rank keeps at least one replica on a live host."""
    sets = ReplicaSets(plan)
    return len(sets.live_ranks(dead_hosts)) == plan.n


def min_hosts_to_kill(plan: AllocationPlan, max_check: int = 3) -> int:
    """Smallest number of host failures that can kill the job.

    Exhaustive over combinations up to ``max_check`` (the theoretical
    answer is ``r`` because replicas of one rank sit on distinct hosts;
    this verifies it constructively for small ``r``).
    """
    sets = ReplicaSets(plan)
    hosts = sorted(sets.all_hosts())
    for k in range(1, min(max_check, len(hosts)) + 1):
        for combo in combinations(hosts, k):
            if not survives(plan, combo):
                return k
    return min(max_check, len(hosts)) + 1


def survival_probability(
    plan: AllocationPlan,
    p_host_fail: float,
    rng: np.random.Generator,
    trials: int = 2000,
) -> float:
    """Monte-Carlo job survival probability under i.i.d. host failures.

    Exact computation is non-trivial because ranks share hosts; the
    estimator is deterministic for a given generator state.
    """
    if not 0.0 <= p_host_fail <= 1.0:
        raise ValueError("p_host_fail must be in [0, 1]")
    sets = ReplicaSets(plan)
    hosts = sorted(sets.all_hosts())
    if not hosts:
        return 1.0
    rank_masks = []
    index = {name: i for i, name in enumerate(hosts)}
    for rank in range(plan.n):
        mask = np.zeros(len(hosts), dtype=bool)
        for name in sets.hosts_of(rank):
            mask[index[name]] = True
        rank_masks.append(mask)
    alive_matrix = rng.random((trials, len(hosts))) >= p_host_fail
    ok = np.ones(trials, dtype=bool)
    for mask in rank_masks:
        ok &= alive_matrix[:, mask].any(axis=1)
    return float(ok.mean())
