"""Generated complex-network topology families (DESIGN.md §14).

The paper's testbed is one fixed 6-site federation; every campaign so
far answered "which co-allocation strategy wins" for that single graph.
These generators produce *routed* :class:`~repro.net.topology.Topology`
instances — explicit per-link bandwidths, shortest-RTT multi-hop
routes, per-link contention — over three structural families the
complex-network literature says should rank strategies differently:

``scale_free``
    Barabási–Albert preferential attachment over sites.  A few hub
    sites concentrate most routes, so their incident links pool many
    crossing flows — concentration near hubs buys latency but starves
    bandwidth.
``small_world``
    Watts–Strogatz ring with rewired shortcuts.  High clustering plus
    short global paths: block-style locality keeps most traffic on
    cheap ring links while the rare shortcuts carry the rest.
``fat_sites``
    Hundreds of small sites dual-homed onto a router core (ring +
    cross chords), heterogeneous backbone capacities, and optional
    ``failed`` node exclusion in the spirit of router-group placement
    models — the stress case for per-link routed contention.

Every generator is a pure function of its parameters plus
``topo_seed``: link attributes come from a SHA-256-derived
:class:`random.Random` (never ``hash()``, which is per-process salted)
and graph generators take the same derived seed, so topologies are
bit-reproducible across processes and machines — the property the
sweep engine's content-hash store keys rely on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx
import random

from repro.net.topology import Cluster, Link, Site, Topology

__all__ = ["scale_free_topology", "small_world_topology",
           "fat_sites_topology", "GENERATED_FAMILIES"]

#: Family names this module generates (CLI/registry cross-check).
GENERATED_FAMILIES = ("scale_free", "small_world", "fat_sites")

#: Heterogeneous backbone tiers (bit/s): commodity 1 Gb/s, regional
#: 2.5 Gb/s, national 10 Gb/s — the RENATER-era capacity mix.
_BW_TIERS = (1.0e9, 2.5e9, 10.0e9)

#: WAN link RTT range in milliseconds (continental spread).
_RTT_RANGE_MS = (2.0, 25.0)


def derive_seed(*parts: object) -> int:
    """A 64-bit integer seed derived from ``parts`` via SHA-256.

    ``random.Random(str)`` hashes through ``PYTHONHASHSEED`` salting in
    some interpreter configurations; hashing explicitly keeps generated
    topologies identical across processes, machines and runs.
    """
    digest = hashlib.sha256(
        "|".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _site_name(i: int) -> str:
    return f"s{i:03d}"


def _make_sites(names: Sequence[str], hosts_per_site: int,
                cores_per_host: int) -> List[Site]:
    """One homogeneous cluster per site (``Cluster.cores`` is total)."""
    return [
        Site(name, (Cluster(
            name=f"c{name[1:]}", site=name, cpu_model="gen",
            nodes=hosts_per_site, cpus=hosts_per_site,
            cores=hosts_per_site * cores_per_host),))
        for name in names
    ]


def _attr_links(edges: Iterable[Tuple[str, str]], rng: random.Random
                ) -> List[Link]:
    """Draw deterministic per-link attributes, in sorted edge order."""
    links = []
    lo, hi = _RTT_RANGE_MS
    for a, b in sorted(tuple(sorted(e)) for e in edges):
        links.append(Link(a=a, b=b,
                          rtt_ms=round(rng.uniform(lo, hi), 3),
                          bandwidth_bps=rng.choice(_BW_TIERS)))
    return links


def scale_free_topology(sites: int = 20, m: int = 2,
                        hosts_per_site: int = 2, cores_per_host: int = 4,
                        topo_seed: int = 0) -> Topology:
    """Barabási–Albert site graph: hubs attract links *and* routes.

    ``m`` is the attachment count (edges each new site brings).  Sites
    route through each other — there are no dedicated routers — so hub
    sites become transit bottlenecks exactly as in AS-level graphs.
    """
    if sites < 2:
        raise ValueError("scale_free needs at least 2 sites")
    if not 1 <= m < sites:
        raise ValueError(f"attachment m={m} must be in [1, sites)")
    seed = derive_seed("scale_free", sites, m, topo_seed)
    graph = nx.barabasi_albert_graph(sites, m, seed=seed)
    names = [_site_name(i) for i in range(sites)]
    rng = random.Random(derive_seed("scale_free.links", sites, m, topo_seed))
    links = _attr_links(
        ((names[a], names[b]) for a, b in graph.edges), rng)
    return Topology(
        sites=_make_sites(names, hosts_per_site, cores_per_host),
        links=links)


def small_world_topology(sites: int = 20, k: int = 4,
                         rewire_p: float = 0.1,
                         hosts_per_site: int = 2, cores_per_host: int = 4,
                         topo_seed: int = 0) -> Topology:
    """Watts–Strogatz ring-with-shortcuts site graph.

    ``k`` nearest ring neighbours, each edge rewired with probability
    ``rewire_p``; the connected variant retries rewiring until the
    graph is one component, so every seed yields a usable topology.
    """
    if sites < 4:
        raise ValueError("small_world needs at least 4 sites")
    if not 2 <= k < sites:
        raise ValueError(f"ring degree k={k} must be in [2, sites)")
    if not 0.0 <= rewire_p <= 1.0:
        raise ValueError(f"rewire_p={rewire_p} must be in [0, 1]")
    seed = derive_seed("small_world", sites, k, rewire_p, topo_seed)
    graph = nx.connected_watts_strogatz_graph(sites, k, rewire_p,
                                              tries=200, seed=seed)
    names = [_site_name(i) for i in range(sites)]
    rng = random.Random(
        derive_seed("small_world.links", sites, k, rewire_p, topo_seed))
    links = _attr_links(
        ((names[a], names[b]) for a, b in graph.edges), rng)
    return Topology(
        sites=_make_sites(names, hosts_per_site, cores_per_host),
        links=links)


def fat_sites_topology(sites: int = 100, router_groups: int = 8,
                       hosts_per_site: int = 1, cores_per_host: int = 4,
                       failed: Sequence[str] = (),
                       topo_seed: int = 0) -> Topology:
    """Hundreds of small sites dual-homed onto a router core.

    ``router_groups`` routers ``r00..`` form a ring plus cross chords
    (``r_i`` — ``r_{i+G/2}``); site ``i`` homes onto routers ``i % G``
    and ``(i+1) % G``, so losing one access link (or one router) never
    strands a site by construction.  ``failed`` names routers or sites
    to exclude before building — surviving sites that end up
    disconnected from the first surviving site are dropped too, so a
    heavily failed core degrades instead of erroring.
    """
    if sites < 2:
        raise ValueError("fat_sites needs at least 2 sites")
    if router_groups < 2:
        raise ValueError("fat_sites needs at least 2 router groups")
    failed_set: Set[str] = set(failed)
    routers = [f"r{i:02d}" for i in range(router_groups)]
    site_names = [_site_name(i) for i in range(sites)]
    unknown = failed_set - set(routers) - set(site_names)
    if unknown:
        raise ValueError(f"failed names {sorted(unknown)} are neither "
                         f"sites nor routers of this topology")

    rng = random.Random(
        derive_seed("fat_sites", sites, router_groups, topo_seed))
    edges: Dict[Tuple[str, str], Link] = {}

    def connect(a: str, b: str, bw: float) -> None:
        if a in failed_set or b in failed_set:
            return
        key = (a, b) if a <= b else (b, a)
        if key not in edges:
            lo, hi = _RTT_RANGE_MS
            edges[key] = Link(a=key[0], b=key[1],
                              rtt_ms=round(rng.uniform(lo, hi), 3),
                              bandwidth_bps=bw)

    # Core: ring + cross chords, fat national-tier capacity.
    for i in range(router_groups):
        connect(routers[i], routers[(i + 1) % router_groups], _BW_TIERS[2])
    for i in range(router_groups // 2):
        opposite = (i + router_groups // 2) % router_groups
        if opposite != (i + 1) % router_groups and opposite != i:
            connect(routers[i], routers[opposite], _BW_TIERS[1])
    # Access: each site dual-homed, heterogeneous commodity tiers.
    for i, site in enumerate(site_names):
        primary = routers[i % router_groups]
        secondary = routers[(i + 1) % router_groups]
        connect(site, primary, rng.choice(_BW_TIERS[:2]))
        if secondary != primary:
            connect(site, secondary, _BW_TIERS[0])

    # Prune anything the failures strand: keep the component carrying
    # the most surviving sites (ties broken by earliest site name, so
    # the choice is deterministic).
    survivors = [s for s in site_names if s not in failed_set]
    if not survivors:
        raise ValueError("failed set removes every site")
    probe = nx.Graph()
    probe.add_nodes_from(survivors)
    probe.add_nodes_from(r for r in routers if r not in failed_set)
    probe.add_edges_from(edges)
    survivor_set = set(survivors)
    component = min(
        nx.connected_components(probe),
        key=lambda c: (-len(survivor_set & c),
                       min(survivor_set & c, default="~")),
    )
    kept_sites = [s for s in survivors if s in component]
    if len(kept_sites) < 2:
        raise ValueError("failures leave fewer than 2 connected sites")
    kept_nodes = set(kept_sites) | {r for r in routers
                                    if r not in failed_set and r in component}
    links = [link for key, link in sorted(edges.items())
             if key[0] in kept_nodes and key[1] in kept_nodes]
    return Topology(
        sites=_make_sites(kept_sites, hosts_per_site, cores_per_host),
        links=links,
        transit=tuple(r for r in sorted(kept_nodes) if r in set(routers)))
