"""Network substrate: topology, latency/bandwidth models, transport.

This package simulates the wide-area federation the paper's testbed
(Grid'5000) provides physically.  Layering:

* :mod:`~repro.net.topology` — static description: sites, clusters,
  hosts, per-site-pair RTT and bandwidth; flat (private per-pair
  backbones) or routed (explicit links, shortest-RTT multi-hop paths)
  behind one ``path_metrics`` facade.
* :mod:`~repro.net.families` — generated complex-network topologies
  (scale_free, small_world, fat_sites), deterministic per seed.
* :mod:`~repro.net.latency` — stochastic *measured* latency: the paper's
  application-level (non-ICMP) ping observes base RTT plus CPU/TCP load
  noise; this module models that perturbation and the EWMA smoothing
  P2P-MPI's future work calls for.
* :mod:`~repro.net.bandwidth` — per-link flow counting and effective
  bandwidth under contention.
* :mod:`~repro.net.contention` — plan-dependent WAN backbone sharing:
  crossing-pair counts per site link and the contended per-pair
  bandwidth both the allocation scores and the cost model consume.
* :mod:`~repro.net.transport` — message delivery between host inboxes
  with latency + serialization + contention delays.
* :mod:`~repro.net.ping` — round-trip measurement probes built on the
  transport, and the fast analytic estimator used at scale.
"""

from repro.net.topology import (Cluster, Host, Link, PathMetrics, Site,
                                Topology)
from repro.net.families import (fat_sites_topology, scale_free_topology,
                                small_world_topology)
from repro.net.latency import LatencyModel, LatencyEstimate
from repro.net.bandwidth import BandwidthAllocator
from repro.net.contention import (ContentionModel, LinkContention,
                                  PlanContention, WAN_CONTENTION_FACTOR)
from repro.net.transport import Message, Network
from repro.net.ping import PingService

__all__ = [
    "Cluster",
    "Host",
    "Link",
    "PathMetrics",
    "Site",
    "Topology",
    "scale_free_topology",
    "small_world_topology",
    "fat_sites_topology",
    "LatencyModel",
    "LatencyEstimate",
    "BandwidthAllocator",
    "ContentionModel",
    "LinkContention",
    "PlanContention",
    "WAN_CONTENTION_FACTOR",
    "Message",
    "Network",
    "PingService",
]
