"""Application-level RTT probes (the paper's non-ICMP "ping").

Two implementations with identical statistics:

* :meth:`PingService.probe` — a real round trip over the transport
  (PING/PONG messages through the peer's MPD port).  Used in protocol
  correctness tests.
* :meth:`PingService.estimate` — a direct draw from the latency model
  (no events).  Used by MPDs at scale, where 350 peers x k samples per
  allocation would otherwise dominate the event count.

``tests/net/test_ping.py`` cross-validates the two paths.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.net.latency import LatencyEstimate, LatencyModel
from repro.net.topology import Host
from repro.net.transport import Message, Network

__all__ = ["PingService", "PING_PORT"]

#: Port on which every MPD answers latency probes.
PING_PORT = "ping"


class PingService:
    """Round-trip measurement helper bound to one local host."""

    def __init__(self, network: Network, latency: LatencyModel, host: Host) -> None:
        self.network = network
        self.latency = latency
        self.host = host
        self._seq = 0

    # -- responder ------------------------------------------------------------
    def responder(self) -> Generator:
        """Simulated process answering PINGs forever; run per MPD."""
        while True:
            msg: Message = yield self.network.receive(self.host.name, PING_PORT, "PING")
            self.network.send(
                self.host.name, msg.src, port=msg.payload["reply_port"],
                kind="PONG", payload={"seq": msg.payload["seq"]},
            )

    # -- message-level probe -----------------------------------------------------
    def probe(self, target: Host, timeout_s: float = 5.0) -> Generator:
        """Process body measuring one RTT; returns ms or None on timeout."""
        self._seq += 1
        seq = self._seq
        reply_port = f"pong:{self.host.name}:{seq}"
        start = self.network.sim.now
        self.network.send(
            self.host.name, target.name, port=PING_PORT, kind="PING",
            payload={"seq": seq, "reply_port": reply_port},
        )
        reply = self.network.receive(self.host.name, reply_port, "PONG")
        deadline = self.network.sim.timeout(timeout_s)
        fired = yield self.network.sim.any_of([reply, deadline])
        if reply in fired:
            return (self.network.sim.now - start) * 1000.0
        return None

    # -- analytic probe ------------------------------------------------------------
    def estimate(
        self,
        target: Host,
        samples: int = 3,
        ewma_alpha: Optional[float] = None,
    ) -> LatencyEstimate:
        """Draw a measured-RTT estimate directly from the latency model.

        Matches the statistics of :meth:`probe` (same noise stream
        family) at zero event cost; the constant software overhead of a
        real round trip is added for fidelity.
        """
        est = self.latency.estimate(self.host, target, samples=samples,
                                    ewma_alpha=ewma_alpha)
        est.value_ms += 2_000.0 * self.network.sw_overhead_s
        return est
