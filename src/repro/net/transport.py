"""Message transport between simulated hosts.

Every host that registers with the :class:`Network` gets a FIFO inbox
(:class:`~repro.sim.resources.FilterStore` so receivers can match on
port/tag).  ``send`` computes the delivery time from the latency model,
the payload size and the bandwidth allocator, then schedules delivery
into the destination inbox.  Failed (dead) hosts silently drop traffic,
which is exactly what a crashed MPD does from the sender's viewpoint —
the reservation protocol's timeouts are what detect it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.bandwidth import BandwidthAllocator
from repro.net.latency import LatencyModel
from repro.net.topology import Host, Topology
from repro.sim.core import Simulator
from repro.sim.resources import FilterStore

__all__ = ["Message", "Network"]

#: Fixed per-message software overhead in seconds (marshalling, syscall).
DEFAULT_SW_OVERHEAD_S = 20e-6


@dataclass
class Message:
    """A delivered network message.

    Attributes
    ----------
    src, dst:
        Host names.
    port:
        Logical service name at the destination (``"mpd"``, ``"rs"``,
        ``"mpi:<job>:<slot>"`` ...).
    kind:
        Message type tag (protocol-specific).
    payload:
        Arbitrary picklable-equivalent content.
    size_bytes:
        Wire size used for the bandwidth term.
    sent_at / delivered_at:
        Simulation timestamps.
    """

    src: str
    dst: str
    port: str
    kind: str
    payload: Any = None
    size_bytes: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0
    msg_id: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst}"
                f":{self.port} {self.size_bytes}B>")


class Network:
    """Delivers messages between registered host inboxes.

    Parameters
    ----------
    sim:
        The simulator.
    topology:
        Static site/host/link description.
    latency:
        Latency model; if omitted a noiseless model on the simulator's
        ``net.latency`` stream is built.
    sw_overhead_s:
        Fixed per-message software overhead.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: Optional[LatencyModel] = None,
        sw_overhead_s: float = DEFAULT_SW_OVERHEAD_S,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.latency = latency or LatencyModel(
            topology, sim.rng.stream("net.latency"), noise_sigma_ms=0.0
        )
        self.bandwidth = BandwidthAllocator(topology)
        self.sw_overhead_s = sw_overhead_s
        self._inboxes: Dict[str, FilterStore] = {}
        self._down: Dict[str, bool] = {}
        self._msg_ids = count(1)
        #: (host, port) -> host the port moved to (rank migration).
        self._redirects: Dict[Tuple[str, str], str] = {}
        #: (host, port) -> arrival predicate; a False verdict drops the
        #: message at delivery time (stale-duplicate suppression).
        self._port_filters: Dict[Tuple[str, str], Callable[[Message], bool]] = {}
        #: Delivered-message counter (diagnostics).
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Messages that landed through a port redirect.
        self.messages_forwarded = 0
        #: Messages a port filter rejected on arrival.
        self.messages_filtered = 0

    # -- membership -----------------------------------------------------
    def register(self, host_name: str) -> FilterStore:
        """Create (or return) the inbox for ``host_name``."""
        if host_name not in self.topology.hosts:
            raise KeyError(f"unknown host {host_name!r}")
        inbox = self._inboxes.get(host_name)
        if inbox is None:
            inbox = FilterStore(self.sim, name=f"inbox:{host_name}")
            self._inboxes[host_name] = inbox
            self._down[host_name] = False
        return inbox

    def inbox(self, host_name: str) -> FilterStore:
        return self._inboxes[host_name]

    def set_down(self, host_name: str, down: bool = True) -> None:
        """Mark a host dead (drops all traffic to it) or alive again."""
        if host_name not in self._inboxes:
            raise KeyError(f"host {host_name!r} never registered")
        self._down[host_name] = down

    def is_down(self, host_name: str) -> bool:
        return self._down.get(host_name, False)

    # -- port mobility (rank migration) ---------------------------------
    def redirect_port(self, old_host: str, port: str, new_host: str) -> None:
        """Re-register ``port``: traffic addressed to ``old_host`` lands
        at ``new_host`` from now on.

        Senders that look placements up before every send switch over on
        their own; the redirect catches messages already scheduled for
        delivery (and senders still holding the stale address).  Entries
        are path-compressed on every install, so chains (A→B→C) resolve
        in one hop and a copy migrating *back* (A→B then B→A) cannot
        form a cycle — the target of a new redirect is a live endpoint,
        so any stale entry claiming it moved is deleted first.
        """
        self._redirects.pop((new_host, port), None)
        self._redirects[(old_host, port)] = new_host
        for key in [k for k in self._redirects if k[1] == port]:
            hop = self._redirects[key]
            seen = {key[0]}
            while (hop, port) in self._redirects and hop not in seen:
                seen.add(hop)
                hop = self._redirects[(hop, port)]
            self._redirects[key] = hop

    def resolve_port(self, host_name: str, port: str) -> str:
        """The host currently serving ``port`` for ``host_name``."""
        return self._redirects.get((host_name, port), host_name)

    def move_queued(self, old_host: str, port: str, new_host: str) -> int:
        """Move ``port``'s queued inbox items between hosts; returns count.

        Used together with :meth:`redirect_port` when a (rank, replica)
        copy migrates: messages that already arrived but were not yet
        consumed follow the copy so no logical message is lost.
        """
        src = self._inboxes.get(old_host)
        if src is None:
            return 0
        moved = src.discard(lambda msg: msg.port == port)
        dst = self.register(new_host)
        for msg in moved:
            dst.put(msg)
        return len(moved)

    # -- arrival filters -------------------------------------------------
    def set_port_filter(self, host_name: str, port: str,
                        predicate: Callable[[Message], bool]) -> None:
        """Install an arrival predicate for ``(host, port)``.

        Messages failing the predicate are counted in
        :attr:`messages_filtered` and never enter the inbox — the
        mechanism the replicated-MPI layer uses to stop stale duplicate
        copies from accumulating after their logical delivery.
        """
        self._port_filters[(host_name, port)] = predicate

    def clear_port_filter(self, host_name: str, port: str) -> None:
        self._port_filters.pop((host_name, port), None)

    # -- sending -----------------------------------------------------------
    def transfer_time_s(self, src: Host, dst: Host, size_bytes: int) -> float:
        """Latency + serialization time for one message, with contention."""
        delay = self.latency.one_way_delay_s(src, dst) + self.sw_overhead_s
        if size_bytes > 0 and src.name != dst.name:
            bw = self.bandwidth.effective_bandwidth_bps(src, dst)
            delay += size_bytes * 8.0 / bw
        return delay

    def send(
        self,
        src: str,
        dst: str,
        port: str,
        kind: str,
        payload: Any = None,
        size_bytes: int = 0,
    ) -> Message:
        """Fire-and-forget message; returns the (scheduled) message.

        Delivery is silently dropped if the destination is down or was
        never registered — like TCP connect timeouts to a dead peer,
        the *caller's* protocol timeout is the detection mechanism.
        """
        src_host = self.topology.host(src)
        dst_host = self.topology.host(dst)
        msg = Message(
            src=src,
            dst=dst,
            port=port,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
            msg_id=next(self._msg_ids),
        )
        if self._down.get(src, False):
            # A dead host cannot send either.
            self.messages_dropped += 1
            return msg
        route = self.resolve_port(dst, port)
        if self._inboxes.get(route) is None or self._down.get(route, False):
            self.messages_dropped += 1
            return msg

        delay = self.transfer_time_s(src_host, dst_host, size_bytes)
        uses_bw = size_bytes > 0 and src != dst
        if uses_bw:
            self.bandwidth.acquire(src_host, dst_host)

        def _deliver(_event) -> None:
            if uses_bw:
                self.bandwidth.release(src_host, dst_host)
            # Resolve again at delivery time: the port may have migrated
            # while this message was in flight.
            landing = self.resolve_port(dst, port)
            box = self._inboxes.get(landing)
            if box is None or self._down.get(landing, False):
                self.messages_dropped += 1
                return
            accept = self._port_filters.get((landing, port))
            if accept is not None and not accept(msg):
                self.messages_filtered += 1
                return
            if landing != dst:
                self.messages_forwarded += 1
            msg.delivered_at = self.sim.now
            self.messages_delivered += 1
            box.put(msg)

        evt = self.sim.event(name=f"deliver:{msg.msg_id}")
        evt.callbacks.append(_deliver)
        evt.succeed(delay=delay)
        return msg

    # -- receiving helpers ---------------------------------------------------
    def receive(self, host_name: str, port: str, kind: Optional[str] = None):
        """Event yielding the next message for ``port`` (and ``kind``)."""
        inbox = self._inboxes[host_name]

        def match(msg: Message) -> bool:
            return msg.port == port and (kind is None or msg.kind == kind)

        return inbox.get(match)
