"""Stochastic latency measurement model.

The paper is explicit that P2P-MPI's RTT probe is an application-level
empty-message round trip (not ICMP), and that the measurement is
"subject to CPU and TCP load variations".  Section 5.1 then explains the
observed interleaving of lyon/rennes/bordeaux hosts by the fact that
their base RTTs differ by less than the measurement noise, while nancy
(0.087 ms) and sophia (17.17 ms) remain correctly ranked.

We model a single probe's measured RTT as::

    measured = base_rtt + |N(0, sigma)| + load_penalty * load

where ``sigma`` defaults to 0.35 ms (calibrated so that sites within
~1 ms of each other interleave while sites >3 ms apart do not) and
``load`` is the number of busy cores at the probed host (each busy core
delays the probe's service by ``load_penalty`` ms on average).

The *estimate* used by an MPD is the mean of ``samples`` probes, or an
EWMA when smoothing is enabled (the paper's future-work item on making
measurements "less sensitive to external load").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.net.topology import Host, Topology

__all__ = ["LatencyModel", "LatencyEstimate"]

#: Default per-probe noise standard deviation in ms.
DEFAULT_NOISE_SIGMA_MS = 0.35
#: Default added delay per busy core at the target, in ms.
DEFAULT_LOAD_PENALTY_MS = 0.05


@dataclass
class LatencyEstimate:
    """An MPD's current belief about the RTT to one peer.

    Supports both plain averaging over a window and EWMA smoothing.
    """

    host: Host
    value_ms: float
    n_samples: int = 0
    ewma_alpha: Optional[float] = None

    def update(self, sample_ms: float) -> float:
        """Fold in one new probe; returns the new estimate."""
        if self.n_samples == 0:
            self.value_ms = sample_ms
        elif self.ewma_alpha is not None:
            self.value_ms += self.ewma_alpha * (sample_ms - self.value_ms)
        else:
            self.value_ms += (sample_ms - self.value_ms) / (self.n_samples + 1)
        self.n_samples += 1
        return self.value_ms


class LatencyModel:
    """Draws measured RTT samples between host pairs.

    Parameters
    ----------
    topology:
        Provides base RTTs.
    rng:
        A ``numpy.random.Generator`` (use a named stream from the
        simulator registry for determinism).
    noise_sigma_ms:
        Std-dev of the half-normal per-probe noise.
    load_penalty_ms:
        Extra delay per busy core at the probed host.
    load_of:
        Optional callable ``host_name -> busy core count`` wired to the
        gatekeeper so that loaded peers look slower, as in reality.
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        noise_sigma_ms: float = DEFAULT_NOISE_SIGMA_MS,
        load_penalty_ms: float = DEFAULT_LOAD_PENALTY_MS,
        load_of: Optional[Callable[[str], int]] = None,
    ) -> None:
        if noise_sigma_ms < 0:
            raise ValueError("noise_sigma_ms must be >= 0")
        self.topology = topology
        self.rng = rng
        self.noise_sigma_ms = noise_sigma_ms
        self.load_penalty_ms = load_penalty_ms
        self.load_of = load_of

    # -- sampling ----------------------------------------------------------
    def noise_ms(self) -> float:
        """One half-normal noise draw (>= 0)."""
        if self.noise_sigma_ms == 0.0:
            return 0.0
        return abs(float(self.rng.normal(0.0, self.noise_sigma_ms)))

    def sample_rtt_ms(self, src: Host, dst: Host) -> float:
        """One measured RTT probe from ``src`` to ``dst``."""
        base = self.topology.base_rtt_ms(src, dst)
        load = self.load_of(dst.name) if self.load_of is not None else 0
        return base + self.noise_ms() + self.load_penalty_ms * load

    def sample_many(self, src: Host, dst: Host, n: int) -> np.ndarray:
        """Vectorised batch of ``n`` probes (hot path for big caches)."""
        base = self.topology.base_rtt_ms(src, dst)
        load = self.load_of(dst.name) if self.load_of is not None else 0
        noise = (
            np.abs(self.rng.normal(0.0, self.noise_sigma_ms, size=n))
            if self.noise_sigma_ms > 0
            else np.zeros(n)
        )
        return base + noise + self.load_penalty_ms * load

    def estimate(
        self,
        src: Host,
        dst: Host,
        samples: int = 3,
        ewma_alpha: Optional[float] = None,
    ) -> LatencyEstimate:
        """Estimate the RTT from ``samples`` probes.

        With ``ewma_alpha`` set, later samples are folded in with
        exponential weighting instead of a plain mean.
        """
        if samples < 1:
            raise ValueError("samples must be >= 1")
        est = LatencyEstimate(host=dst, value_ms=0.0, ewma_alpha=ewma_alpha)
        for value in self.sample_many(src, dst, samples):
            est.update(float(value))
        return est

    # -- one-way delays for the transport -----------------------------------
    def one_way_delay_s(self, src: Host, dst: Host) -> float:
        """Sampled one-way delay in *seconds* (for message delivery)."""
        return self.sample_rtt_ms(src, dst) / 2.0 / 1000.0

    def base_one_way_delay_s(self, src: Host, dst: Host) -> float:
        """Unperturbed one-way delay in seconds (for cost models)."""
        return self.topology.base_rtt_ms(src, dst) / 2.0 / 1000.0
