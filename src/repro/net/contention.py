"""Plan-dependent WAN contention: who shares which backbone, and how.

The paper's testbed gives every host a private 1 Gb/s NIC, so the raw
path bottleneck is identical for every pair and cannot rank placements.
What differs between placements is how the *shared* site backbones
divide: Grid'5000 sites interconnect over RENATER links whose capacity
is pooled across every flow the job drives through them (the platform
paper in PAPERS.md documents exactly this shared-backbone regime).

Earlier revisions approximated that division with a hard-coded
``WAN_CONTENTION_FACTOR = 16`` — wrong for every plan whose crossing
count is not 16.  This module derives the divisor from the plan itself:

* a *plan* is the multiset of hosts carrying the job's process copies
  (one entry per copy; duplicates mean co-located processes);
* for each WAN backbone (site pair) the model counts the
  **concurrently crossing communicating pairs**: in any round of the
  pairwise / recursive-doubling collectives the MPJ runtime uses, each
  process drives at most one flow at a time, so at most
  ``min(n_a, n_b)`` flows cross the a<->b backbone simultaneously
  (``n_s`` = process copies placed in site ``s``);
* each crossing pair's contended bandwidth is its share of that
  backbone, clamped by the NIC-limited path rate a single flow could
  reach anyway.

The same counts feed two consumers: the communication-aware placement
score (:func:`repro.alloc.commaware.contended_pair_bw_bps`) and the
execution-time model (:mod:`repro.mpi.costmodel`, ``wan_contention``
mode ``"plan"``), so what the allocator optimises is what the
simulated application experiences.

Routed topologies (DESIGN.md §14) generalise the divisor from site
pairs to *traversed links*: each site pair's ``min(n_a, n_b)`` flows
load every link on its shortest-RTT route, loads accumulate on shared
links (router chords), and a pair's contended bandwidth is the
narrowest per-flow slice along its route.  The flat testbed is the
exact 1-hop special case — every site pair owns its private link, so
per-link loads coincide with the crossing-pair counts bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.net.topology import Host, Topology

__all__ = ["WAN_CONTENTION_FACTOR", "LinkContention", "PlanContention",
           "ContentionModel", "IncrementalPlanScore"]

#: The deprecated fixed divisor (the pre-calibration constant).  Kept
#: as the fallback for scoring *before a plan exists* — a strategy
#: ranking candidate hosts mid-construction has no placement to count
#: crossing pairs from — and as the ``"fixed"`` cost-model mode the
#: fig4 calibration suite pins the regression guard against.
WAN_CONTENTION_FACTOR = 16.0


@dataclass(frozen=True)
class LinkContention:
    """One WAN backbone's load under a concrete plan."""

    link: Tuple[str, str]
    backbone_bps: float
    crossing_pairs: int

    @property
    def per_pair_bps(self) -> float:
        """Each crossing pair's share of the backbone."""
        return self.backbone_bps / max(1, self.crossing_pairs)


@dataclass(frozen=True)
class PlanContention:
    """Contention state of one placement plan (immutable snapshot).

    Built by :meth:`ContentionModel.plan`; exposes per-link crossing
    counts and the per-pair contended bandwidth score.
    """

    topology: Topology
    site_counts: Tuple[Tuple[str, int], ...]
    crossing: Tuple[Tuple[Tuple[str, str], int], ...]

    def counts(self) -> Dict[str, int]:
        return dict(self.site_counts)

    def crossing_pairs(self) -> Dict[Tuple[str, str], int]:
        return dict(self.crossing)

    @cached_property
    def _crossing_map(self) -> Dict[Tuple[str, str], int]:
        """The crossing tuple as a dict, built once per snapshot."""
        return dict(self.crossing)

    @cached_property
    def _link_load_map(self) -> Dict[Tuple[str, str], int]:
        """Concurrent flows per *physical* backbone link.

        Flat mode: every site pair crosses its own private link, so
        this is exactly the crossing map.  Routed mode: each site
        pair's ``min(n_a, n_b)`` flows load every link on its route,
        so links shared by several routes accumulate the sum.
        """
        if not self.topology.routed:
            return self._crossing_map
        out: Dict[Tuple[str, str], int] = {}
        for (a, b), flows in self.crossing:
            if not flows:
                continue
            for link in self.topology.route_links(a, b):
                out[link] = out.get(link, 0) + flows
        return out

    def link_loads(self) -> Dict[Tuple[str, str], int]:
        """Concurrent crossing flows per physical backbone link."""
        return dict(self._link_load_map)

    def links(self) -> List[LinkContention]:
        """Per-backbone load, in canonical (sorted link key) order."""
        out = []
        for link in sorted(self._link_load_map):
            out.append(LinkContention(
                link=link,
                backbone_bps=self.topology.link_bandwidth_bps(link),
                crossing_pairs=self._link_load_map[link]))
        return out

    def max_crossing_pairs(self) -> int:
        """The most loaded backbone link's crossing count (0 if
        none).  Routed mode counts per traversed link, so a router
        chord shared by several site pairs reports their sum."""
        return max(self._link_load_map.values(), default=0)

    def pair_bw_bps(self, a: Host, b: Host) -> float:
        """Bandwidth the ``a``<->``b`` pair can expect under this plan.

        Symmetric in pair order.  Intra-site pairs keep the NIC-clamped
        path rate (a plan crossing no backbone reduces to
        :meth:`~repro.net.topology.Topology.bandwidth_bps` exactly);
        inter-site pairs get their share of the backbone, clamped by
        the NIC-limited path a single flow could reach anyway — so one
        lone crossing flow also reduces to the NIC-clamped rate, and
        the share is monotonically non-increasing in the crossing-pair
        count.
        """
        if a.name == b.name:
            return float("inf")
        path = self.topology.bandwidth_bps(a, b)
        if a.site == b.site:
            return path
        if self.topology.routed:
            return min(path, _routed_share_bps(
                self.topology, self._link_load_map, a.site, b.site))
        key = self.topology.link_key(a, b)
        pairs = self._crossing_map.get(key, 1)
        backbone = self.topology.backbone_bandwidth_bps(a, b)
        return min(path, backbone / max(1, pairs))


def _routed_share_bps(topology: Topology,
                      link_loads: Mapping[Tuple[str, str], int],
                      site_a: str, site_b: str) -> float:
    """Backbone share of one ``site_a``<->``site_b`` flow on a routed
    topology: the narrowest per-flow slice along the route, where each
    link divides its capacity among all flows loading it (divisor
    never below 1, mirroring the flat model's lone-flow behaviour)."""
    return min(
        topology.link_bandwidth_bps(link) / max(1, link_loads.get(link, 0))
        for link in topology.route_links(site_a, site_b))


class ContentionModel:
    """Counts WAN-crossing communicating pairs per backbone link.

    The counting rule is the dominant-collective concurrency bound: a
    pairwise exchange keeps every process in at most one flow per
    round, so the a<->b backbone carries at most ``min(n_a, n_b)``
    concurrent flows.  (The total *distinct* communicating pairs of an
    alltoall is ``n_a * n_b``, but those never occupy the wire at
    once — dividing by it would overcount contention by the round
    count.)
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @staticmethod
    def site_counts(hosts: Sequence[Host]) -> Dict[str, int]:
        """Process copies per site (one count per plan entry)."""
        counts: Dict[str, int] = {}
        for host in hosts:
            counts[host.site] = counts.get(host.site, 0) + 1
        return counts

    @staticmethod
    def crossing_from_counts(counts: Mapping[str, int]
                             ) -> Dict[Tuple[str, str], int]:
        """Crossing-pair count per backbone, from a site census."""
        names = sorted(counts)
        out: Dict[Tuple[str, str], int] = {}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                out[(a, b)] = min(counts[a], counts[b])
        return out

    def crossing_pairs(self, hosts: Sequence[Host]
                       ) -> Dict[Tuple[str, str], int]:
        """Concurrent crossing-pair count per WAN backbone link."""
        return self.crossing_from_counts(self.site_counts(hosts))

    def plan(self, hosts: Sequence[Host]) -> PlanContention:
        """Snapshot the contention state of a placement plan."""
        counts = self.site_counts(hosts)
        crossing = self.crossing_from_counts(counts)
        return PlanContention(
            topology=self.topology,
            site_counts=tuple(sorted(counts.items())),
            crossing=tuple(sorted(crossing.items())))

    def pair_bw_bps(self, hosts: Sequence[Host], a: Host, b: Host) -> float:
        """One-shot convenience over :meth:`plan`."""
        return self.plan(hosts).pair_bw_bps(a, b)


class IncrementalPlanScore:
    """Mutable companion to :class:`ContentionModel` for greedy loops.

    A strategy growing a plan one host at a time used to have only two
    options: re-run :meth:`ContentionModel.plan` over the whole host
    list per candidate (O(hosts) each, O(hosts^2) per selection pass)
    or fall back to the fixed divisor.  This class maintains the same
    site census under single-host :meth:`add`/:meth:`remove` in O(1)
    and answers the contended pair-bandwidth query in O(1), so
    try-a-candidate/score/undo costs O(selected) instead of
    O(selected * hosts).

    Agreement contract (pinned by the equivalence suite): after any
    add/remove sequence, :meth:`snapshot` equals
    ``ContentionModel(topology).plan(hosts)`` for the equivalent host
    multiset, and :meth:`pair_bw_bps` equals the snapshot's.
    """

    def __init__(self, topology: Topology,
                 hosts: Iterable[Host] = ()) -> None:
        self.topology = topology
        self._counts: Dict[str, int] = {}
        #: Routed mode only: live flow count per physical link,
        #: maintained incrementally so the agreement contract extends
        #: to per-link loads without re-routing the whole census.
        self._link_loads: Dict[Tuple[str, str], int] = {}
        self.size = 0
        for host in hosts:
            self.add(host)

    def add(self, host: Host, copies: int = 1) -> None:
        """Place ``copies`` process copies of the plan on ``host``."""
        self._bump(host.site, copies)

    def remove(self, host: Host, copies: int = 1) -> None:
        """Undo :meth:`add` (raises if the site census would go
        negative — removing what was never placed is a caller bug)."""
        self._bump(host.site, -copies)

    def _bump(self, site: str, delta: int) -> None:
        old = self._counts.get(site, 0)
        count = old + delta
        if count < 0:
            raise ValueError(
                f"site census for {site!r} would drop below zero")
        if self.topology.routed and count != old:
            # min(n_site, n_other) moved for every co-placed site;
            # apply the difference to each link on that pair's route.
            for other, n_other in self._counts.items():
                if other == site:
                    continue
                moved = min(count, n_other) - min(old, n_other)
                if not moved:
                    continue
                for link in self.topology.route_links(site, other):
                    load = self._link_loads.get(link, 0) + moved
                    if load:
                        self._link_loads[link] = load
                    else:
                        self._link_loads.pop(link, None)
        if count:
            self._counts[site] = count
        else:
            self._counts.pop(site, None)
        self.size += delta

    def counts(self) -> Dict[str, int]:
        """Live process-copy census per site."""
        return dict(self._counts)

    def crossing_pairs(self) -> Dict[Tuple[str, str], int]:
        """Live crossing-pair counts (O(sites^2) materialisation)."""
        return ContentionModel.crossing_from_counts(self._counts)

    def link_loads(self) -> Dict[Tuple[str, str], int]:
        """Live flow count per physical backbone link."""
        if self.topology.routed:
            return dict(self._link_loads)
        return self.crossing_pairs()

    def max_crossing_pairs(self) -> int:
        """Most loaded backbone link's crossing count.  Flat mode: the
        second-largest site census (two sites both feed their min into
        one private link).  Routed mode: the maintained per-link max."""
        if self.topology.routed:
            return max(self._link_loads.values(), default=0)
        if len(self._counts) < 2:
            return 0
        first = second = 0
        for count in self._counts.values():
            if count >= first:
                first, second = count, first
            elif count > second:
                second = count
        return second

    def pair_bw_bps(self, a: Host, b: Host) -> float:
        """Contended ``a``<->``b`` bandwidth under the live census.

        Same semantics as :meth:`PlanContention.pair_bw_bps`, answered
        in O(1) from the maintained counts.
        """
        if a.name == b.name:
            return float("inf")
        path = self.topology.bandwidth_bps(a, b)
        if a.site == b.site:
            return path
        if self.topology.routed:
            return min(path, _routed_share_bps(
                self.topology, self._link_loads, a.site, b.site))
        pairs = min(self._counts.get(a.site, 0),
                    self._counts.get(b.site, 0))
        backbone = self.topology.backbone_bandwidth_bps(a, b)
        return min(path, backbone / max(1, pairs))

    def snapshot(self) -> PlanContention:
        """Freeze the live census into a :class:`PlanContention` equal
        to what :meth:`ContentionModel.plan` builds from scratch."""
        return PlanContention(
            topology=self.topology,
            site_counts=tuple(sorted(self._counts.items())),
            crossing=tuple(sorted(self.crossing_pairs().items())))
