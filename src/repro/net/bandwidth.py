"""Per-link flow accounting and effective bandwidth under contention.

The transport treats each site pair (and each site's LAN) as one
contention domain.  Effective bandwidth for a new flow is the link
capacity divided by the number of flows active in the domain at send
time.  This processor-sharing snapshot is a standard fluid
approximation: it captures the first-order effect the paper's IS
analysis relies on (collectives crossing a loaded WAN link slow down)
without simulating packets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.net.topology import Host, Topology

__all__ = ["BandwidthAllocator"]


class BandwidthAllocator:
    """Tracks active flows per contention domain.

    Notes
    -----
    ``acquire`` returns the effective bandwidth granted to the new flow
    and registers it; the caller must ``release`` the same key when the
    transfer completes.  A zero-byte (latency-only) message should not
    acquire bandwidth at all.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._active: Dict[Tuple[str, str], int] = defaultdict(int)
        #: Cumulative flow count per domain (diagnostics).
        self.total_flows: Dict[Tuple[str, str], int] = defaultdict(int)

    def domain(self, src: Host, dst: Host) -> Tuple[str, str]:
        return self.topology.link_key(src, dst)

    def active_flows(self, src: Host, dst: Host) -> int:
        return self._active[self.domain(src, dst)]

    def acquire(self, src: Host, dst: Host) -> float:
        """Register a flow; return its effective bandwidth in bit/s."""
        key = self.domain(src, dst)
        self._active[key] += 1
        self.total_flows[key] += 1
        capacity = self.topology.bandwidth_bps(src, dst)
        return capacity / self._active[key]

    def release(self, src: Host, dst: Host) -> None:
        key = self.domain(src, dst)
        if self._active[key] <= 0:
            raise RuntimeError(f"release without acquire on {key}")
        self._active[key] -= 1

    def effective_bandwidth_bps(self, src: Host, dst: Host,
                                extra_flows: int = 0) -> float:
        """Bandwidth a flow *would* get now (without registering it)."""
        key = self.domain(src, dst)
        flows = self._active[key] + extra_flows + 1
        return self.topology.bandwidth_bps(src, dst) / flows

    def snapshot(self) -> Dict[Tuple[str, str], int]:
        """Copy of the active-flow table (for tests/monitors)."""
        return {k: v for k, v in self._active.items() if v}
