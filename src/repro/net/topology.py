"""Static network topology: sites, clusters, hosts, links.

The model matches how the paper describes Grid'5000: a federation of
*sites* (nancy, lyon, ...), each hosting one or more *clusters* of
homogeneous *hosts*.  Latency is defined between sites (WAN RTT) with a
small uniform intra-site LAN RTT; bandwidth likewise.  Inter-site RTTs
not reported by the paper are derived with a hub (star) approximation
through the submitting site, which is conservative and only affects the
application-model experiments (Figure 4), never allocation decisions
(which depend solely on RTT *to* the submitting site).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

__all__ = ["Host", "Cluster", "Site", "Topology", "LinkSpec"]

#: Default intra-site (LAN) round-trip time in milliseconds.  The paper's
#: figure legends report 0.087 ms for nancy-to-nancy probes.
DEFAULT_LAN_RTT_MS = 0.087

#: Default LAN bandwidth: Grid'5000 nodes of that era had GigE NICs.
DEFAULT_LAN_BW_BPS = 1.0e9


@dataclass(frozen=True)
class Host:
    """One computing node (one MPD daemon runs per host).

    Attributes
    ----------
    name:
        Globally unique, e.g. ``"grelon-17.nancy"``.
    site / cluster:
        Names of the owning site and cluster.
    cores:
        Number of cores; the paper configures each peer's ``P`` (max
        processes per application) to this value.
    speed:
        Relative per-core compute rate (1.0 = nancy's Xeon 5110
        baseline); used by the application models.
    memory_mb:
        Node memory, used by the spread-strategy rationale checks.
    """

    name: str
    site: str
    cluster: str
    cores: int
    speed: float = 1.0
    memory_mb: int = 2048

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Cluster:
    """A homogeneous set of hosts within a site (paper Table 1 rows)."""

    name: str
    site: str
    cpu_model: str
    nodes: int
    cpus: int
    cores: int
    speed: float = 1.0
    memory_mb: int = 2048

    @property
    def cores_per_node(self) -> int:
        if self.cores % self.nodes:
            raise ValueError(
                f"cluster {self.name}: {self.cores} cores not divisible by "
                f"{self.nodes} nodes"
            )
        return self.cores // self.nodes

    def hosts(self) -> List[Host]:
        """Materialise the node list (``<cluster>-<i>.<site>``)."""
        return [
            Host(
                name=f"{self.name}-{i}.{self.site}",
                site=self.site,
                cluster=self.name,
                cores=self.cores_per_node,
                speed=self.speed,
                memory_mb=self.memory_mb,
            )
            for i in range(1, self.nodes + 1)
        ]


@dataclass(frozen=True)
class Site:
    """A geographical site hosting clusters."""

    name: str
    clusters: Tuple[Cluster, ...]

    @property
    def n_hosts(self) -> int:
        return sum(c.nodes for c in self.clusters)

    @property
    def n_cores(self) -> int:
        return sum(c.cores for c in self.clusters)


@dataclass(frozen=True)
class LinkSpec:
    """WAN link properties between two sites."""

    rtt_ms: float
    bandwidth_bps: float


class Topology:
    """Site/host database plus the site-level link graph.

    Parameters
    ----------
    sites:
        Site definitions.
    site_rtt_ms:
        Mapping ``(site_a, site_b) -> RTT in ms`` for WAN pairs.  Pairs
        may be given in either order; missing non-hub pairs are filled
        with the hub approximation through ``hub`` if provided.
    site_bw_bps:
        Mapping ``(site_a, site_b) -> bandwidth in bit/s``; missing
        pairs default to ``default_wan_bw_bps``.
    hub:
        Site through which unknown pairwise RTTs are routed
        (``rtt(a,b) = rtt(a,hub) + rtt(hub,b)``).
    """

    def __init__(
        self,
        sites: Iterable[Site],
        site_rtt_ms: Optional[Dict[Tuple[str, str], float]] = None,
        site_bw_bps: Optional[Dict[Tuple[str, str], float]] = None,
        hub: Optional[str] = None,
        lan_rtt_ms: float = DEFAULT_LAN_RTT_MS,
        lan_bw_bps: float = DEFAULT_LAN_BW_BPS,
        default_wan_bw_bps: float = 10.0e9,
    ) -> None:
        self.sites: Dict[str, Site] = {}
        self.hosts: Dict[str, Host] = {}
        self._hosts_by_site: Dict[str, List[Host]] = {}
        self.lan_rtt_ms = lan_rtt_ms
        self.lan_bw_bps = lan_bw_bps
        self.default_wan_bw_bps = default_wan_bw_bps
        self.hub = hub

        for site in sites:
            if site.name in self.sites:
                raise ValueError(f"duplicate site {site.name!r}")
            self.sites[site.name] = site
            bucket: List[Host] = []
            for cluster in site.clusters:
                for host in cluster.hosts():
                    if host.name in self.hosts:
                        raise ValueError(f"duplicate host {host.name!r}")
                    self.hosts[host.name] = host
                    bucket.append(host)
            self._hosts_by_site[site.name] = bucket

        self._rtt: Dict[Tuple[str, str], float] = {}
        for (a, b), val in (site_rtt_ms or {}).items():
            self._check_site(a), self._check_site(b)
            self._rtt[self._key(a, b)] = float(val)
        self._bw: Dict[Tuple[str, str], float] = {}
        for (a, b), val in (site_bw_bps or {}).items():
            self._check_site(a), self._check_site(b)
            self._bw[self._key(a, b)] = float(val)

        if hub is not None:
            self._check_site(hub)
            self._fill_via_hub(hub)

        self.graph = self._build_graph()

        # Memos for the cost-model hot path (repro.mpi.costmodel):
        # site-level metric matrices per site subset, and GroupLayout
        # templates per ordered host tuple.  Both live on the topology
        # because their values depend only on it.
        self._site_matrix_memo: Dict[
            Tuple[str, ...],
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self.layout_memo: "OrderedDict" = OrderedDict()

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _check_site(self, name: str) -> None:
        if name not in self.sites:
            raise KeyError(f"unknown site {name!r}")

    def _fill_via_hub(self, hub: str) -> None:
        names = sorted(self.sites)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                key = self._key(a, b)
                if key in self._rtt or hub in (a, b):
                    continue
                ra = self._rtt.get(self._key(a, hub))
                rb = self._rtt.get(self._key(b, hub))
                if ra is not None and rb is not None:
                    self._rtt[key] = ra + rb

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.sites)
        for (a, b), rtt in self._rtt.items():
            graph.add_edge(a, b, rtt_ms=rtt, bw_bps=self._bw.get((a, b), self.default_wan_bw_bps))
        return graph

    # -- queries ---------------------------------------------------------
    def host(self, name: str) -> Host:
        return self.hosts[name]

    def hosts_in_site(self, site: str) -> List[Host]:
        self._check_site(site)
        return list(self._hosts_by_site[site])

    def site_representative(self, site: str) -> Host:
        """First host of ``site``, without the defensive list copy of
        :meth:`hosts_in_site` — link metrics depend only on the site
        pair, so any one host stands in for all of them."""
        self._check_site(site)
        bucket = self._hosts_by_site[site]
        if not bucket:
            raise KeyError(f"site {site!r} has no hosts")
        return bucket[0]

    def all_hosts(self) -> List[Host]:
        """All hosts in deterministic (site, cluster, index) order."""
        return [h for s in sorted(self.sites) for h in self._hosts_by_site[s]]

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    @property
    def n_cores(self) -> int:
        return sum(h.cores for h in self.hosts.values())

    def same_site(self, a: Host, b: Host) -> bool:
        return a.site == b.site

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """Unperturbed round-trip time between two hosts in ms."""
        if a.site == b.site:
            return 0.0 if a.name == b.name else self.lan_rtt_ms
        key = self._key(a.site, b.site)
        try:
            return self._rtt[key]
        except KeyError:
            raise KeyError(f"no RTT defined between {a.site} and {b.site}") from None

    def site_rtt_ms(self, a: str, b: str) -> float:
        if a == b:
            return self.lan_rtt_ms
        return self._rtt[self._key(a, b)]

    def bandwidth_bps(self, a: Host, b: Host) -> float:
        """Bottleneck bandwidth of the a->b path in bit/s."""
        if a.name == b.name:
            return float("inf")
        if a.site == b.site:
            return self.lan_bw_bps
        wan = self._bw.get(self._key(a.site, b.site), self.default_wan_bw_bps)
        # A WAN flow still traverses both LANs.
        return min(self.lan_bw_bps, wan)

    def backbone_bandwidth_bps(self, a: Host, b: Host) -> float:
        """Site-level link capacity of the a<->b path, without the NIC
        clamp of :meth:`bandwidth_bps`.

        This is the *shared* capacity all flows between the two sites
        divide among themselves — the quantity communication-aware
        placement scores care about (a 1 Gb/s NIC bottleneck is private
        per pair; a 1 Gb/s bordeaux backbone is not).
        """
        if a.name == b.name:
            return float("inf")
        if a.site == b.site:
            return self.lan_bw_bps
        return self._bw.get(self._key(a.site, b.site), self.default_wan_bw_bps)

    def site_matrices(self, site_names: Tuple[str, ...]
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memoized site-level metric matrices for a site subset.

        Returns ``(oneway_s, bw_bps, backbone_bps)`` — one-way latency
        in seconds, NIC-clamped path rate, and pooled backbone capacity
        between every pair of ``site_names`` (LAN values on the
        diagonal).  The matrices depend only on the topology and the
        site subset, never on a placement, so every
        :class:`~repro.mpi.costmodel.GroupLayout` over the same site
        mix shares one read-only copy.
        """
        cached = self._site_matrix_memo.get(site_names)
        if cached is not None:
            return cached
        n = len(site_names)
        oneway = np.zeros((n, n))
        bw = np.zeros((n, n))
        backbone = np.zeros((n, n))
        for i, a in enumerate(site_names):
            for j, b in enumerate(site_names):
                oneway[i, j] = self.site_rtt_ms(a, b) / 2.0 / 1000.0
                if a == b:
                    bw[i, j] = self.lan_bw_bps
                    backbone[i, j] = self.lan_bw_bps
                else:
                    ha = self.site_representative(a)
                    hb = self.site_representative(b)
                    bw[i, j] = self.bandwidth_bps(ha, hb)
                    backbone[i, j] = self.backbone_bandwidth_bps(ha, hb)
        for arr in (oneway, bw, backbone):
            arr.setflags(write=False)
        self._site_matrix_memo[site_names] = (oneway, bw, backbone)
        return oneway, bw, backbone

    def link_key(self, a: Host, b: Host) -> Tuple[str, str]:
        """Canonical contention-domain key for the a<->b path."""
        if a.site == b.site:
            return (a.site, a.site)
        return self._key(a.site, b.site)

    # -- pairwise placement metrics --------------------------------------
    # Communication-aware allocation strategies (repro.alloc.commaware)
    # score candidate host sets by their worst link.  RTT and bandwidth
    # depend only on the site pair, so both metrics reduce a host set
    # to one representative per site plus a same-site flag and run in
    # O(|distinct site pairs|), not O(|hosts|^2) — a 600-process
    # grid5000 allocation spans hundreds of hosts but only 6 sites.

    def site_representatives(self, hosts: Sequence[Host]
                             ) -> Tuple[List[Host], bool]:
        """One distinct host per site, plus whether any site holds two.

        The reduction both placement metrics (and the commaware
        experiment pack's contended-bandwidth score) are computed on.
        """
        per_site: Dict[str, Host] = {}
        names = set()
        same_site_pair = False
        for host in hosts:
            if host.name in names:
                continue
            names.add(host.name)
            if host.site in per_site:
                same_site_pair = True
            else:
                per_site[host.site] = host
        return list(per_site.values()), same_site_pair

    def latency_diameter_ms(self, hosts: Sequence[Host]) -> float:
        """Largest pairwise base RTT among ``hosts`` (0 for < 2 hosts)."""
        reps, same_site_pair = self.site_representatives(hosts)
        diameter = self.lan_rtt_ms if same_site_pair else 0.0
        for i, a in enumerate(reps):
            for b in reps[i + 1:]:
                diameter = max(diameter, self.base_rtt_ms(a, b))
        return diameter

    def min_bandwidth_bps(self, hosts: Sequence[Host]) -> float:
        """Smallest pairwise bottleneck bandwidth among ``hosts``.

        Returns ``inf`` for fewer than two distinct hosts — an empty
        minimum means no link can constrain the placement.
        """
        reps, same_site_pair = self.site_representatives(hosts)
        narrowest = self.lan_bw_bps if same_site_pair else float("inf")
        for i, a in enumerate(reps):
            for b in reps[i + 1:]:
                narrowest = min(narrowest, self.bandwidth_bps(a, b))
        return narrowest

    def summary(self) -> str:
        lines = [f"{len(self.sites)} sites, {self.n_hosts} hosts, {self.n_cores} cores"]
        for name in sorted(self.sites):
            site = self.sites[name]
            lines.append(f"  {name}: {site.n_hosts} hosts / {site.n_cores} cores")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Topology sites={len(self.sites)} hosts={self.n_hosts}>"
