"""Static network topology: sites, clusters, hosts, links.

The model matches how the paper describes Grid'5000: a federation of
*sites* (nancy, lyon, ...), each hosting one or more *clusters* of
homogeneous *hosts*.  Latency is defined between sites (WAN RTT) with a
small uniform intra-site LAN RTT; bandwidth likewise.  Inter-site RTTs
not reported by the paper are derived with a hub (star) approximation
through the submitting site, which is conservative and only affects the
application-model experiments (Figure 4), never allocation decisions
(which depend solely on RTT *to* the submitting site).

Two wiring modes (DESIGN.md §14)
--------------------------------
* **flat** (the paper's testbed): every known site pair has its own
  private backbone — a one-hop route over the single link
  ``(site_a, site_b)``.  This is the original model, preserved bit for
  bit.
* **routed** (generated complex-network families): the constructor
  takes explicit :class:`Link` definitions — possibly through pure
  *transit* nodes (routers) that host nothing — and every site pair's
  path is derived by shortest-RTT routing over that link graph.  A
  path's RTT is the sum of its links' RTTs, its backbone bandwidth the
  bottleneck link, and — the part contention cares about — crossing
  flows load **every traversed link**, so two site pairs routed through
  one router chord genuinely share it.

Both modes answer through the same :meth:`Topology.path_metrics`
facade; consumers never branch on the mode themselves.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

__all__ = ["Host", "Cluster", "Site", "Topology", "LinkSpec", "Link",
           "PathMetrics"]

#: Default intra-site (LAN) round-trip time in milliseconds.  The paper's
#: figure legends report 0.087 ms for nancy-to-nancy probes.
DEFAULT_LAN_RTT_MS = 0.087

#: Default LAN bandwidth: Grid'5000 nodes of that era had GigE NICs.
DEFAULT_LAN_BW_BPS = 1.0e9


@dataclass(frozen=True)
class Host:
    """One computing node (one MPD daemon runs per host).

    Attributes
    ----------
    name:
        Globally unique, e.g. ``"grelon-17.nancy"``.
    site / cluster:
        Names of the owning site and cluster.
    cores:
        Number of cores; the paper configures each peer's ``P`` (max
        processes per application) to this value.
    speed:
        Relative per-core compute rate (1.0 = nancy's Xeon 5110
        baseline); used by the application models.
    memory_mb:
        Node memory, used by the spread-strategy rationale checks.
    """

    name: str
    site: str
    cluster: str
    cores: int
    speed: float = 1.0
    memory_mb: int = 2048

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Cluster:
    """A homogeneous set of hosts within a site (paper Table 1 rows)."""

    name: str
    site: str
    cpu_model: str
    nodes: int
    cpus: int
    cores: int
    speed: float = 1.0
    memory_mb: int = 2048

    @property
    def cores_per_node(self) -> int:
        if self.cores % self.nodes:
            raise ValueError(
                f"cluster {self.name}: {self.cores} cores not divisible by "
                f"{self.nodes} nodes"
            )
        return self.cores // self.nodes

    def hosts(self) -> List[Host]:
        """Materialise the node list (``<cluster>-<i>.<site>``)."""
        return [
            Host(
                name=f"{self.name}-{i}.{self.site}",
                site=self.site,
                cluster=self.name,
                cores=self.cores_per_node,
                speed=self.speed,
                memory_mb=self.memory_mb,
            )
            for i in range(1, self.nodes + 1)
        ]


@dataclass(frozen=True)
class Site:
    """A geographical site hosting clusters."""

    name: str
    clusters: Tuple[Cluster, ...]

    @property
    def n_hosts(self) -> int:
        return sum(c.nodes for c in self.clusters)

    @property
    def n_cores(self) -> int:
        return sum(c.cores for c in self.clusters)


@dataclass(frozen=True)
class LinkSpec:
    """WAN link properties between two sites."""

    rtt_ms: float
    bandwidth_bps: float


@dataclass(frozen=True)
class Link:
    """One physical backbone link of a *routed* topology.

    Endpoints are node names of the link graph: site names or transit
    (router) node names.  The canonical key is the sorted endpoint
    pair, mirroring :meth:`Topology.link_key`.
    """

    a: str
    b: str
    rtt_ms: float
    bandwidth_bps: float

    @property
    def key(self) -> Tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


@dataclass(frozen=True)
class PathMetrics:
    """End-to-end path properties between two hosts (or sites).

    Attributes
    ----------
    rtt_ms:
        Round-trip time of the whole path.  Flat mode: the configured
        site-pair RTT.  Routed mode: the sum of the traversed links'
        RTTs (real shortest-path RTT, not the hub/star approximation).
    bandwidth_bps:
        The *backbone* bottleneck — the narrowest traversed link,
        without any NIC clamp.  This is the shared capacity crossing
        flows divide (:mod:`repro.net.contention`).
    links:
        Canonical keys of the traversed backbone links, in traversal
        order.  Empty for same-site (or same-host) paths; exactly one
        entry in flat mode.
    """

    rtt_ms: float
    bandwidth_bps: float
    links: Tuple[Tuple[str, str], ...] = ()

    @property
    def hops(self) -> int:
        return len(self.links)


class Topology:
    """Site/host database plus the site-level link graph.

    Parameters
    ----------
    sites:
        Site definitions.
    site_rtt_ms:
        Mapping ``(site_a, site_b) -> RTT in ms`` for WAN pairs.  Pairs
        may be given in either order; missing non-hub pairs are filled
        with the hub approximation through ``hub`` if provided.
    site_bw_bps:
        Mapping ``(site_a, site_b) -> bandwidth in bit/s``; missing
        pairs default to ``default_wan_bw_bps``.
    hub:
        Site through which unknown pairwise RTTs are routed
        (``rtt(a,b) = rtt(a,hub) + rtt(hub,b)``).  Flat mode only —
        routed topologies derive real shortest-path RTTs instead.
    links:
        Explicit :class:`Link` definitions.  Passing them switches the
        topology to *routed* mode: site pairs take shortest-RTT
        multi-hop paths over this link graph, and ``site_rtt_ms`` /
        ``site_bw_bps`` / ``hub`` must be ``None``.
    transit:
        Names of pure transit nodes (routers) of the routed link
        graph; they appear on paths but host nothing.
    """

    def __init__(
        self,
        sites: Iterable[Site],
        site_rtt_ms: Optional[Dict[Tuple[str, str], float]] = None,
        site_bw_bps: Optional[Dict[Tuple[str, str], float]] = None,
        hub: Optional[str] = None,
        lan_rtt_ms: float = DEFAULT_LAN_RTT_MS,
        lan_bw_bps: float = DEFAULT_LAN_BW_BPS,
        default_wan_bw_bps: float = 10.0e9,
        links: Optional[Sequence[Link]] = None,
        transit: Sequence[str] = (),
    ) -> None:
        self.sites: Dict[str, Site] = {}
        self.hosts: Dict[str, Host] = {}
        self._hosts_by_site: Dict[str, List[Host]] = {}
        self.lan_rtt_ms = lan_rtt_ms
        self.lan_bw_bps = lan_bw_bps
        self.default_wan_bw_bps = default_wan_bw_bps
        self.hub = hub
        self.routed = links is not None
        self.transit: Tuple[str, ...] = tuple(transit)
        if self.routed and (site_rtt_ms or site_bw_bps or hub):
            raise ValueError(
                "routed topologies take explicit links; site_rtt_ms/"
                "site_bw_bps/hub belong to the flat model")
        if self.transit and not self.routed:
            raise ValueError("transit nodes require routed links")

        for site in sites:
            if site.name in self.sites:
                raise ValueError(f"duplicate site {site.name!r}")
            self.sites[site.name] = site
            bucket: List[Host] = []
            for cluster in site.clusters:
                for host in cluster.hosts():
                    if host.name in self.hosts:
                        raise ValueError(f"duplicate host {host.name!r}")
                    self.hosts[host.name] = host
                    bucket.append(host)
            self._hosts_by_site[site.name] = bucket

        self._rtt: Dict[Tuple[str, str], float] = {}
        for (a, b), val in (site_rtt_ms or {}).items():
            self._check_site(a), self._check_site(b)
            self._rtt[self._key(a, b)] = float(val)
        self._bw: Dict[Tuple[str, str], float] = {}
        for (a, b), val in (site_bw_bps or {}).items():
            self._check_site(a), self._check_site(b)
            self._bw[self._key(a, b)] = float(val)

        if hub is not None:
            self._check_site(hub)
            self._fill_via_hub(hub)

        self._links: Dict[Tuple[str, str], Link] = {}
        if self.routed:
            nodes = set(self.sites) | set(self.transit)
            for link in links:
                for end in (link.a, link.b):
                    if end not in nodes:
                        raise ValueError(
                            f"link endpoint {end!r} is neither a site "
                            f"nor a transit node")
                if link.a == link.b:
                    raise ValueError(f"self-link at {link.a!r}")
                if link.key in self._links:
                    raise ValueError(f"duplicate link {link.key}")
                self._links[link.key] = link
            #: site -> {site -> PathMetrics}, filled lazily per source.
            self._route_memo: Dict[str, Dict[str, PathMetrics]] = {}

        self.graph = self._build_graph()
        if self.routed:
            self._check_connected()

        # Memos for the cost-model hot path (repro.mpi.costmodel):
        # site-level metric matrices per site subset, and GroupLayout
        # templates per ordered host tuple.  Both live on the topology
        # because their values depend only on it.
        self._site_matrix_memo: Dict[
            Tuple[str, ...],
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self.layout_memo: "OrderedDict" = OrderedDict()

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _check_site(self, name: str) -> None:
        if name not in self.sites:
            raise KeyError(f"unknown site {name!r}")

    def _fill_via_hub(self, hub: str) -> None:
        names = sorted(self.sites)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                key = self._key(a, b)
                if key in self._rtt or hub in (a, b):
                    continue
                ra = self._rtt.get(self._key(a, hub))
                rb = self._rtt.get(self._key(b, hub))
                if ra is not None and rb is not None:
                    self._rtt[key] = ra + rb

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.sites)
        if self.routed:
            graph.add_nodes_from(self.transit)
            for key in sorted(self._links):
                link = self._links[key]
                graph.add_edge(key[0], key[1], rtt_ms=link.rtt_ms,
                               bw_bps=link.bandwidth_bps)
            return graph
        for (a, b), rtt in self._rtt.items():
            graph.add_edge(a, b, rtt_ms=rtt, bw_bps=self._bw.get((a, b), self.default_wan_bw_bps))
        return graph

    def _check_connected(self) -> None:
        """Routed topologies must reach every site from every other."""
        names = sorted(self.sites)
        if not names:
            return
        reachable = nx.node_connected_component(self.graph, names[0])
        missing = [s for s in names if s not in reachable]
        if missing:
            raise ValueError(
                f"routed topology is disconnected: no path from "
                f"{names[0]!r} to {missing}")

    # -- routing ---------------------------------------------------------
    def _routes_from(self, source: str) -> Dict[str, PathMetrics]:
        """Shortest-RTT routes from ``source`` to every site, memoized.

        Deterministic: the link graph is built in sorted-key order, so
        Dijkstra's tie-breaking is reproducible across processes.
        """
        memo = self._route_memo.get(source)
        if memo is not None:
            return memo
        _, paths = nx.single_source_dijkstra(self.graph, source,
                                             weight="rtt_ms")
        memo = {}
        for site in self.sites:
            if site == source or site not in paths:
                continue
            path = paths[site]
            hops = tuple(self._key(u, v) for u, v in zip(path, path[1:]))
            memo[site] = PathMetrics(
                rtt_ms=sum(self._links[k].rtt_ms for k in hops),
                bandwidth_bps=min(self._links[k].bandwidth_bps
                                  for k in hops),
                links=hops)
        self._route_memo[source] = memo
        return memo

    def site_path_metrics(self, a: str, b: str) -> PathMetrics:
        """Site-level path facade: RTT, backbone bottleneck, links.

        Flat mode answers from the configured site-pair tables (a
        one-hop route over the pair's own private link); routed mode
        from the shortest-RTT multi-hop route.
        """
        self._check_site(a), self._check_site(b)
        if a == b:
            return PathMetrics(rtt_ms=self.lan_rtt_ms,
                               bandwidth_bps=self.lan_bw_bps)
        if self.routed:
            metrics = self._routes_from(a).get(b)
            if metrics is None:  # pragma: no cover - guarded at init
                raise KeyError(f"no route between {a} and {b}")
            return metrics
        key = self._key(a, b)
        rtt = self._rtt.get(key)
        if rtt is None:
            raise KeyError(f"no RTT defined between {a} and {b}")
        return PathMetrics(
            rtt_ms=rtt,
            bandwidth_bps=self._bw.get(key, self.default_wan_bw_bps),
            links=(key,))

    def path_metrics(self, a: Host, b: Host) -> PathMetrics:
        """Host-level path facade (same-host/same-site short paths)."""
        if a.name == b.name:
            return PathMetrics(rtt_ms=0.0, bandwidth_bps=float("inf"))
        if a.site == b.site:
            return PathMetrics(rtt_ms=self.lan_rtt_ms,
                               bandwidth_bps=self.lan_bw_bps)
        return self.site_path_metrics(a.site, b.site)

    def route_links(self, site_a: str, site_b: str
                    ) -> Tuple[Tuple[str, str], ...]:
        """Backbone link keys the ``site_a``<->``site_b`` path loads
        (empty for the same site)."""
        if site_a == site_b:
            return ()
        return self.site_path_metrics(site_a, site_b).links

    def link_bandwidth_bps(self, key: Tuple[str, str]) -> float:
        """Capacity of one backbone link by canonical key."""
        if key[0] == key[1]:
            return self.lan_bw_bps
        if self.routed:
            return self._links[key].bandwidth_bps
        return self._bw.get(key, self.default_wan_bw_bps)

    # -- queries ---------------------------------------------------------
    def host(self, name: str) -> Host:
        return self.hosts[name]

    def hosts_in_site(self, site: str) -> List[Host]:
        self._check_site(site)
        return list(self._hosts_by_site[site])

    def site_representative(self, site: str) -> Host:
        """First host of ``site``, without the defensive list copy of
        :meth:`hosts_in_site` — link metrics depend only on the site
        pair, so any one host stands in for all of them."""
        self._check_site(site)
        bucket = self._hosts_by_site[site]
        if not bucket:
            raise KeyError(f"site {site!r} has no hosts")
        return bucket[0]

    def all_hosts(self) -> List[Host]:
        """All hosts in deterministic (site, cluster, index) order."""
        return [h for s in sorted(self.sites) for h in self._hosts_by_site[s]]

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    @property
    def n_cores(self) -> int:
        return sum(h.cores for h in self.hosts.values())

    def same_site(self, a: Host, b: Host) -> bool:
        return a.site == b.site

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """Unperturbed round-trip time between two hosts in ms."""
        if a.site == b.site:
            return 0.0 if a.name == b.name else self.lan_rtt_ms
        return self.site_path_metrics(a.site, b.site).rtt_ms

    def site_rtt_ms(self, a: str, b: str) -> float:
        return self.site_path_metrics(a, b).rtt_ms

    def bandwidth_bps(self, a: Host, b: Host) -> float:
        """Bottleneck bandwidth of the a->b path in bit/s."""
        if a.name == b.name:
            return float("inf")
        if a.site == b.site:
            return self.lan_bw_bps
        wan = self.site_path_metrics(a.site, b.site).bandwidth_bps
        # A WAN flow still traverses both LANs.
        return min(self.lan_bw_bps, wan)

    def backbone_bandwidth_bps(self, a: Host, b: Host) -> float:
        """Site-level link capacity of the a<->b path, without the NIC
        clamp of :meth:`bandwidth_bps`.

        This is the *shared* capacity all flows between the two sites
        divide among themselves — the quantity communication-aware
        placement scores care about (a 1 Gb/s NIC bottleneck is private
        per pair; a 1 Gb/s bordeaux backbone is not).  Routed mode: the
        bottleneck link of the shortest-RTT path.
        """
        if a.name == b.name:
            return float("inf")
        if a.site == b.site:
            return self.lan_bw_bps
        return self.site_path_metrics(a.site, b.site).bandwidth_bps

    def site_matrices(self, site_names: Tuple[str, ...]
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memoized site-level metric matrices for a site subset.

        Returns ``(oneway_s, bw_bps, backbone_bps)`` — one-way latency
        in seconds, NIC-clamped path rate, and pooled backbone capacity
        between every pair of ``site_names`` (LAN values on the
        diagonal).  The matrices depend only on the topology and the
        site subset, never on a placement, so every
        :class:`~repro.mpi.costmodel.GroupLayout` over the same site
        mix shares one read-only copy.
        """
        cached = self._site_matrix_memo.get(site_names)
        if cached is not None:
            return cached
        n = len(site_names)
        oneway = np.zeros((n, n))
        bw = np.zeros((n, n))
        backbone = np.zeros((n, n))
        for i, a in enumerate(site_names):
            for j, b in enumerate(site_names):
                oneway[i, j] = self.site_rtt_ms(a, b) / 2.0 / 1000.0
                if a == b:
                    bw[i, j] = self.lan_bw_bps
                    backbone[i, j] = self.lan_bw_bps
                else:
                    ha = self.site_representative(a)
                    hb = self.site_representative(b)
                    bw[i, j] = self.bandwidth_bps(ha, hb)
                    backbone[i, j] = self.backbone_bandwidth_bps(ha, hb)
        for arr in (oneway, bw, backbone):
            arr.setflags(write=False)
        self._site_matrix_memo[site_names] = (oneway, bw, backbone)
        return oneway, bw, backbone

    def link_key(self, a: Host, b: Host) -> Tuple[str, str]:
        """Canonical contention-domain key for the a<->b path."""
        if a.site == b.site:
            return (a.site, a.site)
        return self._key(a.site, b.site)

    # -- pairwise placement metrics --------------------------------------
    # Communication-aware allocation strategies (repro.alloc.commaware)
    # score candidate host sets by their worst link.  RTT and bandwidth
    # depend only on the site pair, so both metrics reduce a host set
    # to one representative per site plus a same-site flag and run in
    # O(|distinct site pairs|), not O(|hosts|^2) — a 600-process
    # grid5000 allocation spans hundreds of hosts but only 6 sites.

    def site_representatives(self, hosts: Sequence[Host]
                             ) -> Tuple[List[Host], bool]:
        """One distinct host per site, plus whether any site holds two.

        The reduction both placement metrics (and the commaware
        experiment pack's contended-bandwidth score) are computed on.
        """
        per_site: Dict[str, Host] = {}
        names = set()
        same_site_pair = False
        for host in hosts:
            if host.name in names:
                continue
            names.add(host.name)
            if host.site in per_site:
                same_site_pair = True
            else:
                per_site[host.site] = host
        return list(per_site.values()), same_site_pair

    def latency_diameter_ms(self, hosts: Sequence[Host]) -> float:
        """Largest pairwise base RTT among ``hosts`` (0 for < 2 hosts)."""
        reps, same_site_pair = self.site_representatives(hosts)
        diameter = self.lan_rtt_ms if same_site_pair else 0.0
        for i, a in enumerate(reps):
            for b in reps[i + 1:]:
                diameter = max(diameter, self.base_rtt_ms(a, b))
        return diameter

    def min_bandwidth_bps(self, hosts: Sequence[Host]) -> float:
        """Smallest pairwise bottleneck bandwidth among ``hosts``.

        Returns ``inf`` for fewer than two distinct hosts — an empty
        minimum means no link can constrain the placement.
        """
        reps, same_site_pair = self.site_representatives(hosts)
        narrowest = self.lan_bw_bps if same_site_pair else float("inf")
        for i, a in enumerate(reps):
            for b in reps[i + 1:]:
                narrowest = min(narrowest, self.bandwidth_bps(a, b))
        return narrowest

    def summary(self) -> str:
        lines = [f"{len(self.sites)} sites, {self.n_hosts} hosts, {self.n_cores} cores"]
        for name in sorted(self.sites):
            site = self.sites[name]
            lines.append(f"  {name}: {site.n_hosts} hosts / {site.n_cores} cores")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Topology sites={len(self.sites)} hosts={self.n_hosts}>"
