"""Distributed result aggregation: merge shard stores, roll up campaigns.

The paper's campaigns were executed piecewise across Grid'5000 sites
and assembled into one dataset afterwards — the workflow the platform's
own tooling papers describe as the norm.  This module is that assembly
step for the experiment engine: it combines the JSONL stores produced
by different machines, CI runners, ``--shard K/N`` slices or
interrupted ``--jobs`` runs of *one* :class:`ExperimentSpec` into the
single canonical store the unsharded sweep would have written — byte
for byte — and rolls a directory of merged sweeps into one
campaign-level summary.

Merge semantics (DESIGN.md §9):

* **inputs** — any mix of canonical ``*.jsonl`` files and ``.partial``
  checkpoint files.  Every input must carry the engine's
  ``sweep-header`` line; inputs whose header *hash* differs were
  produced by different specs (or tampered with) and are refused.
* **torn tails** — a line that does not decode as JSON is skipped (a
  writer died mid-line); only that cell is lost, exactly as in
  :meth:`ResultStore.load_partial`.
* **duplicates** — the same cell key appearing in several inputs (or
  twice in one, after a resume) is fine *iff* every occurrence carries
  the identical record; occurrences that diverge are a conflict and
  the merge refuses with a per-key report naming the sources.
* **output** — cells sorted into canonical grid order under the
  re-encoded header.  A merge covering the full grid writes the
  canonical ``name-hash.jsonl`` (indistinguishable from an unsharded
  run's file); an incomplete merge writes the ``.jsonl.partial``
  sibling instead, which any later run — or merge — resumes from.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.engine import encode_store_line, store_basename

__all__ = ["CellConflict", "MergeConflictError", "MergedStore",
           "StoreFile", "StoreMerger", "SweepConflict", "aggregate_report",
           "merge_into", "read_store_file", "render_aggregate",
           "scan_store_root"]

#: Exactly the bytes :class:`ResultStore` writes for a record — shared
#: with the engine so the byte-identity contract has one home.
_canonical_line = encode_store_line


class MergeConflictError(RuntimeError):
    """The inputs cannot be one sweep's pieces; carries the conflicts."""

    def __init__(self, message: str,
                 conflicts: Sequence["CellConflict"] = ()) -> None:
        super().__init__(message)
        self.conflicts = list(conflicts)


@dataclass(frozen=True)
class CellConflict:
    """One cell key whose records diverge across (or within) inputs."""

    key: str
    lines: Tuple[str, ...]
    sources: Tuple[str, ...]

    def describe(self) -> str:
        parts = [f"cell {self.key}:"]
        for line, source in zip(self.lines, self.sources):
            parts.append(f"  {source}: {line}")
        return "\n".join(parts)


@dataclass
class StoreFile:
    """One parsed store file: header plus per-key records."""

    path: str
    header: Dict[str, Any]
    cells: Dict[str, Dict[str, Any]]
    torn_lines: int = 0
    duplicates: int = 0

    @property
    def hash(self) -> str:
        return self.header.get("hash", "")

    @property
    def name(self) -> str:
        return (self.header.get("spec") or {}).get("name", "?")


def read_store_file(path: os.PathLike) -> StoreFile:
    """Parse one canonical or ``.partial`` store file.

    Torn (undecodable) lines are tolerated; a divergent duplicate of a
    key *within* the file is already a conflict — the engine never
    writes one, so the file was hand-edited or corrupted.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        raise MergeConflictError(f"cannot read store {path}: {exc}")
    if not lines:
        raise MergeConflictError(f"{path} is empty (no sweep-header)")
    try:
        header = json.loads(lines[0])
    except ValueError:
        header = None
    if (not isinstance(header, dict)
            or header.get("kind") != "sweep-header"
            or not header.get("hash")
            or not isinstance(header.get("spec"), dict)):
        raise MergeConflictError(
            f"{path} is not a sweep store (missing sweep-header line)")
    out = StoreFile(path=str(path), header=header, cells={})
    conflicts: List[CellConflict] = []
    for line in lines[1:]:
        try:
            rec = json.loads(line)
        except ValueError:
            out.torn_lines += 1  # a writer died mid-line; skip the cell
            continue
        if not isinstance(rec, dict) or rec.get("kind") != "cell":
            continue
        key = rec.get("key")
        if not isinstance(key, str):
            out.torn_lines += 1
            continue
        seen = out.cells.get(key)
        if seen is None:
            out.cells[key] = rec
        elif _canonical_line(seen) == _canonical_line(rec):
            out.duplicates += 1
        else:
            conflicts.append(CellConflict(
                key=key,
                lines=(_canonical_line(seen), _canonical_line(rec)),
                sources=(str(path), str(path))))
    if conflicts:
        raise MergeConflictError(
            f"{path} contains divergent records for "
            f"{len(conflicts)} cell(s):\n"
            + "\n".join(c.describe() for c in conflicts), conflicts)
    return out


def _expected_cells(header: Dict[str, Any]) -> int:
    """Grid size from the header's spec axes (product of axis widths)."""
    axes = (header.get("spec") or {}).get("axes")
    if not isinstance(axes, list):
        raise MergeConflictError(
            "store header carries no axes; cannot size the grid")
    total = 1
    for axis in axes:
        if (not isinstance(axis, list) or len(axis) != 2
                or not isinstance(axis[1], list)):
            raise MergeConflictError(f"malformed axis in store header: {axis!r}")
        total *= len(axis[1])
    return total


@dataclass
class MergedStore:
    """The combined sweep: one header, the union of every input's cells."""

    header: Dict[str, Any]
    cells: Dict[str, Dict[str, Any]]
    sources: List[str] = field(default_factory=list)
    duplicates: int = 0
    torn_lines: int = 0

    @property
    def hash(self) -> str:
        return self.header["hash"]

    @property
    def name(self) -> str:
        return self.header["spec"]["name"]

    @property
    def expected_cells(self) -> int:
        return _expected_cells(self.header)

    @property
    def missing_indices(self) -> List[int]:
        present = {rec["index"] for rec in self.cells.values()}
        return sorted(set(range(self.expected_cells)) - present)

    @property
    def complete(self) -> bool:
        return not self.missing_indices

    def file_name(self) -> str:
        """Exactly :meth:`ResultStore.path_for`'s naming scheme."""
        base = store_basename(self.name, self.hash)
        return base if self.complete else base + ".partial"

    def write(self, out_root: os.PathLike) -> Path:
        """Write the merged store under ``out_root`` (a store root dir).

        Cells of the same spec already at the destination — a prior
        shard's checkpoint, an earlier merge — are absorbed into the
        union first (under the usual conflict rules), never clobbered.
        A merge that then covers the full grid writes the canonical
        file — byte-identical to what one unsharded run would have
        saved — and unlinks the superseded ``.partial`` (promotion, as
        in :meth:`ResultStore.save`); an incomplete one writes the
        ``.partial`` sibling any later run or merge resumes from.
        Atomic (tmp + rename) either way.
        """
        root = Path(out_root)
        root.mkdir(parents=True, exist_ok=True)
        base = root / store_basename(self.name, self.hash)
        partial = base.with_suffix(".jsonl.partial")
        pieces = [StoreFile(path="<merge result>", header=self.header,
                            cells=self.cells)]
        for existing in (base, partial):
            if not existing.exists():
                continue
            try:
                pieces.append(read_store_file(existing))
            except MergeConflictError as exc:
                if "sweep-header" in str(exc) or "empty" in str(exc):
                    continue  # headerless debris holds no live cells
                raise  # divergent records: refuse to destroy evidence
        if len(pieces) > 1:
            combined = StoreMerger().merge_parsed(pieces)
            self.cells = combined.cells
            # Fold the absorbed files into the provenance counters so
            # the post-write summary() reports them.
            self.sources.extend(p.path for p in pieces[1:])
            self.duplicates += combined.duplicates
            self.torn_lines += sum(p.torn_lines for p in pieces[1:])
        path = base if self.complete else partial
        ordered = sorted(self.cells.values(), key=lambda rec: rec["index"])
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(_canonical_line(self.header) + "\n")
            for rec in ordered:
                fh.write(_canonical_line(rec) + "\n")
        tmp.replace(path)
        if path == base and partial.exists():
            partial.unlink()
        return path

    def summary(self) -> str:
        missing = self.missing_indices
        text = (f"{self.name} [{self.hash[:12]}]: "
                f"{len(self.cells)}/{self.expected_cells} cells from "
                f"{len(self.sources)} store(s), "
                f"{self.duplicates} duplicate(s)")
        if self.torn_lines:
            text += f", {self.torn_lines} torn line(s) dropped"
        if missing:
            text += f", {len(missing)} cell(s) missing"
        return text


def merge_into(out_root: os.PathLike,
               paths: Sequence[os.PathLike]) -> Tuple[MergedStore, Path]:
    """Incremental-merge entry point: fold ``paths`` into ``out_root``.

    One call per landed shard is how the orchestrator merges
    continuously: each call absorbs whatever earlier calls left at the
    destination (canonical or ``.partial``), so shards can merge in any
    completion order, and the call whose union covers the grid promotes
    the canonical file.  Returns the merged store and the written path.
    """
    merged = StoreMerger().merge(paths)
    return merged, merged.write(out_root)


class StoreMerger:
    """Combines shard/checkpoint stores of one spec; refuses conflicts."""

    def merge(self, paths: Sequence[os.PathLike]) -> MergedStore:
        if not paths:
            raise MergeConflictError("no store files to merge")
        return self.merge_parsed([read_store_file(p) for p in paths])

    def merge_parsed(self, files: Sequence[StoreFile]) -> MergedStore:
        """Merge already-parsed store files (no re-reading from disk)."""
        if not files:
            raise MergeConflictError("no store files to merge")
        first = files[0]
        header_line = _canonical_line(first.header)
        for other in files[1:]:
            if other.hash != first.hash:
                raise MergeConflictError(
                    "header hash mismatch — the inputs are not pieces of "
                    "one sweep:\n"
                    f"  {first.path}: {first.name} [{first.hash[:12]}]\n"
                    f"  {other.path}: {other.name} [{other.hash[:12]}]")
            if _canonical_line(other.header) != header_line:
                # Same claimed hash, different spec body: tampering.
                raise MergeConflictError(
                    f"header of {other.path} differs from {first.path} "
                    "despite an identical hash (tampered spec header?)")

        merged = MergedStore(header=first.header, cells={},
                             sources=[f.path for f in files],
                             duplicates=sum(f.duplicates for f in files),
                             torn_lines=sum(f.torn_lines for f in files))
        origin: Dict[str, str] = {}
        conflicts: List[CellConflict] = []
        for store in files:
            for key, rec in store.cells.items():
                seen = merged.cells.get(key)
                if seen is None:
                    merged.cells[key] = rec
                    origin[key] = store.path
                elif _canonical_line(seen) == _canonical_line(rec):
                    merged.duplicates += 1
                else:
                    conflicts.append(CellConflict(
                        key=key,
                        lines=(_canonical_line(seen), _canonical_line(rec)),
                        sources=(origin[key], store.path)))
        if conflicts:
            raise MergeConflictError(
                f"divergent values for {len(conflicts)} cell(s) — same "
                "spec hash, different results (nondeterministic runner, "
                "mixed code revisions, or a tampered store):\n"
                + "\n".join(c.describe() for c in conflicts), conflicts)

        expected = merged.expected_cells  # also validates the header axes
        by_index: Dict[int, str] = {}
        for key, rec in merged.cells.items():
            index = rec.get("index")
            if not isinstance(index, int) or not 0 <= index < expected:
                raise MergeConflictError(
                    f"cell {key} (from {origin[key]}) has index {index!r} "
                    f"outside the {expected}-cell grid")
            other = by_index.setdefault(index, key)
            if other != key:
                raise MergeConflictError(
                    f"cells {other!r} and {key!r} both claim grid index "
                    f"{index} (corrupt store)")
        return merged


# ----------------------------------------------------------------------
# campaign-level aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepConflict:
    """A sweep whose store files refuse to merge (or to parse)."""

    name: str
    hash: str
    message: str

    def headline(self) -> str:
        return self.message.splitlines()[0]


def _header_identity(path: Path) -> Optional[Tuple[str, str]]:
    """(name, hash) from a file's header line, if it has one at all."""
    try:
        with path.open("r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        if (not isinstance(header, dict)
                or header.get("kind") != "sweep-header"):
            return None
        return (header["spec"]["name"], header["hash"])
    except (OSError, ValueError, TypeError, KeyError):
        return None


def scan_store_root(
    root: os.PathLike,
) -> Tuple[List[MergedStore], List[SweepConflict]]:
    """Every sweep under a store root, canonical and pending.

    Each ``*.jsonl`` / ``*.jsonl.partial`` file is parsed once; files
    of the same spec are merged, so a canonical file and a stale
    checkpoint of one sweep collapse into a single entry.  Files
    without a sweep header are skipped (a campaign report must not die
    on one foreign file in the results directory), but a sweep whose
    files *conflict* — divergent cells, tampered headers — is returned
    in the second list, never silently dropped.  Both lists sort by
    (name, hash) for deterministic reporting.
    """
    root = Path(root)
    by_id: Dict[Tuple[str, str], List[StoreFile]] = {}
    conflicts: Dict[Tuple[str, str], SweepConflict] = {}
    paths = sorted(root.glob("*.jsonl")) + sorted(root.glob("*.jsonl.partial"))
    merger = StoreMerger()
    for path in paths:
        try:
            parsed = read_store_file(path)
        except MergeConflictError as exc:
            identity = _header_identity(path)
            if identity is not None:  # a real store gone bad, not a rogue
                conflicts.setdefault(identity, SweepConflict(
                    name=identity[0], hash=identity[1], message=str(exc)))
            continue
        by_id.setdefault((parsed.name, parsed.hash), []).append(parsed)
    out: List[MergedStore] = []
    for identity, group in sorted(by_id.items()):
        if identity in conflicts:
            continue
        try:
            out.append(merger.merge_parsed(group))
        except MergeConflictError as exc:
            conflicts.setdefault(identity, SweepConflict(
                name=identity[0], hash=identity[1], message=str(exc)))
    return out, sorted(conflicts.values(),
                       key=lambda c: (c.name, c.hash))


def _metric_rollups(cells: Sequence[Dict[str, Any]]) -> List[Tuple[str, str]]:
    """(metric, "mean/min/max" text) for every numeric value key."""
    series: Dict[str, List[float]] = {}
    for rec in cells:
        value = rec.get("value")
        if not isinstance(value, dict):
            continue
        for key, v in value.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            series.setdefault(key, []).append(float(v))
    rows = []
    for key in sorted(series):
        vals = series[key]
        rows.append((key, (f"mean={sum(vals) / len(vals):.6g} "
                           f"min={min(vals):.6g} max={max(vals):.6g} "
                           f"[{len(vals)} cells]")))
    return rows


def render_aggregate(sweeps: Sequence[MergedStore],
                     conflicts: Sequence[SweepConflict] = ()) -> str:
    """The cross-experiment campaign summary for scanned sweeps.

    Rolls every merged sweep (scaling, commaware, churnload, ...) into
    one deterministic text: per-sweep completeness, axis shapes and
    numeric-metric rollups under a campaign-wide total, plus a CONFLICT
    section per unmergeable sweep.  No paths, no timings — two
    directories holding the same sweeps render the same bytes.
    """
    total_cells = sum(len(s.cells) for s in sweeps)
    total_expected = sum(s.expected_cells for s in sweeps)
    parts: List[str] = []
    headline = (f"== campaign aggregate: {len(sweeps)} sweep(s), "
                f"{total_cells}/{total_expected} cells")
    if conflicts:
        headline += f", {len(conflicts)} CONFLICTED"
    parts.append(headline + " ==")
    for sweep in sweeps:
        axes = sweep.header["spec"]["axes"]
        shape = " x ".join(f"{name}={len(values)}" for name, values in axes)
        state = ("complete" if sweep.complete
                 else f"partial, {len(sweep.missing_indices)} missing")
        parts.append("")
        parts.append(f"-- {sweep.name} [{sweep.hash[:12]}] "
                     f"({len(sweep.cells)}/{sweep.expected_cells} cells, "
                     f"{state}) --")
        parts.append(f"axes: {shape if shape else '(scalar)'}")
        # Canonical grid order: a .partial written by a --jobs pool
        # holds cells in completion order, and float summation must
        # not depend on it.
        ordered = sorted(sweep.cells.values(), key=lambda r: r["index"])
        for metric, text in _metric_rollups(ordered):
            parts.append(f"  {metric:<24} {text}")
    for conflict in conflicts:
        parts.append("")
        parts.append(f"-- {conflict.name} [{conflict.hash[:12]}] "
                     "CONFLICT --")
        parts.append(f"  {conflict.headline()}")
    return "\n".join(parts)


def aggregate_report(root: os.PathLike) -> str:
    """One-call façade: scan a store directory and render the summary."""
    sweeps, conflicts = scan_store_root(root)
    return render_aggregate(sweeps, conflicts)
