"""The topozoo campaign: strategy ranking across topology families.

Every prior campaign ranks co-allocation strategies on *one* graph —
the paper's 6-site Grid'5000 federation (plus its latency-ratio
reshapes).  This campaign asks whether that ranking is a property of
the strategies or of the testbed: it sweeps the full 6-strategy roster
over the generated complex-network families of
:mod:`repro.net.families` (``scale_free``, ``small_world``,
``fat_sites``) alongside the flat paper testbed, runs IS class B under
the routed per-link contention model, and names the winning strategy
per (family, size) cell.  The closing "topology dependence" block
lists every generated cell whose winner differs from the paper
testbed's — the campaign's headline claim, pinned by the tier-1 suite.

Determinism: the generated topology of a (family, sites) cell is built
from the campaign ``master_seed`` (carried in spec ``meta`` as
``topo_seed``), *not* from the per-cell seed — per-cell seeds differ
per strategy, and the winner comparison is only meaningful when every
strategy places onto the same graph.  The report is byte-deterministic
(no timings, no paths): ``--jobs 1``, ``--jobs 2`` and cache-replayed
runs render identical text, which is what CI diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.is_bench import ISBenchmark
from repro.cluster import ClusterSpec
from repro.experiments.applatency import _comm_seconds
from repro.experiments.commaware import ALL_STRATEGIES
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult, make_spec,
                                      run_sweep)
from repro.experiments.report import format_metric_comparison
from repro.middleware.jobs import JobRequest, JobStatus
from repro.net.contention import ContentionModel
from repro.net.families import GENERATED_FAMILIES

__all__ = ["TOPOZOO_FAMILIES", "TOPOZOO_SITES", "TopozooCampaign",
           "topozoo_cell", "topozoo_spec", "run_topozoo_campaign",
           "topozoo_winners", "topozoo_report"]

#: Campaign roster: the paper testbed first (the ranking baseline the
#: dependence block compares against), then the generated families.
TOPOZOO_FAMILIES: Tuple[str, ...] = ("grid5000",) + GENERATED_FAMILIES

#: Default site counts swept per generated family.  Two sizes bound
#: the small/large regimes while keeping the default campaign minutes-
#: scale; ``--sites 200`` stretches any family to paper-scale federations.
TOPOZOO_SITES: Tuple[int, ...] = (16, 48)


def _campaign_n(topology) -> int:
    """Process count for one cell: a third of the federation's cores.

    Large enough that every strategy must leave its first site (the
    regime where placements differ), small enough that ``concentrate``
    still has slack to pick dense sites.  Derived from the topology, so
    all strategies of one (family, sites) cell group get the same job.
    """
    return max(4, topology.n_cores // 3)


def topozoo_cell(ctx: CellContext) -> Dict:
    """One (family[, sites], strategy) IS class B submission.

    Generated families rebuild their cluster from the spec with the
    cell's ``sites`` and the campaign-constant ``topo_seed`` (the
    ``with_params`` pattern of the latratio sweep); the paper testbed
    uses the engine-built cluster directly.
    """
    family = ctx.meta["family"]
    strategy = ctx.params["strategy"]
    if "sites" in ctx.params:
        cluster = ctx.cluster_spec.with_params(
            sites=int(ctx.params["sites"]),
            topo_seed=int(ctx.meta["topo_seed"])).build(seed=ctx.seed)
    else:
        cluster = ctx.cluster
    topology = cluster.topology
    n = _campaign_n(topology)
    app = ISBenchmark(str(ctx.meta["nas_class"]))
    result = cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, app=app,
                   tag=f"topozoo-{family}"))
    if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
        raise RuntimeError(
            f"{family} {strategy} n={n} failed: {result.summary()}")
    plan = result.allocation
    copies = [p.host for p in plan.placements]
    contention = ContentionModel(topology).plan(copies)
    used = plan.used_hosts()
    reps, same_site_pair = topology.site_representatives(used)
    min_bw = topology.lan_bw_bps if same_site_pair else float("inf")
    max_hops = 0
    for i, a in enumerate(reps):
        for b in reps[i + 1:]:
            min_bw = min(min_bw, contention.pair_bw_bps(a, b))
            max_hops = max(max_hops,
                           len(topology.route_links(a.site, b.site)))
    return {
        "family": family,
        "status": result.status.value,
        "n": n,
        "time_s": round(result.timings.makespan_s, 9),
        "comm_s": round(_comm_seconds(cluster, plan, app), 9),
        "total_hosts": len(used),
        "sites_used": len({h.site for h in used}),
        "latency_diameter_ms": round(topology.latency_diameter_ms(used), 6),
        # inf (single-host allocation) is not valid strict JSON: None.
        "min_bandwidth_bps": (None if min_bw == float("inf") else min_bw),
        "max_link_load": contention.max_crossing_pairs(),
        "max_route_hops": max_hops,
    }


def topozoo_spec(
    family: str,
    sizes: Iterable[int] = TOPOZOO_SITES,
    strategies: Sequence[str] = ALL_STRATEGIES,
    nas_class: str = "B",
    seed: int = 0,
) -> ExperimentSpec:
    """One family's panel: [sites x] strategy.

    The fixed paper testbed has no size axis; generated families sweep
    ``sites``.  ``topo_seed`` rides in ``meta`` (hashed, campaign-wide)
    so every strategy of a cell group scores the same generated graph.
    """
    axes: Dict[str, Tuple] = {}
    if family in GENERATED_FAMILIES:
        axes["sites"] = tuple(int(s) for s in sizes)
    axes["strategy"] = tuple(strategies)
    return make_spec(
        name=f"topozoo-{family}",
        axes=axes,
        runner=topozoo_cell,
        cluster=ClusterSpec(kind=family),
        master_seed=seed,
        meta={"family": family, "topo_seed": seed, "nas_class": nas_class},
    )


@dataclass
class TopozooCampaign:
    """Every family panel, ready for reporting."""

    families: Dict[str, SweepResult]  # keyed by family, roster order
    sizes: Tuple[int, ...]
    strategies: Tuple[str, ...]

    def sweeps(self) -> List[SweepResult]:
        return [self.families[k] for k in self.families]


def run_topozoo_campaign(
    seed: int = 0,
    families: Sequence[str] = TOPOZOO_FAMILIES,
    sizes: Iterable[int] = TOPOZOO_SITES,
    strategies: Sequence[str] = ALL_STRATEGIES,
    nas_class: str = "B",
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> TopozooCampaign:
    """Run the selected family panels through the engine (CLI
    ``p2pmpirun run topozoo``); ``shard`` slices every panel the same
    way."""
    sizes = tuple(int(s) for s in sizes)
    strategies = tuple(strategies)
    unknown = [f for f in families if f not in TOPOZOO_FAMILIES]
    if unknown:
        raise ValueError(f"unknown topozoo families {unknown} "
                         f"(choose from {TOPOZOO_FAMILIES})")
    swept: Dict[str, SweepResult] = {}
    for family in TOPOZOO_FAMILIES:
        if family not in families:
            continue
        swept[family] = run_sweep(
            topozoo_spec(family, sizes=sizes, strategies=strategies,
                         nas_class=nas_class, seed=seed),
            jobs=jobs, store=store, force=force, shard=shard)
    return TopozooCampaign(families=swept, sizes=sizes,
                           strategies=strategies)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _cell_labels(campaign: TopozooCampaign, family: str) -> List[Dict]:
    """Selector kwargs for each cell group of one family panel, in
    sweep order (the paper testbed has exactly one group)."""
    if family in GENERATED_FAMILIES:
        return [{"sites": s} for s in campaign.sizes]
    return [{}]


def _comm_value(sweep: SweepResult, strategy: str, group: Dict) -> float:
    return sweep.value(strategy=strategy, **group)["comm_s"]


def topozoo_winners(campaign: TopozooCampaign) -> Dict[str, str]:
    """Winning strategy per cell group, keyed ``family`` or
    ``family[sites=N]`` — minimum modelled IS communication seconds,
    ties resolved by roster order (deterministic)."""
    winners: Dict[str, str] = {}
    for family, sweep in campaign.families.items():
        for group in _cell_labels(campaign, family):
            best = min(
                campaign.strategies,
                key=lambda s: (_comm_value(sweep, s, group),
                               campaign.strategies.index(s)))
            label = (f"{family}[sites={group['sites']}]" if group
                     else family)
            winners[label] = best
    return winners


def topozoo_report(campaign: TopozooCampaign) -> str:
    """The campaign report, deterministic byte for byte.

    One comm-seconds table per family (strategy rows, size columns),
    the winner per cell group, then the topology-dependence block: the
    generated cells whose winner differs from the paper testbed's.
    """
    parts: List[str] = []
    parts.append("== topozoo: IS comm seconds by topology family ==")
    for family, sweep in campaign.families.items():
        groups = _cell_labels(campaign, family)
        columns = ([g["sites"] for g in groups] if groups[0]
                   else ["testbed"])
        rows: Dict[str, List] = {}
        for strategy in campaign.strategies:
            rows[strategy] = [_comm_value(sweep, strategy, g)
                              for g in groups]
        parts.append(format_metric_comparison(
            f"{family} comm_s@sites", columns, rows, fmt=".4f"))
        hops = max(c.value["max_route_hops"] for c in sweep.cells)
        loads = max(c.value["max_link_load"] for c in sweep.cells)
        parts.append(f"  routes: max hops {hops}, max link load {loads}")
        parts.append("")

    winners = topozoo_winners(campaign)
    parts.append("== winning strategy (min comm_s, ties -> roster) ==")
    for label, strategy in winners.items():
        parts.append(f"{label:>24}: {strategy}")
    parts.append("")

    parts.append("== topology dependence ==")
    if "grid5000" not in campaign.families:
        parts.append("paper testbed not swept; no baseline to compare")
        return "\n".join(parts)
    baseline = winners["grid5000"]
    differing = [f"{label} -> {strategy}"
                 for label, strategy in winners.items()
                 if label != "grid5000" and strategy != baseline]
    parts.append(f"paper testbed winner: {baseline}")
    if differing:
        parts.append("cells ranking strategies differently: "
                     + ", ".join(differing))
    else:
        parts.append("no generated cell changes the winner")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# CLI registration (topozoo)
# ----------------------------------------------------------------------
def _cli_overrides(args) -> Dict:
    """--family restricts the roster, --sites reshapes the generated
    size axis; --cluster does not apply (the families are the
    campaign's subject)."""
    from repro.experiments.cliutil import csv_values

    overrides: Dict = {}
    family = getattr(args, "family", None)
    if family is not None:
        picked = tuple(csv_values("--family", family, str))
        unknown = [f for f in picked if f not in TOPOZOO_FAMILIES]
        if unknown:
            raise SystemExit(
                f"p2pmpirun: --family: unknown families {unknown} "
                f"(choose from {', '.join(TOPOZOO_FAMILIES)})")
        overrides["families"] = picked
    sites = getattr(args, "sites", None)
    if sites is not None:
        overrides["sizes"] = csv_values("--sites", sites, int,
                                        positive=True)
    return overrides


def _cli_specs(args) -> List[ExperimentSpec]:
    """Mirror of :func:`run_topozoo_campaign`'s spec construction
    (the orchestrator contract: same kwargs, same hashes)."""
    overrides = _cli_overrides(args)
    families = overrides.get("families", TOPOZOO_FAMILIES)
    sizes = tuple(int(s) for s in overrides.get("sizes", TOPOZOO_SITES))
    return [topozoo_spec(family, sizes=sizes, strategies=ALL_STRATEGIES,
                         nas_class=args.nas_class, seed=args.seed)
            for family in TOPOZOO_FAMILIES if family in families]


def _cli_run(args, store) -> None:
    """The topology-family strategy-ranking campaign.  Output is the
    deterministic report only (no engine timings), so ``--jobs 1`` and
    ``--jobs 2`` runs diff clean byte for byte."""
    from repro.experiments.cliutil import report_sweep

    campaign = run_topozoo_campaign(
        seed=args.seed, nas_class=args.nas_class, jobs=args.jobs,
        store=store, force=args.force, shard=args.shard,
        **_cli_overrides(args))
    if args.shard:
        for sweep in campaign.sweeps():
            report_sweep(sweep, store)
        return
    print(topozoo_report(campaign))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="topozoo",
        cli_run=_cli_run,
        specs=_cli_specs,
        cli_axes=("topozoo", "nas_class"),
    ))


_register()
