"""Figure 4: NAS EP and IS execution times per strategy.

"As a concrete example of allocation strategy impact, we run the
benchmark EP from 32 to 512 processes" (left panel) and IS from 32 to
128 (right panel), class B, under both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.base import Application
from repro.apps.ep import EPBenchmark
from repro.apps.is_bench import ISBenchmark
from repro.cluster import ClusterSpec, P2PMPICluster
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult,
                                      demand_cost_key, make_spec, run_sweep)
from repro.middleware.jobs import JobRequest, JobStatus

__all__ = ["EP_PROCESS_COUNTS", "IS_PROCESS_COUNTS", "AppTimePoint",
           "AppTimeSeries", "application_cell", "application_spec",
           "application_sweep", "app_series_from_sweep",
           "run_application_experiment"]

#: Paper x axes.
EP_PROCESS_COUNTS: Tuple[int, ...] = (32, 64, 128, 256, 512)
IS_PROCESS_COUNTS: Tuple[int, ...] = (32, 64, 128)


@dataclass
class AppTimePoint:
    """One (app, strategy, n) measurement."""

    app: str
    strategy: str
    n: int
    time_s: float
    status: str


@dataclass
class AppTimeSeries:
    """One strategy's curve for one application."""

    app: str
    strategy: str
    points: List[AppTimePoint] = field(default_factory=list)

    @property
    def ns(self) -> List[int]:
        return [pt.n for pt in self.points]

    @property
    def times(self) -> List[float]:
        return [pt.time_s for pt in self.points]

    def time_at(self, n: int) -> float:
        for pt in self.points:
            if pt.n == n:
                return pt.time_s
        raise KeyError(f"no point for n={n}")

    def is_monotone_decreasing(self, tolerance: float = 0.05) -> bool:
        """True if the curve never rises by more than ``tolerance``."""
        times = self.times
        return all(b <= a * (1 + tolerance) for a, b in zip(times, times[1:]))

    def flatness(self) -> float:
        """max/min ratio over the curve (1.0 = perfectly flat)."""
        times = self.times
        return max(times) / min(times)


def application_cell(ctx: CellContext) -> Dict:
    """Engine cell: one (strategy, n) run of the application model."""
    app: Application = ctx.meta["app"]
    strategy = ctx.params["strategy"]
    n = ctx.params["n"]
    result = ctx.cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, app=app, tag=f"fig4-{app.name}")
    )
    if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
        raise RuntimeError(
            f"{app.name} {strategy} n={n} failed: {result.summary()}"
        )
    return {
        "app": app.name,
        "time_s": result.timings.makespan_s,
        "status": result.status.value,
    }


def application_spec(
    app: Optional[Application] = None,
    process_counts: Optional[Iterable[int]] = None,
    strategies: Sequence[str] = ("concentrate", "spread"),
    seed: int = 0,
    cluster_spec: Optional[ClusterSpec] = None,
    name: Optional[str] = None,
) -> ExperimentSpec:
    """One Figure-4 panel as a declarative spec.

    The application model rides in ``spec.meta`` (pickled by value
    into pool workers, canonicalised for the store hash).
    """
    app = app or EPBenchmark("B")
    if process_counts is None:
        process_counts = (
            IS_PROCESS_COUNTS if isinstance(app, ISBenchmark)
            else EP_PROCESS_COUNTS
        )
    return make_spec(
        name=name or f"fig4-{app.name}",
        axes={"strategy": tuple(strategies), "n": tuple(process_counts)},
        runner=application_cell,
        cluster=cluster_spec or ClusterSpec(),
        master_seed=seed,
        meta={"app": app},
        # Pool runs start the dominating n=512 cells first.
        cost_key=demand_cost_key,
    )


def application_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    cluster: Optional[P2PMPICluster] = None,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the panel through the engine; see :class:`SweepRunner`."""
    spec = spec or application_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force,
                     cluster=cluster, shard=shard)


def app_series_from_sweep(sweep: SweepResult) -> Dict[str, AppTimeSeries]:
    """Assemble the legacy per-strategy series from engine cells."""
    out: Dict[str, AppTimeSeries] = {}
    for cell in sweep.cells:
        strategy = cell.params["strategy"]
        series = out.setdefault(
            strategy, AppTimeSeries(app=cell.value["app"], strategy=strategy))
        series.points.append(AppTimePoint(
            app=cell.value["app"], strategy=strategy, n=cell.params["n"],
            time_s=cell.value["time_s"], status=cell.value["status"],
        ))
    return out


def run_application_experiment(
    app: Optional[Application] = None,
    process_counts: Optional[Iterable[int]] = None,
    strategies: Sequence[str] = ("concentrate", "spread"),
    seed: int = 0,
    cluster: Optional[P2PMPICluster] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
) -> Dict[str, AppTimeSeries]:
    """Run one application's Figure-4 sweep; series per strategy.

    Defaults reproduce the EP panel; pass ``ISBenchmark()`` and
    ``IS_PROCESS_COUNTS`` for the right panel.  An explicit ``cluster``
    replays the legacy shared-overlay behaviour; without one the cells
    run independently (parallelisable, cacheable).
    """
    spec = application_spec(app=app, process_counts=process_counts,
                            strategies=strategies, seed=seed)
    sweep = application_sweep(spec=spec, jobs=jobs, store=store, force=force,
                              cluster=cluster)
    return app_series_from_sweep(sweep)


# ----------------------------------------------------------------------
# CLI registration (fig4)
# ----------------------------------------------------------------------
def _fig4_apps(args) -> Tuple[Application, ...]:
    return (EPBenchmark(args.nas_class), ISBenchmark(args.nas_class))


def _fig4_specs(args) -> List[ExperimentSpec]:
    return [application_spec(app, seed=args.seed)
            for app in _fig4_apps(args)]


def _cli_run_fig4(args, store) -> None:
    from repro.experiments.cliutil import report_sweep
    from repro.experiments.report import format_series_table

    panels = {}
    for app in _fig4_apps(args):
        spec = application_spec(app, seed=args.seed)
        sweep = application_sweep(spec=spec, jobs=args.jobs, store=store,
                                  force=args.force, shard=args.shard)
        report_sweep(sweep, store)
        panels[app.name] = app_series_from_sweep(sweep)
    if args.shard:
        return
    for label, series in panels.items():
        print()
        print(format_series_table(series, title=label.upper()))
    if args.plot:
        from repro.experiments.figures import ascii_plot

        for label, series in panels.items():
            print()
            print(ascii_plot(
                series["spread"].ns,
                {name: s.times for name, s in series.items()},
                title=f"{label} total time",
                y_label="s",
            ))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="fig4",
        cli_run=_cli_run_fig4,
        specs=_fig4_specs,
        cli_axes=("nas_class", "plot"),
    ))


_register()
