"""Figure 4: NAS EP and IS execution times per strategy.

"As a concrete example of allocation strategy impact, we run the
benchmark EP from 32 to 512 processes" (left panel) and IS from 32 to
128 (right panel), class B, under both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.base import Application
from repro.apps.ep import EPBenchmark
from repro.apps.is_bench import ISBenchmark
from repro.cluster import P2PMPICluster, build_grid5000_cluster
from repro.middleware.jobs import JobRequest, JobStatus

__all__ = ["EP_PROCESS_COUNTS", "IS_PROCESS_COUNTS", "AppTimePoint",
           "AppTimeSeries", "run_application_experiment"]

#: Paper x axes.
EP_PROCESS_COUNTS: Tuple[int, ...] = (32, 64, 128, 256, 512)
IS_PROCESS_COUNTS: Tuple[int, ...] = (32, 64, 128)


@dataclass
class AppTimePoint:
    """One (app, strategy, n) measurement."""

    app: str
    strategy: str
    n: int
    time_s: float
    status: str


@dataclass
class AppTimeSeries:
    """One strategy's curve for one application."""

    app: str
    strategy: str
    points: List[AppTimePoint] = field(default_factory=list)

    @property
    def ns(self) -> List[int]:
        return [pt.n for pt in self.points]

    @property
    def times(self) -> List[float]:
        return [pt.time_s for pt in self.points]

    def time_at(self, n: int) -> float:
        for pt in self.points:
            if pt.n == n:
                return pt.time_s
        raise KeyError(f"no point for n={n}")

    def is_monotone_decreasing(self, tolerance: float = 0.05) -> bool:
        """True if the curve never rises by more than ``tolerance``."""
        times = self.times
        return all(b <= a * (1 + tolerance) for a, b in zip(times, times[1:]))

    def flatness(self) -> float:
        """max/min ratio over the curve (1.0 = perfectly flat)."""
        times = self.times
        return max(times) / min(times)


def run_application_experiment(
    app: Optional[Application] = None,
    process_counts: Optional[Iterable[int]] = None,
    strategies: Sequence[str] = ("concentrate", "spread"),
    seed: int = 0,
    cluster: Optional[P2PMPICluster] = None,
) -> Dict[str, AppTimeSeries]:
    """Run one application's Figure-4 sweep; series per strategy.

    Defaults reproduce the EP panel; pass ``ISBenchmark()`` and
    ``IS_PROCESS_COUNTS`` for the right panel.
    """
    app = app or EPBenchmark("B")
    if process_counts is None:
        process_counts = (
            IS_PROCESS_COUNTS if isinstance(app, ISBenchmark)
            else EP_PROCESS_COUNTS
        )
    cluster = cluster or build_grid5000_cluster(seed=seed)
    out: Dict[str, AppTimeSeries] = {}
    for strategy in strategies:
        series = AppTimeSeries(app=app.name, strategy=strategy)
        for n in process_counts:
            result = cluster.submit_and_run(
                JobRequest(n=n, strategy=strategy, app=app,
                           tag=f"fig4-{app.name}")
            )
            if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
                raise RuntimeError(
                    f"{app.name} {strategy} n={n} failed: {result.summary()}"
                )
            series.points.append(AppTimePoint(
                app=app.name,
                strategy=strategy,
                n=n,
                time_s=result.timings.makespan_s,
                status=result.status.value,
            ))
        out[strategy] = series
    return out
