"""Rank-migration campaign: diffusive rebalancing vs static placement.

The churnload campaign measures what churn does to *frozen* placements
— the §3.2 story, where replication is the only defence.  This
campaign measures what mobility buys on top: every cell runs the same
sustained multi-submitter round (Poisson arrivals x sustained host
churn), but the jobs are **migratable** (checkpointing
:class:`~repro.ft.migration.MigratableWorkApp` copies) and the sweep's
``mode`` axis flips the :class:`~repro.ft.migration.DiffusiveBalancer`
on and off:

* ``static`` — placement frozen at submit time (plain ``spread``); a
  host crash kills its copies for good, exactly like churnload.
* ``diffusive`` — a periodic controller trades copies between
  RTT-neighboring hosts to flatten load *and* resurrects copies
  stranded on crashed hosts from their last checkpoint.

The report tabulates availability, mean completion time and observed
moves per (arrival, failure-rate) cell and then pins the diffusive
deltas explicitly (``win availability ...`` / ``win completion ...``
lines), which is what CI greps for.  Cells are ordinary engine cells
(private per-cell cluster, derived seeds), so ``--jobs N`` fan-out,
shard/merge and cache replay stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.diffusive import DiffusivePolicy
from repro.cluster import ClusterSpec, P2PMPICluster
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult, make_spec,
                                      run_sweep)
from repro.experiments.multiuser import default_submitters
from repro.experiments.report import format_metric_comparison
from repro.ft.migration import DiffusiveBalancer, MigratableWorkApp
from repro.middleware.config import OwnerPrefs
from repro.middleware.jobs import JobRequest
from repro.overlay.churn import ChurnInjector, SurvivalLedger

__all__ = ["MIGRATION_MODES", "run_migration_round", "migration_cell",
           "migration_spec", "migration_sweep", "migration_report"]

#: The two placement regimes the sweep compares.
MIGRATION_MODES: Tuple[str, ...] = ("static", "diffusive")


def run_migration_round(
    cluster: P2PMPICluster,
    submitters: Sequence[str],
    horizon_s: float = 240.0,
    arrival_rate_s: float = 0.04,
    n: int = 4,
    mode: str = "static",
    failure_rate_s: float = 0.0,
    downtime_s: Optional[float] = 60.0,
    work_s: float = 40.0,
    quantum_s: float = 5.0,
    j_limit: int = 2,
    policy: Optional[DiffusivePolicy] = None,
):
    """One sustained round of migratable jobs under churn.

    Structured like the churnload round (protected submitters + anchor,
    per-submitter Poisson streams, sustained churn on the rest), but
    the submitted application checkpoints every ``quantum_s`` and, in
    ``diffusive`` mode, a :class:`DiffusiveBalancer` runs beside the
    round.  Owner prefs are widened to ``j_limit`` applications per
    host before boot so hosts can adopt migrated copies next to work
    they already run.

    Returns ``(ledger, balancer)``; ``balancer`` is ``None`` in static
    mode.
    """
    if mode not in MIGRATION_MODES:
        raise ValueError(f"unknown migration mode {mode!r}")
    if not cluster._booted:
        for name, mpd in cluster.mpds.items():
            prefs = OwnerPrefs.for_cores(
                cluster.topology.host(name).cores, j_limit=j_limit)
            mpd.prefs = prefs
            mpd.gatekeeper.prefs = prefs
        cluster.boot()
    sim = cluster.sim
    ledger = SurvivalLedger()
    cluster.churn.ledger = ledger

    protected = set(submitters) | {cluster.supernode_host}
    victims = sorted(name for name in cluster.mpds if name not in protected)
    if failure_rate_s > 0.0 and victims:
        schedule = ChurnInjector.sustained_schedule(
            victims, failure_rate_s, horizon_s,
            sim.rng.stream("migration.failures"), downtime_s=downtime_s)
        cluster.churn.start(schedule)

    balancer: Optional[DiffusiveBalancer] = None
    if mode == "diffusive":
        balancer = DiffusiveBalancer(cluster, policy or DiffusivePolicy())
        balancer.start()
    strategy = "diffusive" if mode == "diffusive" else "spread"

    app = MigratableWorkApp(duration_s=work_s, quantum_s=quantum_s)
    procs = []
    for submitter in submitters:
        mpd = cluster.mpds[submitter]
        arrivals = sim.rng.stream(f"migration.arrivals.{submitter}")

        def stream(mpd=mpd, arrivals=arrivals, submitter=submitter):
            next_arrival = 0.0
            index = 0
            while True:
                next_arrival += float(
                    arrivals.exponential(1.0 / arrival_rate_s))
                if next_arrival >= horizon_s:
                    return index
                if next_arrival > sim.now:
                    yield sim.timeout(next_arrival - sim.now)
                request = JobRequest(n=n, r=1, strategy=strategy, app=app,
                                     tag=f"{submitter}#{index}")
                result = yield from mpd.submit_job(request)
                ledger.record_job(submitter, result)
                index += 1

        procs.append(sim.process(stream()))

    sim.run_until_complete(sim.all_of(procs))
    if balancer is not None:
        balancer.stop()
    cluster.churn.ledger = None
    return ledger, balancer


def migration_cell(ctx: CellContext) -> Dict:
    """Engine cell: one sustained migratable round on a private cluster."""
    params = ctx.params
    cluster = ctx.cluster
    submitters = default_submitters(cluster, int(ctx.meta["users"]))
    policy = DiffusivePolicy(
        period_s=float(ctx.meta["rebalance_period_s"]),
        neighbor_k=int(ctx.meta["neighbor_k"]),
        threshold=float(ctx.meta["threshold"]),
        max_moves_per_tick=int(ctx.meta["max_moves"]),
    )
    ledger, balancer = run_migration_round(
        cluster, submitters,
        horizon_s=float(ctx.meta["horizon_s"]),
        arrival_rate_s=float(params["arrival"]),
        n=int(ctx.meta["n"]),
        mode=params["mode"],
        failure_rate_s=float(params["fail"]),
        downtime_s=ctx.meta.get("downtime_s"),
        work_s=float(ctx.meta["work_s"]),
        quantum_s=float(ctx.meta["quantum_s"]),
        j_limit=int(ctx.meta["j_limit"]),
        policy=policy,
    )
    value = ledger.summary()
    value["moves"] = 0 if balancer is None else balancer.moves
    value["rejoins_applied"] = 0 if balancer is None else balancer.rejoins
    value["failed_moves"] = 0 if balancer is None else balancer.failed_moves
    return value


def migration_spec(
    arrivals: Sequence[float] = (0.04,),
    failures: Sequence[float] = (0.0, 0.004, 0.01),
    modes: Sequence[str] = MIGRATION_MODES,
    users: int = 2,
    n: int = 4,
    horizon_s: float = 240.0,
    downtime_s: Optional[float] = 60.0,
    work_s: float = 40.0,
    quantum_s: float = 5.0,
    j_limit: int = 2,
    rebalance_period_s: float = 10.0,
    neighbor_k: int = 3,
    threshold: float = 0.6,
    max_moves: int = 2,
    seed: int = 0,
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "migration",
) -> ExperimentSpec:
    """The migration-vs-static sweep as a declarative spec.

    Axes: arrival rate x per-host failure rate x placement mode.  The
    round constants (demand, horizon, quantum, controller policy, owner
    ``J`` limit) ride in ``meta`` and are part of the content hash.
    """
    return make_spec(
        name=name,
        axes={"arrival": tuple(arrivals), "fail": tuple(failures),
              "mode": tuple(modes)},
        runner=migration_cell,
        cluster=cluster_spec or ClusterSpec(kind="small", boot=False),
        master_seed=seed,
        meta={"users": users, "n": n, "horizon_s": horizon_s,
              "downtime_s": downtime_s, "work_s": work_s,
              "quantum_s": quantum_s, "j_limit": j_limit,
              "rebalance_period_s": rebalance_period_s,
              "neighbor_k": neighbor_k, "threshold": threshold,
              "max_moves": max_moves},
    )


def migration_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the migration sweep through the engine."""
    spec = spec or migration_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force, shard=shard)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _mode_rows(sweep: SweepResult, modes: Sequence[str], metric: str,
               arrival: float) -> Dict[str, List]:
    rows: Dict[str, List] = {}
    for mode in modes:
        rows[mode] = [cell.value.get(metric)
                      for cell in sweep.select(arrival=arrival, mode=mode)]
    return rows


def _cell_value(sweep: SweepResult, arrival: float, fail: float,
                mode: str) -> Dict:
    cells = sweep.select(arrival=arrival, fail=fail, mode=mode)
    return cells[0].value if cells else {}


def migration_report(sweep: SweepResult) -> str:
    """Mode-vs-failure matrices plus pinned diffusive deltas.

    Deterministic byte for byte: no timings, no paths — the acceptance
    diff across ``--jobs`` / shard / cache-replay runs depends on it.
    """
    spec = sweep.spec
    axes = dict(spec.axes)
    arrivals = list(axes["arrival"])
    failures = list(axes["fail"])
    fail_cols = [f"{v:g}" for v in failures]
    modes = list(axes["mode"])

    downtime = spec.meta.get("downtime_s")
    downtime_txt = "never" if downtime is None else f"{downtime:g}s"
    parts: List[str] = []
    parts.append("== rank migration under churn: "
                 f"{spec.meta['users']} users, n={spec.meta['n']}, "
                 f"horizon={spec.meta['horizon_s']:g}s, "
                 f"work={spec.meta['work_s']:g}s/copy, "
                 f"quantum={spec.meta['quantum_s']:g}s, "
                 f"downtime={downtime_txt}, J={spec.meta['j_limit']} ==")
    for arrival in arrivals:
        parts.append("")
        parts.append(f"-- arrival={arrival:g} jobs/s/user --")
        parts.append(format_metric_comparison(
            "avail@fail", fail_cols,
            _mode_rows(sweep, modes, "availability", arrival), fmt=".4f"))
        parts.append("")
        parts.append(format_metric_comparison(
            "completion_s@fail", fail_cols,
            _mode_rows(sweep, modes, "mean_completion_s", arrival),
            fmt=".2f"))
        parts.append("")
        parts.append(format_metric_comparison(
            "jobs@fail", fail_cols,
            _mode_rows(sweep, modes, "jobs", arrival), fmt="g"))
        parts.append("")
        parts.append(format_metric_comparison(
            "moves@fail", fail_cols,
            _mode_rows(sweep, modes, "moves", arrival), fmt="g"))

    # -- pinned deltas: what mobility bought -----------------------------
    if "static" in modes and "diffusive" in modes:
        parts.append("")
        parts.append("-- diffusive vs static --")
        wins = 0
        for arrival in arrivals:
            for fail in failures:
                static = _cell_value(sweep, arrival, fail, "static")
                diff = _cell_value(sweep, arrival, fail, "diffusive")
                a_s, a_d = static.get("availability"), diff.get("availability")
                if (a_s is not None and a_d is not None
                        and a_d - a_s >= 1e-4):
                    wins += 1
                    parts.append(
                        f"win availability arrival={arrival:g} "
                        f"fail={fail:g}: diffusive {a_d:.4f} vs static "
                        f"{a_s:.4f} ({a_d - a_s:+.4f})")
                c_s = static.get("mean_completion_s")
                c_d = diff.get("mean_completion_s")
                if (c_s is not None and c_d is not None
                        and c_s - c_d >= 0.01):
                    wins += 1
                    parts.append(
                        f"win completion arrival={arrival:g} "
                        f"fail={fail:g}: diffusive {c_d:.2f}s vs static "
                        f"{c_s:.2f}s ({c_d - c_s:+.2f}s)")
        if wins == 0:
            parts.append("no diffusive win recorded on this grid")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# CLI registration (migration)
# ----------------------------------------------------------------------
def _cli_spec(args) -> ExperimentSpec:
    from repro.experiments.cliutil import csv_values

    small = args.cluster == "small"
    if args.horizon <= 0:
        raise SystemExit("error: --horizon must be > 0")
    if args.users < 1:
        raise SystemExit("error: --users must be >= 1")
    overrides = {}
    if args.failures is not None:
        overrides["failures"] = csv_values("--failures", args.failures,
                                           float, nonnegative=True)
    if getattr(args, "modes", None) is not None:
        modes = csv_values("--modes", args.modes, str)
        for mode in modes:
            if mode not in MIGRATION_MODES:
                raise SystemExit(f"error: unknown --modes value {mode!r} "
                                 f"(choose from {', '.join(MIGRATION_MODES)})")
        overrides["modes"] = modes
    return migration_spec(
        seed=args.seed,
        users=args.users,
        horizon_s=args.horizon,
        n=4 if small else 8,
        cluster_spec=ClusterSpec(kind="small" if small else "grid5000",
                                 boot=False),
        **overrides,
    )


def _cli_run(args, store) -> None:
    """The rank-migration campaign.  Output is the deterministic
    ledger/delta report only, so ``--jobs 1`` and ``--jobs 2`` runs
    diff clean byte for byte.
    """
    from repro.experiments.cliutil import report_sweep

    spec = _cli_spec(args)
    sweep = migration_sweep(spec=spec, jobs=args.jobs, store=store,
                            force=args.force, shard=args.shard)
    if args.shard:
        report_sweep(sweep, store)
        return
    print(migration_report(sweep))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="migration",
        cli_run=_cli_run,
        specs=lambda args: [_cli_spec(args)],
        cli_axes=("cluster", "churn", "migration"),
    ))


_register()
