"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`~repro.experiments.engine` — the unified sweep engine every
  driver is built on: declarative :class:`ExperimentSpec` grids, a
  :class:`SweepRunner` with serial / process-pool / shared-cluster
  modes, and a content-hash-keyed JSONL :class:`ResultStore`.
* :mod:`~repro.experiments.coallocation` — Figures 2 and 3 (hosts and
  cores per site vs. demanded processes, per strategy) plus the §5.1
  narrative checks.
* :mod:`~repro.experiments.applications` — Figure 4 (EP and IS class B
  execution times per strategy).
* :mod:`~repro.experiments.ablations` — design-choice studies: latency
  noise vs. ranking quality, EWMA smoothing, overbooking factor under
  churn, replication survival.
* :mod:`~repro.experiments.report` — ASCII/CSV emitters in the paper's
  series format.
* :mod:`~repro.experiments.aggregate` — distributed result
  aggregation: merge shard/checkpoint stores into one canonical file
  and roll a store directory into a campaign-level summary.
"""

from repro.experiments.engine import (
    Cell,
    CellContext,
    CellResult,
    ExperimentSpec,
    ResultStore,
    SweepResult,
    SweepRunner,
    derive_cell_seed,
    make_spec,
    parse_shard,
    resolve_jobs,
    run_sweep,
)
from repro.experiments.aggregate import (
    CellConflict,
    MergeConflictError,
    MergedStore,
    StoreMerger,
    SweepConflict,
    aggregate_report,
    read_store_file,
    render_aggregate,
    scan_store_root,
)
from repro.experiments.coallocation import (
    CoallocationPoint,
    CoallocationSeries,
    coallocation_spec,
    coallocation_sweep,
    run_coallocation_experiment,
    series_from_sweep,
)
from repro.experiments.applications import (
    AppTimePoint,
    AppTimeSeries,
    app_series_from_sweep,
    application_spec,
    application_sweep,
    run_application_experiment,
)
from repro.experiments.ablations import (
    kendall_tau,
    latency_noise_ablation,
    overbooking_ablation,
    replication_ablation,
    smoothing_ablation,
    block_strategy_ablation,
)
from repro.experiments.applatency import (
    APPLATENCY_STRATEGIES,
    AppLatencyCampaign,
    applatency_report,
    applatency_spec,
    fig4_crossover,
    run_applatency_campaign,
)
from repro.experiments.churnload import (
    CHURNLOAD_STRATEGIES,
    FixedWorkApp,
    churnload_report,
    churnload_spec,
    churnload_sweep,
    run_churnload_round,
)
from repro.experiments.commaware import (
    ALL_STRATEGIES,
    COMMAWARE_STRATEGIES,
    CommawareCampaign,
    commaware_alloc_spec,
    commaware_app_spec,
    commaware_report,
    latratio_spec,
    run_commaware_campaign,
)
from repro.experiments.report import (
    format_metric_comparison,
    format_series_table,
    format_site_table,
    series_to_csv,
)
from repro.experiments.multiuser import (
    MultiUserOutcome,
    multiuser_spec,
    multiuser_sweep,
    run_multiuser_experiment,
)
from repro.experiments.figures import ascii_plot
from repro.experiments.scaling import (
    ScalingPoint,
    ScalingSeries,
    run_scaling_experiment,
    scaling_spec,
    scaling_sweep,
)

__all__ = [
    "Cell",
    "CellContext",
    "CellResult",
    "ExperimentSpec",
    "ResultStore",
    "SweepResult",
    "SweepRunner",
    "derive_cell_seed",
    "make_spec",
    "parse_shard",
    "resolve_jobs",
    "run_sweep",
    "CellConflict",
    "MergeConflictError",
    "MergedStore",
    "StoreMerger",
    "SweepConflict",
    "aggregate_report",
    "read_store_file",
    "render_aggregate",
    "scan_store_root",
    "coallocation_spec",
    "coallocation_sweep",
    "series_from_sweep",
    "application_spec",
    "application_sweep",
    "app_series_from_sweep",
    "scaling_spec",
    "scaling_sweep",
    "multiuser_spec",
    "multiuser_sweep",
    "CoallocationPoint",
    "CoallocationSeries",
    "run_coallocation_experiment",
    "AppTimePoint",
    "AppTimeSeries",
    "run_application_experiment",
    "kendall_tau",
    "latency_noise_ablation",
    "smoothing_ablation",
    "overbooking_ablation",
    "replication_ablation",
    "block_strategy_ablation",
    "ALL_STRATEGIES",
    "APPLATENCY_STRATEGIES",
    "AppLatencyCampaign",
    "applatency_report",
    "applatency_spec",
    "fig4_crossover",
    "run_applatency_campaign",
    "CHURNLOAD_STRATEGIES",
    "FixedWorkApp",
    "churnload_report",
    "churnload_spec",
    "churnload_sweep",
    "run_churnload_round",
    "COMMAWARE_STRATEGIES",
    "CommawareCampaign",
    "commaware_alloc_spec",
    "commaware_app_spec",
    "commaware_report",
    "latratio_spec",
    "run_commaware_campaign",
    "format_metric_comparison",
    "format_series_table",
    "format_site_table",
    "series_to_csv",
    "MultiUserOutcome",
    "run_multiuser_experiment",
    "ascii_plot",
    "ScalingPoint",
    "ScalingSeries",
    "run_scaling_experiment",
]
