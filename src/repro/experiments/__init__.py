"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`~repro.experiments.engine` — the unified sweep engine every
  driver is built on: declarative :class:`ExperimentSpec` grids, a
  :class:`SweepRunner` with serial / process-pool / shared-cluster
  modes, and a content-hash-keyed JSONL :class:`ResultStore`.
* :mod:`~repro.experiments.registry` — the lazy experiment catalogue:
  each driver registers its ``(name, spec builder, CLI entry, axes)``
  record once; the CLI and the orchestrator enumerate campaigns from
  it without importing every driver up front.
* :mod:`~repro.experiments.orchestrator` — the campaign daemon behind
  ``p2pmpirun orchestrate``: shard dispatch to worker processes,
  heartbeat-based stall detection, retries, continuous merge.
* :mod:`~repro.experiments.coallocation` — Figures 2 and 3 (hosts and
  cores per site vs. demanded processes, per strategy) plus the §5.1
  narrative checks.
* :mod:`~repro.experiments.applications` — Figure 4 (EP and IS class B
  execution times per strategy).
* :mod:`~repro.experiments.ablations` — design-choice studies: latency
  noise vs. ranking quality, EWMA smoothing, overbooking factor under
  churn, replication survival.
* :mod:`~repro.experiments.report` — ASCII/CSV emitters in the paper's
  series format.
* :mod:`~repro.experiments.aggregate` — distributed result
  aggregation: merge shard/checkpoint stores into one canonical file
  and roll a store directory into a campaign-level summary.

The package is import-lazy (PEP 562): ``from repro.experiments import
coallocation_sweep`` resolves — and pays for — only the owning
submodule, which is what keeps ``p2pmpirun --help`` fast.
"""

from __future__ import annotations

import importlib

#: symbol -> owning submodule, replacing the old eager import blocks.
_EXPORTS = {name: module for module, symbols in {
    "engine": (
        "Cell", "CellContext", "CellResult", "ExperimentSpec", "Heartbeat",
        "ResultStore", "SweepResult", "SweepRunner", "derive_cell_seed",
        "make_spec", "parse_shard", "resolve_jobs", "run_sweep",
    ),
    "aggregate": (
        "CellConflict", "MergeConflictError", "MergedStore", "StoreMerger",
        "SweepConflict", "aggregate_report", "read_store_file",
        "render_aggregate", "scan_store_root",
    ),
    "coallocation": (
        "CoallocationPoint", "CoallocationSeries", "coallocation_spec",
        "coallocation_sweep", "run_coallocation_experiment",
        "series_from_sweep",
    ),
    "applications": (
        "AppTimePoint", "AppTimeSeries", "app_series_from_sweep",
        "application_spec", "application_sweep",
        "run_application_experiment",
    ),
    "ablations": (
        "kendall_tau", "latency_noise_ablation", "overbooking_ablation",
        "replication_ablation", "smoothing_ablation",
        "block_strategy_ablation",
    ),
    "applatency": (
        "APPLATENCY_STRATEGIES", "AppLatencyCampaign", "applatency_report",
        "applatency_spec", "fig4_crossover", "run_applatency_campaign",
    ),
    "churnload": (
        "CHURNLOAD_STRATEGIES", "FixedWorkApp", "churnload_report",
        "churnload_spec", "churnload_sweep", "run_churnload_round",
    ),
    "commaware": (
        "ALL_STRATEGIES", "COMMAWARE_STRATEGIES", "CommawareCampaign",
        "commaware_alloc_spec", "commaware_app_spec", "commaware_report",
        "latratio_spec", "run_commaware_campaign",
    ),
    "report": (
        "format_metric_comparison", "format_series_table",
        "format_site_table", "series_to_csv",
    ),
    "multiuser": (
        "MultiUserOutcome", "multiuser_spec", "multiuser_sweep",
        "run_multiuser_experiment",
    ),
    "figures": ("ascii_plot",),
    "scaling": (
        "ScalingPoint", "ScalingSeries", "run_scaling_experiment",
        "scaling_spec", "scaling_sweep",
    ),
    "orchestrator": (
        "ExecutionStrategy", "LocalProcessStrategy", "OrchestrationReport",
        "Orchestrator",
    ),
}.items() for name in symbols}

#: plain submodules reachable as attributes too (`repro.experiments.engine`).
_SUBMODULES = frozenset(
    set(_EXPORTS.values())
    | {"cliutil", "inventory", "registry", "orchestrator"})

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        module = importlib.import_module(f"{__name__}.{_EXPORTS[name]}")
        value = getattr(module, name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
