"""The applatency campaign: execution time along the hierarchy axis.

The commaware pack's latency-ratio sweep measures *placement quality*
only (diameter, contended bandwidth).  This campaign closes the loop
the ROADMAP asks for — "run EP/IS through the same axis to show where
communication-aware placement buys execution time as the hierarchy
deepens": every cell reshapes the Grid'5000 testbed to an intra/inter-
site latency ratio (``grid5000-latratio``), submits EP or IS class B
under one strategy, and records the modelled wall-clock under the
plan-dependent WAN contention model (DESIGN.md §10).

Grid: ratio x strategy x n, one sweep per application.  The report is
byte-deterministic (no timings, no paths): ``--jobs 1``, ``--jobs 2``
and cache-replayed runs render identical text, which is what the
determinism regression suite and the CI smoke job diff.

The module also hosts the fig4 *crossover calibration*
(:func:`fig4_crossover`): IS class B on 2x64 (two sites, 64 copies
each) against 1x128 (one site), evaluated under the plan-dependent and
the deprecated fixed-16 contention modes.  Only the plan-dependent
model reproduces the paper's ordering — leaving the site must cost
wall-clock for communication-bound IS — because the fixed divisor
credits 64 crossing flows with 4x the backbone that exists.  The
tier-1 suite pins both directions (test_applatency.py), and the
campaign report prints the measured numbers.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppEnv, Application
from repro.apps.ep import EPBenchmark
from repro.apps.is_bench import ISBenchmark
from repro.cluster import DEFAULT_COST_PARAMS, ClusterSpec
from repro.experiments.commaware import LATENCY_RATIOS
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult,
                                      demand_cost_key, make_spec, run_sweep)
from repro.experiments.report import format_metric_comparison
from repro.middleware.jobs import JobRequest, JobStatus
from repro.mpi.costmodel import CollectiveCostModel, CostParams
from repro.net.contention import ContentionModel

__all__ = ["APPLATENCY_STRATEGIES", "APPLATENCY_NS", "AppLatencyCampaign",
           "applatency_cell", "applatency_spec", "applatency_apps",
           "run_applatency_campaign", "applatency_report",
           "fig4_crossover"]

#: The strategy roster the ROADMAP item names: the two paper baselines
#: plus the communication-aware pair that should pay off as the
#: hierarchy deepens.
APPLATENCY_STRATEGIES: Tuple[str, ...] = (
    "spread", "concentrate", "bandwidth_spread", "topo_block")

#: Process counts: the fig4 IS panel range, where the paper's
#: crossover lives (EP's 256/512 tail adds nothing to the latency-
#: ratio question and would triple the campaign).
APPLATENCY_NS: Tuple[int, ...] = (32, 64, 128)


def applatency_apps(nas_class: str = "B") -> Tuple[Application, ...]:
    """The campaign's two fig4 applications."""
    return (EPBenchmark(nas_class), ISBenchmark(nas_class))


def _comm_seconds(cluster, plan, app: Application) -> float:
    """Modelled synchronised-communication seconds of replica 0.

    Mirrors :meth:`repro.apps.base.Application.run_time`: the layout's
    contention counts cover *every* co-located process copy, so the
    value matches the communication share of the recorded makespan.
    """
    hosts = Application._replica_hosts(plan, 0)
    layout = cluster.app_env.costmodel.layout(hosts)
    colocated = Counter(p.host.name for p in plan.placements)
    layout.colocated = np.array([colocated[h.name] for h in hosts])
    layout.apply_copy_counts(colocated)
    return app.comm_time(layout, plan.n, cluster.app_env)


def applatency_cell(ctx: CellContext) -> Dict:
    """One (ratio, strategy, n) execution of the cell's application.

    Builds its own reshaped testbed from the ratio axis (the
    ``with_params`` pattern the commaware latratio sweep uses) and
    records wall-clock plus the plan's contention fingerprint.
    """
    ratio = float(ctx.params["ratio"])
    strategy = ctx.params["strategy"]
    n = int(ctx.params["n"])
    app: Application = ctx.meta["app"]
    cluster = ctx.cluster_spec.with_params(latency_ratio=ratio).build(
        seed=ctx.seed)
    result = cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, app=app,
                   tag=f"applatency-{app.name}-{ratio:g}")
    )
    if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
        raise RuntimeError(
            f"{app.name} {strategy} ratio={ratio:g} n={n} failed: "
            f"{result.summary()}")
    plan = result.allocation
    copies = [p.host for p in plan.placements]
    contention = ContentionModel(cluster.topology).plan(copies)
    return {
        "app": app.name,
        "status": result.status.value,
        "time_s": round(result.timings.makespan_s, 9),
        "comm_s": round(_comm_seconds(cluster, plan, app), 9),
        "total_hosts": len(plan.used_hosts()),
        "sites_used": len({h.site for h in plan.used_hosts()}),
        "max_crossing_pairs": contention.max_crossing_pairs(),
    }


def applatency_spec(
    app: Optional[Application] = None,
    ratios: Iterable[float] = LATENCY_RATIOS,
    strategies: Sequence[str] = APPLATENCY_STRATEGIES,
    ns: Iterable[int] = APPLATENCY_NS,
    seed: int = 0,
    name: Optional[str] = None,
) -> ExperimentSpec:
    """One application's panel: ratio x strategy x n."""
    app = app or ISBenchmark("B")
    return make_spec(
        name=name or f"applatency-{app.name}",
        axes={"ratio": tuple(float(r) for r in ratios),
              "strategy": tuple(strategies),
              "n": tuple(int(n) for n in ns)},
        runner=applatency_cell,
        cluster=ClusterSpec(kind="grid5000-latratio"),
        master_seed=seed,
        meta={"app": app},
        cost_key=demand_cost_key,
    )


@dataclass
class AppLatencyCampaign:
    """Both application panels, ready for reporting."""

    apps: Dict[str, SweepResult]
    ratios: Tuple[float, ...]
    strategies: Tuple[str, ...]
    ns: Tuple[int, ...]

    def sweeps(self) -> List[SweepResult]:
        return [self.apps[k] for k in sorted(self.apps)]


def run_applatency_campaign(
    seed: int = 0,
    ratios: Iterable[float] = LATENCY_RATIOS,
    strategies: Sequence[str] = APPLATENCY_STRATEGIES,
    ns: Iterable[int] = APPLATENCY_NS,
    nas_class: str = "B",
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> AppLatencyCampaign:
    """Run both panels through the engine (CLI ``--experiment
    applatency``); ``shard`` slices every panel the same way."""
    ratios = tuple(float(r) for r in ratios)
    strategies = tuple(strategies)
    ns = tuple(int(n) for n in ns)
    apps: Dict[str, SweepResult] = {}
    for app in applatency_apps(nas_class):
        apps[app.name] = run_sweep(
            applatency_spec(app, ratios=ratios, strategies=strategies,
                            ns=ns, seed=seed),
            jobs=jobs, store=store, force=force, shard=shard)
    return AppLatencyCampaign(apps=apps, ratios=ratios,
                              strategies=strategies, ns=ns)


# ----------------------------------------------------------------------
# fig4 crossover calibration
# ----------------------------------------------------------------------
def fig4_crossover(cost_params: Optional[CostParams] = None) -> Dict:
    """The calibration measurement pinning the contention model.

    IS class B at n=128 on the paper testbed, 4 copies per host (the
    paper's ``P`` = cores): ``2x64`` spans nancy+lyon (64 copies each,
    64 concurrent crossing pairs on the 10 Gb/s backbone), ``1x128``
    stays inside nancy.  For each contention mode the measurement
    returns

    * ``wire`` — the slowest rank's bytes-on-the-wire seconds of one
      IS key-redistribution alltoallv
      (:meth:`~repro.mpi.costmodel.CollectiveCostModel.alltoallv_transfer_time`):
      the bandwidth-dependent component, where the backbone share — and
      nothing else — differs between modes;
    * ``comm`` / ``total`` — the full modelled IS communication time
      (all iterations, latency and runtime overheads included) and the
      IS makespan with compute;
    * ``ep_comm`` / ``ep_total`` — the same for EP (four 8-byte
      allreduces), the placement-indifference control: its totals must
      stay within a few percent whichever site the copies land on.

    Under ``"plan"`` the wire ordering reproduces the paper: 2x64 is
    strictly slower (each crossing pair gets 10G/64 ≈ 156 Mb/s, less
    than its NIC-shared LAN rate).  Under ``"fixed"`` the ordering
    *fails*: backbone/16 = 625 Mb/s exceeds the 250 Mb/s NIC share, so
    the constant predicts that leaving the site is free.  The tier-1
    suite asserts both directions; DESIGN.md §10 quotes the numbers.
    """
    from repro.grid5000.builder import build_topology

    base = cost_params or DEFAULT_COST_PARAMS
    topology = build_topology()
    nancy = topology.hosts_in_site("nancy")
    lyon = topology.hosts_in_site("lyon")
    copies_per_host = 4
    layouts = {
        "1x128": [h for h in nancy[:32] for _ in range(copies_per_host)],
        "2x64": ([h for h in nancy[:16] for _ in range(copies_per_host)]
                 + [h for h in lyon[:16] for _ in range(copies_per_host)]),
    }
    n = 128
    is_b = ISBenchmark("B")
    ep_b = EPBenchmark("B")
    keys_per_pair = max(1, int(4 * is_b.total_keys / (n * n)))
    out: Dict = {"n": n, "keys_per_pair": keys_per_pair, "modes": {}}
    for mode in ("plan", "fixed"):
        params = dataclasses.replace(base, wan_contention=mode)
        model = CollectiveCostModel(topology, params)
        env = AppEnv(topology=topology, cost_params=params)
        rows: Dict[str, Dict[str, float]] = {}
        for label, hosts in layouts.items():
            layout = model.layout(hosts)
            rows[label] = {
                "wire": model.alltoallv_transfer_time(layout, keys_per_pair),
                "comm": is_b.comm_time(layout, n, env),
                "total": is_b.run_time(list(hosts), n, env),
                "ep_comm": ep_b.comm_time(layout, n, env),
                "ep_total": ep_b.run_time(list(hosts), n, env),
            }
        out["modes"][mode] = rows
    return out


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _time_rows(sweep: SweepResult, ratio: float, strategies: Sequence[str],
               metric: str = "time_s") -> Dict[str, List]:
    rows: Dict[str, List] = {}
    for strategy in strategies:
        rows[strategy] = [c.value[metric]
                          for c in sweep.select(ratio=ratio,
                                                strategy=strategy)]
    return rows


def applatency_report(campaign: AppLatencyCampaign) -> str:
    """The campaign report, deterministic byte for byte.

    One block per (application, ratio) with wall-clock per strategy,
    then the deepest-hierarchy speedup panel — where communication-
    aware placement must buy IS time and leave EP indifferent — and
    the fig4 crossover calibration numbers.
    """
    parts: List[str] = []
    ns = list(campaign.ns)
    strategies = list(campaign.strategies)
    for app_name in sorted(campaign.apps):
        sweep = campaign.apps[app_name]
        parts.append(f"== applatency: {app_name.upper()} wall-clock (s) "
                     "by hierarchy depth ==")
        for ratio in campaign.ratios:
            parts.append(format_metric_comparison(
                f"r={ratio:g} t@n", ns,
                _time_rows(sweep, ratio, strategies), fmt=".2f"))
            parts.append("")

    deepest = max(campaign.ratios)
    # Baseline for the speedup panel: the paper's spread when swept,
    # else the campaign's first strategy (custom rosters stay valid).
    baseline = "spread" if "spread" in strategies else strategies[0]
    parts.append(f"== deepest hierarchy (ratio {deepest:g}): "
                 f"speedup over {baseline} ==")
    for app_name in sorted(campaign.apps):
        sweep = campaign.apps[app_name]
        base = _time_rows(sweep, deepest, [baseline])[baseline]
        rows: Dict[str, List] = {}
        for strategy in strategies:
            times = _time_rows(sweep, deepest, [strategy])[strategy]
            rows[strategy] = [
                None if t == 0 else round(b / t, 4)
                for b, t in zip(base, times)]
        parts.append(format_metric_comparison(
            f"{app_name} speedup@n", ns, rows, fmt=".2f"))
        parts.append("")

    cal = fig4_crossover()
    parts.append("== fig4 crossover calibration (IS class B, "
                 f"n={cal['n']}, {cal['keys_per_pair']} B/pair) ==")
    for mode in ("plan", "fixed"):
        rows = cal["modes"][mode]
        ratio = rows["2x64"]["wire"] / rows["1x128"]["wire"]
        parts.append(
            f"{mode:>5}: wire 2x64={rows['2x64']['wire'] * 1e3:.1f} ms "
            f"vs 1x128={rows['1x128']['wire'] * 1e3:.1f} ms "
            f"(ratio {ratio:.2f})  "
            f"IS total {rows['2x64']['total']:.2f} vs "
            f"{rows['1x128']['total']:.2f} s  "
            f"EP total {rows['2x64']['ep_total']:.2f} vs "
            f"{rows['1x128']['ep_total']:.2f} s")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# CLI registration (applatency)
# ----------------------------------------------------------------------
def _cli_overrides(args) -> Dict:
    """--demands/--ratios reshape the panels; --cluster does not apply
    (the latency-ratio testbed is the campaign's subject)."""
    from repro.experiments.cliutil import csv_values

    overrides = {}
    if args.demands is not None:
        overrides["ns"] = csv_values("--demands", args.demands, int,
                                     positive=True)
    if args.ratios is not None:
        overrides["ratios"] = csv_values("--ratios", args.ratios, float,
                                         positive=True)
    return overrides


def _cli_specs(args) -> List[ExperimentSpec]:
    """Mirror of :func:`run_applatency_campaign`'s spec construction
    (the orchestrator contract: same kwargs, same hashes)."""
    overrides = _cli_overrides(args)
    ratios = tuple(float(r)
                   for r in overrides.get("ratios", LATENCY_RATIOS))
    ns = tuple(int(n) for n in overrides.get("ns", APPLATENCY_NS))
    return [applatency_spec(app, ratios=ratios,
                            strategies=APPLATENCY_STRATEGIES, ns=ns,
                            seed=args.seed)
            for app in applatency_apps(args.nas_class)]


def _cli_run(args, store) -> None:
    """The EP/IS latency-ratio execution campaign.  Output is the
    deterministic report only (no engine timings), so ``--jobs 1`` and
    ``--jobs 2`` runs diff clean byte for byte.
    """
    from repro.experiments.cliutil import report_sweep

    campaign = run_applatency_campaign(
        seed=args.seed, nas_class=args.nas_class, jobs=args.jobs,
        store=store, force=args.force, shard=args.shard,
        **_cli_overrides(args))
    if args.shard:
        for sweep in campaign.sweeps():
            report_sweep(sweep, store)
        return
    print(applatency_report(campaign))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="applatency",
        cli_run=_cli_run,
        specs=_cli_specs,
        cli_axes=("demands", "ratios", "nas_class"),
    ))


_register()
