"""The unified experiment engine: declarative sweeps, parallel
execution, and an on-disk result store.

Every experiment in this repository is a *sweep*: a grid of cells
spanned by named parameter axes (strategy x demand x application x
replication ...), each cell producing a small JSON-able record.  The
paper itself is one big sweep over Grid'5000, and the lesson of that
platform's tooling is that campaigns need a reusable runner with
persisted, replayable results — not one hand-rolled for-loop per
figure.  This module provides exactly three pieces (see DESIGN.md §6):

* :class:`ExperimentSpec` — the declarative description: named axes,
  a module-level *cell runner*, a picklable
  :class:`~repro.cluster.ClusterSpec`, and a master seed;
* :class:`SweepRunner` — executes the cell grid serially, fanned out
  over ``concurrent.futures.ProcessPoolExecutor`` workers, or inline
  against a caller-supplied shared cluster (the legacy mode the paper
  figures use);
* :class:`ResultStore` — persists cell results as JSONL keyed by a
  content hash of (spec, seed, code-relevant config), so re-running a
  sweep skips already-computed cells and ``force=True`` invalidates.

Determinism
-----------
In per-cell mode every cell builds its own cluster from
``spec.cluster.build(cell.seed)`` where ``cell.seed`` is derived as a
stable hash of ``(master_seed, cell_key)``.  Cells therefore share no
state, which makes serial and parallel executions of the same spec
*bit-identical* — the determinism test in
``tests/experiments/test_engine.py`` compares the stored bytes.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.cluster import ClusterSpec, P2PMPICluster
from repro.sim.rng import stable_hash64

__all__ = ["Cell", "CellContext", "CellResult", "ExperimentSpec",
           "Heartbeat", "ResultStore", "SweepResult", "SweepRunner",
           "demand_cost_key", "derive_cell_seed", "encode_store_line",
           "make_spec", "parse_shard", "resolve_jobs", "run_sweep",
           "store_basename", "validate_shard"]

#: Bump when the stored cell format — or the meaning of stored values —
#: changes; part of the content hash, so old store files are
#: transparently recomputed rather than misread.  2: plan-dependent WAN
#: contention in the cost model (DESIGN.md §10) changed every modelled
#: execution time under an unchanged spec.
SCHEMA_VERSION = 2


def derive_cell_seed(master_seed: int, cell_key: str) -> int:
    """Per-cell seed: stable hash of the master seed and the cell key.

    Platform- and process-stable (SHA-256 based), so serial and
    parallel runs — and runs on different machines — agree bit for bit.
    """
    return stable_hash64(f"cell:{master_seed}:{cell_key}") % (2 ** 32)


def encode_store_line(record: Mapping) -> str:
    """The one store-line encoding (sorted keys, default separators).

    Every writer — :meth:`ResultStore.save`,
    :meth:`ResultStore.append_partial`, and the merge layer in
    :mod:`repro.experiments.aggregate` — must use this, or the
    byte-identity contract between unsharded runs and merged shards
    breaks.
    """
    return json.dumps(record, sort_keys=True)


def store_basename(name: str, content_hash: str) -> str:
    """Canonical store file name for a (spec name, content hash)."""
    return f"{name}-{content_hash[:12]}.jsonl"


def resolve_jobs(jobs: int) -> int:
    """Worker count for a ``--jobs`` value; ``0`` auto-sizes the pool.

    The auto size is ``os.cpu_count()`` (1 if the platform cannot
    tell), matching the ROADMAP "adaptive jobs" direction: campaign
    scripts say ``--jobs 0`` and get whatever the machine has.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = auto-size from CPU count)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    """Check a ``(index, count)`` shard designator; returns it intact."""
    try:
        index, count = (int(shard[0]), int(shard[1]))
    except (TypeError, ValueError, IndexError):
        raise ValueError(f"shard must be an (index, count) pair, got {shard!r}")
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 1 <= index <= count:
        raise ValueError(
            f"shard index must be in 1..{count}, got {index}")
    return index, count


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``K/N`` shard designator (1-based), e.g. ``2/3``."""
    head, sep, tail = text.partition("/")
    if not sep:
        raise ValueError(f"shard must look like K/N, got {text!r}")
    try:
        shard = (int(head), int(tail))
    except ValueError:
        raise ValueError(f"shard must look like K/N, got {text!r}")
    return validate_shard(shard)


def demand_cost_key(cell: "Cell") -> float:
    """The standard :attr:`ExperimentSpec.cost_key`: a cell's demand.

    Every paper grid's wall-clock is dominated by its largest ``n``
    cells (fig4's n=512 dwarfs n=32), so scheduling by descending
    demand keeps pool workers busy instead of tail-stalling on the
    expensive cells that a row-major submission order leaves for last.
    """
    params = cell.param_dict()
    return float(params.get("n", 0))


def _canon(value: Any) -> Any:
    """Canonical JSON-able form of spec metadata for content hashing.

    Plain scalars and containers pass through; arbitrary objects (e.g.
    an :class:`~repro.apps.base.Application` model carried in spec
    meta) are flattened to class name + constructor-relevant state so
    the hash is stable across processes (unlike ``repr`` addresses).
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canon(v) for v in value)
    state = getattr(value, "__dict__", None)
    if state is None:
        slots = getattr(type(value), "__slots__", None)
        if slots is not None:
            state = {s: getattr(value, s) for s in slots if hasattr(value, s)}
    cls = type(value)
    return {"__class__": f"{cls.__module__}.{cls.__qualname__}",
            "state": _canon(state) if state else None}


@dataclass(frozen=True)
class Cell:
    """One point of the sweep grid."""

    index: int
    key: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass
class CellContext:
    """What a cell runner receives.

    ``cluster`` is lazy: shared-cluster sweeps inject a live instance,
    per-cell sweeps build a private one from ``cluster_spec`` and the
    cell seed on first access.  Runners that build custom clusters
    (e.g. the overbooking ablation varies the middleware config per
    cell) use ``cluster_spec``/``seed`` directly and never touch it.
    """

    spec: "ExperimentSpec"
    cell: Cell
    _cluster: Optional[P2PMPICluster] = None

    @property
    def params(self) -> Dict[str, Any]:
        return self.cell.param_dict()

    @property
    def seed(self) -> int:
        return self.cell.seed

    @property
    def meta(self) -> Dict[str, Any]:
        return self.spec.meta

    @property
    def cluster_spec(self) -> ClusterSpec:
        return self.spec.cluster

    @property
    def cluster(self) -> P2PMPICluster:
        if self._cluster is None:
            self._cluster = self.spec.cluster.build(seed=self.cell.seed)
        return self._cluster


#: A cell runner: module-level function (picklable by reference) taking
#: a context and returning a JSON-serialisable mapping.
CellRunner = Callable[[CellContext], Mapping]


@dataclass
class ExperimentSpec:
    """Declarative sweep description: axes -> cell grid.

    Attributes
    ----------
    name:
        Campaign-unique name; prefixes the store file.
    axes:
        Ordered ``(axis_name, values)`` pairs.  Cells enumerate in
        row-major order (first axis slowest-varying), which is also the
        execution order of serial and shared-cluster runs.
    runner:
        The cell function.  Must be module level so it pickles by
        reference into pool workers.
    cluster:
        Recipe each cell builds its private cluster from.
    master_seed:
        Seed every cell seed derives from.
    meta:
        Extra constants the runner reads (apps, sample counts...);
        hashed into the store key via :func:`_canon`.
    shared_cluster:
        Cells mutate one shared cluster and must run serially in order
        (the legacy figure mode).  Cached all-or-nothing, since
        skipping a cell would change the state later cells observe.
    fixed_seed:
        Every cell uses ``master_seed`` itself instead of a derived
        per-cell seed (legacy parity for the ablation drivers).
    cost_key:
        Optional per-cell cost estimate (module-level callable, e.g.
        :func:`demand_cost_key`) used by pool runs to submit expensive
        cells first.  Pure scheduling hint: it is deliberately *not*
        part of :meth:`to_jsonable`/:meth:`content_hash`, and it never
        changes cell seeds, grid order, or stored bytes — the
        canonical file is sorted by cell index at save time whatever
        the execution order was.
    """

    name: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    runner: CellRunner
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    master_seed: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    shared_cluster: bool = False
    fixed_seed: bool = False
    cost_key: Optional[Callable[["Cell"], float]] = None

    # ------------------------------------------------------------------
    # grid
    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> List[str]:
        return [name for name, _ in self.axes]

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(values) for _, values in self.axes)

    def cell_count(self) -> int:
        total = 1
        for n in self.shape:
            total *= n
        return total

    @staticmethod
    def cell_key(params: Sequence[Tuple[str, Any]]) -> str:
        return ",".join(f"{k}={v!r}" for k, v in params)

    def cells(self) -> List[Cell]:
        """The full grid in row-major (declaration) order."""
        grids: List[List[Tuple[str, Any]]] = [[]]
        for axis, values in self.axes:
            grids = [prefix + [(axis, v)] for prefix in grids for v in values]
        out = []
        for index, params in enumerate(grids):
            key = self.cell_key(params)
            seed = (self.master_seed if self.fixed_seed
                    else derive_cell_seed(self.master_seed, key))
            out.append(Cell(index=index, key=key, params=tuple(params),
                            seed=seed))
        return out

    def shard_cells(self, shard: Tuple[int, int]) -> List[Cell]:
        """Deterministic partition of the grid: shard ``(k, n)`` keeps
        the cells whose index is ``k-1 (mod n)``.

        Round-robin over the canonical grid order, so shards are
        disjoint, their union is the full grid, and the expensive tail
        of a sorted axis (fig4's largest ``n`` cells) interleaves
        across shards instead of landing on the last one.  Sharding is
        *not* part of the content hash: every shard of a spec shares
        one store key and one per-cell seed schedule, which is what
        lets :mod:`repro.experiments.aggregate` reassemble shard
        outputs into the unsharded canonical file byte for byte.
        """
        index, count = validate_shard(shard)
        return [c for c in self.cells() if c.index % count == index - 1]

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Everything that defines the sweep's results.

        The runner is identified by qualified name *and* a hash of its
        source, so editing a cell runner's body invalidates cached
        sweeps instead of silently replaying pre-fix results.
        """
        runner = self.runner
        try:
            src = inspect.getsource(runner)
            runner_src = hashlib.sha256(src.encode("utf-8")).hexdigest()
        except (OSError, TypeError):
            runner_src = None
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "axes": _canon([[name, list(values)]
                            for name, values in self.axes]),
            "runner": f"{runner.__module__}.{runner.__qualname__}",
            "runner_src": runner_src,
            "cluster": self.cluster.fingerprint(),
            "master_seed": self.master_seed,
            "meta": _canon(self.meta),
            "shared_cluster": self.shared_cluster,
            "fixed_seed": self.fixed_seed,
        }

    def content_hash(self) -> str:
        """SHA-256 of the canonical spec JSON — the store key."""
        blob = json.dumps(self.to_jsonable(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def make_spec(name: str, axes: Mapping[str, Iterable[Any]],
              runner: CellRunner, **kwargs: Any) -> ExperimentSpec:
    """Convenience constructor taking axes as an (ordered) mapping."""
    frozen = tuple((axis, tuple(values)) for axis, values in axes.items())
    return ExperimentSpec(name=name, axes=frozen, runner=runner, **kwargs)


@dataclass
class CellResult:
    """One computed (or cache-recovered) cell."""

    index: int
    key: str
    params: Dict[str, Any]
    seed: int
    value: Dict[str, Any]
    cached: bool = False
    elapsed_s: float = 0.0

    def record(self) -> Dict[str, Any]:
        """The persisted (timing-free, hence deterministic) form."""
        return {"kind": "cell", "index": self.index, "key": self.key,
                "params": self.params, "seed": self.seed,
                "value": self.value}


@dataclass
class SweepResult:
    """All cells of one sweep, in canonical grid order."""

    spec: ExperimentSpec
    cells: List[CellResult]
    executed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0
    #: ``(index, count)`` when this run covered one shard of the grid.
    shard: Optional[Tuple[int, int]] = None

    def values(self) -> List[Dict[str, Any]]:
        return [c.value for c in self.cells]

    def value(self, **params: Any) -> Dict[str, Any]:
        """The value of the single cell matching all given params."""
        matches = [c for c in self.cells
                   if all(c.params.get(k) == v for k, v in params.items())]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} cells match {params!r}")
        return matches[0].value

    def select(self, **params: Any) -> List[CellResult]:
        """All cells matching the given axis values, grid-ordered."""
        return [c for c in self.cells
                if all(c.params.get(k) == v for k, v in params.items())]

    def summary(self) -> str:
        shard = (f" [shard {self.shard[0]}/{self.shard[1]}]"
                 if self.shard else "")
        return (f"sweep {self.spec.name}{shard}: {len(self.cells)} cells "
                f"({self.executed} executed, {self.cached} cached) "
                f"in {self.elapsed_s:.2f} s")


class ResultStore:
    """JSONL persistence for sweep results, keyed by spec content hash.

    One file per (spec-name, hash): a header line describing the spec
    followed by one line per cell in canonical grid order.  Files are
    written atomically (tmp + rename) with sorted keys, so two runs of
    the same spec — serial or parallel — produce byte-identical files.

    Alongside the canonical file the runner checkpoints completed cells
    into a ``.partial`` sibling (same header, cells in completion
    order) every few cells, so a killed campaign resumes from the last
    checkpoint instead of recomputing the sweep.  The partial file is
    promoted into the canonical one — and removed — when the sweep
    completes.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / store_basename(spec.name, spec.content_hash())

    def partial_path_for(self, spec: ExperimentSpec) -> Path:
        return self.path_for(spec).with_suffix(".jsonl.partial")

    def load(self, spec: ExperimentSpec) -> Dict[str, CellResult]:
        """Previously stored cells for this exact spec (``{}`` if none).

        A header hash mismatch (stale schema, edited file) is treated
        as a cache miss, never an error.
        """
        return self._read_cells(self.path_for(spec), spec)

    def load_partial(self, spec: ExperimentSpec) -> Dict[str, CellResult]:
        """Checkpointed cells of an interrupted run (``{}`` if none).

        A torn line (the process died mid-write) only drops that cell;
        every fully-written checkpoint line survives — including lines
        a later resumed run appended after the tear
        (:meth:`append_partial` seals torn tails with a newline).
        """
        return self._read_cells(self.partial_path_for(spec), spec)

    def _read_cells(self, path: Path,
                    spec: ExperimentSpec) -> Dict[str, CellResult]:
        if not path.exists():
            return {}
        want = spec.content_hash()
        out: Dict[str, CellResult] = {}
        try:
            with path.open("r", encoding="utf-8") as fh:
                header = json.loads(fh.readline())
                if (header.get("kind") != "sweep-header"
                        or header.get("hash") != want):
                    return {}
                for line in fh:
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        continue  # torn line of a killed writer
                    if rec.get("kind") != "cell":
                        continue
                    out[rec["key"]] = CellResult(
                        index=rec["index"], key=rec["key"],
                        params=rec["params"], seed=rec["seed"],
                        value=rec["value"], cached=True)
        except (OSError, ValueError, KeyError):
            return {}
        return out

    def append_partial(self, spec: ExperimentSpec,
                       results: Sequence[CellResult]) -> Path:
        """Checkpoint completed cells (appends; header on first write).

        If the file ends mid-line (a previous writer died), a newline
        seals the torn fragment into its own — skippable — line first,
        so new records never merge into it.
        """
        path = self.partial_path_for(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists()
        if not fresh:
            with path.open("rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    torn = fh.read(1) != b"\n"
                else:
                    fresh = True
                    torn = False
            if torn:
                with path.open("a", encoding="utf-8") as fh:
                    fh.write("\n")
        with path.open("a", encoding="utf-8") as fh:
            if fresh:
                header = {"kind": "sweep-header",
                          "hash": spec.content_hash(),
                          "spec": spec.to_jsonable()}
                fh.write(encode_store_line(header) + "\n")
            for res in results:
                fh.write(encode_store_line(res.record()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return path

    def save(self, spec: ExperimentSpec, results: Sequence[CellResult]) -> Path:
        """Persist a complete sweep atomically, in canonical order.

        Promotion point: any ``.partial`` checkpoint is superseded by
        the canonical file and removed.
        """
        path = self.path_for(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        header = {"kind": "sweep-header", "hash": spec.content_hash(),
                  "spec": spec.to_jsonable()}
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(encode_store_line(header) + "\n")
            for res in sorted(results, key=lambda r: r.index):
                fh.write(encode_store_line(res.record()) + "\n")
        tmp.replace(path)
        self.clear_partial(spec)
        return path

    def clear_partial(self, spec: ExperimentSpec) -> bool:
        """Drop the checkpoint file; True if one existed."""
        partial = self.partial_path_for(spec)
        if partial.exists():
            partial.unlink()
            return True
        return False

    def invalidate(self, spec: ExperimentSpec) -> bool:
        """Drop the stored sweep (``--force``); True if a file existed."""
        self.clear_partial(spec)
        path = self.path_for(spec)
        if path.exists():
            path.unlink()
            return True
        return False

    def entries(self) -> List[Dict[str, Any]]:
        """Headers of every stored sweep under the root."""
        out = []
        for path in sorted(self.root.glob("*.jsonl")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    header = json.loads(fh.readline())
            except (OSError, ValueError):
                continue
            if header.get("kind") == "sweep-header":
                out.append({"path": str(path), "hash": header["hash"],
                            "spec": header["spec"]})
        return out


class Heartbeat:
    """Per-worker progress beacon for the orchestrator (DESIGN.md §12).

    A worker process installs one as the runner's progress hook; every
    completed cell rewrites ``path`` (atomically, tmp + rename) with a
    tiny JSON record ``{"done": N, "last_key": ...}``.  The orchestrator
    tails the file's mtime to distinguish a *slow* shard from a *stalled*
    one — a worker grinding through expensive cells keeps touching its
    heartbeat, a hung or dead one stops.

    ``kill_after`` is the chaos hook behind ``orchestrate
    --inject-kill``: after that many cells the process dies with
    ``os._exit(137)`` — no atexit, no flush, exactly like a SIGKILL'd
    worker — *after* the heartbeat write, so the orchestrator's view
    stays consistent with the checkpoint the cells already landed in.
    The counter is cumulative across every sweep the process runs, so
    multi-sweep campaigns (commaware, applatency) can die between
    sweeps too.
    """

    _env_instance: Optional["Heartbeat"] = None

    def __init__(self, path: os.PathLike,
                 kill_after: Optional[int] = None) -> None:
        self.path = Path(path)
        self.kill_after = kill_after
        self.done = 0

    def __call__(self, result: "CellResult") -> None:
        self.done += 1
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(
            {"done": self.done, "last_key": result.key}, sort_keys=True),
            encoding="utf-8")
        tmp.replace(self.path)
        if self.kill_after is not None and self.done >= self.kill_after:
            os._exit(137)

    @classmethod
    def from_env(cls) -> Optional["Heartbeat"]:
        """The process-wide heartbeat configured by the orchestrator.

        Reads ``REPRO_HEARTBEAT_FILE`` (the beacon path) and
        ``REPRO_KILL_AFTER_CELLS`` (the injection counter); returns
        ``None`` when unset — runs outside an orchestrated worker pay
        nothing.  One instance per process: the cumulative ``done``
        counter must survive across the several sweeps a campaign
        worker executes.
        """
        path = os.environ.get("REPRO_HEARTBEAT_FILE")
        if not path:
            return None
        if cls._env_instance is None or str(cls._env_instance.path) != path:
            kill = os.environ.get("REPRO_KILL_AFTER_CELLS")
            cls._env_instance = cls(
                path, kill_after=int(kill) if kill else None)
        return cls._env_instance


def _execute_cell(spec: ExperimentSpec, cell: Cell) -> CellResult:
    """Run one cell in the current process (also the pool entry point)."""
    t0 = time.perf_counter()
    ctx = CellContext(spec=spec, cell=cell)
    value = dict(spec.runner(ctx))
    return CellResult(index=cell.index, key=cell.key,
                      params=cell.param_dict(), seed=cell.seed, value=value,
                      elapsed_s=time.perf_counter() - t0)


class SweepRunner:
    """Executes an :class:`ExperimentSpec` and reconciles the store.

    Parameters
    ----------
    spec:
        What to run.
    jobs:
        Worker processes for per-cell sweeps (1 = in-process serial).
        Ignored (forced serial) for shared-cluster sweeps.
    store:
        Optional :class:`ResultStore`; cached cells are skipped.
    force:
        Invalidate the stored sweep and recompute everything.
    cluster:
        Explicit live cluster to run every cell against, in grid
        order.  This is the legacy figure mode: the caller owns the
        cluster, execution is serial, and nothing is cached (a live
        simulator's state is not replayable from a store file).
    checkpoint_every:
        Flush completed cells to the store's ``.partial`` file every
        this many cells (per-cell sweeps with a store only), so a
        killed campaign resumes from the checkpoint.  ``None`` (the
        default) reads ``REPRO_CHECKPOINT_EVERY`` from the environment
        — the orchestrator's channel for forcing per-cell flushes on
        its workers — falling back to 8.  The canonical file at sweep
        end stays byte-identical regardless of the checkpoint cadence.
    progress:
        Optional per-cell hook called after each *executed* cell (and
        its checkpoint flush): cache hits never fire it.  ``None``
        resolves :meth:`Heartbeat.from_env`, so orchestrated workers
        beacon progress without any plumbing through the driver
        modules.
    shard:
        ``(index, count)`` 1-based shard designator (the CLI's
        ``--shard K/N``): run only this shard's slice of the grid (see
        :meth:`ExperimentSpec.shard_cells`).  A sharded run never
        writes the canonical file — its computed cells all land in the
        store's ``.partial`` checkpoint, the merge input
        :mod:`repro.experiments.aggregate` reassembles campaigns from.
        Incompatible with shared-cluster specs (a stateful sweep
        cannot be partitioned) and with an explicit ``cluster``.
    """

    def __init__(self, spec: ExperimentSpec, *, jobs: int = 1,
                 store: Optional[ResultStore] = None, force: bool = False,
                 cluster: Optional[P2PMPICluster] = None,
                 checkpoint_every: Optional[int] = None,
                 shard: Optional[Tuple[int, int]] = None,
                 progress: Optional[Callable[[CellResult], None]] = None,
                 ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every is None:
            checkpoint_every = int(os.environ.get(
                "REPRO_CHECKPOINT_EVERY", "8"))
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if cluster is not None and (store is not None or force):
            raise ValueError(
                "store/force cannot be combined with an explicit cluster: "
                "a live simulator's state is not replayable from a store")
        if shard is not None:
            shard = validate_shard(shard)
            if spec.shared_cluster:
                raise ValueError(
                    "shard cannot partition a shared-cluster sweep: later "
                    "cells observe the state earlier cells left behind")
            if cluster is not None:
                raise ValueError(
                    "shard cannot be combined with an explicit cluster")
            if force:
                # invalidate() unlinks the whole store — including the
                # .partial file other shards of this spec accumulated
                # into.  There is no per-shard invalidation; recompute
                # by deleting the store files or re-running unsharded.
                raise ValueError(
                    "force cannot be combined with shard: invalidation "
                    "would destroy cells other shards checkpointed into "
                    "the same store")
        self.spec = spec
        self.jobs = jobs
        self.store = store
        self.force = force
        self.cluster = cluster
        self.checkpoint_every = checkpoint_every
        self.shard = shard
        self.progress = (progress if progress is not None
                         else Heartbeat.from_env())
        self._pending_checkpoint: List[CellResult] = []

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        t0 = time.perf_counter()
        if self.cluster is not None:
            cells = self.spec.cells()
            results = self._run_inline(cells, self.cluster)
            return SweepResult(self.spec, results, executed=len(results),
                               elapsed_s=time.perf_counter() - t0)

        cells = (self.spec.shard_cells(self.shard) if self.shard
                 else self.spec.cells())
        cached, resumed = self._load_cache(cells)
        todo = [c for c in cells if c.key not in cached]
        if self.spec.shared_cluster:
            computed = (self._run_shared(cells) if todo else [])
            if computed:
                cached = {}
        elif self.jobs > 1 and len(todo) > 1:
            computed = self._run_pool(todo)
        else:
            computed = self._run_serial(todo)

        by_key = dict(cached)
        by_key.update({r.key: r for r in computed})
        results = [by_key[c.key] for c in cells]
        if (self.store is not None and self.shard is None
                and (computed or resumed)):
            # `resumed` promotes a checkpoint-only sweep to canonical
            # even when this invocation had nothing left to execute.
            # Sharded runs never promote: their slice is complete but
            # the sweep is not — computed cells stay in the .partial
            # checkpoint for the merge step.
            self.store.save(self.spec, results)
        return SweepResult(self.spec, results, executed=len(computed),
                           cached=len(cached),
                           elapsed_s=time.perf_counter() - t0,
                           shard=self.shard)

    # ------------------------------------------------------------------
    def _load_cache(self,
                    cells: Sequence[Cell]) -> Tuple[Dict[str, CellResult], bool]:
        """Stored cells usable for this run, plus a resumed-from-partial
        flag (which forces canonical promotion at the end)."""
        if self.store is None:
            return {}, False
        if self.force:
            self.store.invalidate(self.spec)
            return {}, False
        cached = self.store.load(self.spec)
        keys = {c.key for c in cells}
        if self.spec.shared_cluster:
            # All-or-nothing: partially replaying a stateful sweep
            # would change what later cells observe.  Checkpoints are
            # never written for shared sweeps, so none are read.
            if set(cached) >= keys:
                return cached, False
            return {}, False
        partial = {key: res
                   for key, res in self.store.load_partial(self.spec).items()
                   if key in keys and key not in cached}
        cached = {key: res for key, res in cached.items() if key in keys}
        cached.update(partial)
        return cached, bool(partial)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _checkpoint(self, result: CellResult) -> None:
        if self.store is None or self.spec.shared_cluster:
            return
        self._pending_checkpoint.append(result)
        if len(self._pending_checkpoint) >= self.checkpoint_every:
            self.store.append_partial(self.spec, self._pending_checkpoint)
            self._pending_checkpoint.clear()

    def _run_inline(self, cells: Sequence[Cell],
                    cluster: P2PMPICluster) -> List[CellResult]:
        out = []
        for cell in cells:
            t0 = time.perf_counter()
            ctx = CellContext(spec=self.spec, cell=cell, _cluster=cluster)
            value = dict(self.spec.runner(ctx))
            result = CellResult(
                index=cell.index, key=cell.key, params=cell.param_dict(),
                seed=cell.seed, value=value,
                elapsed_s=time.perf_counter() - t0)
            out.append(result)
            if self.progress is not None:
                self.progress(result)
        return out

    def _run_shared(self, cells: Sequence[Cell]) -> List[CellResult]:
        cluster = self.spec.cluster.build(seed=self.spec.master_seed)
        return self._run_inline(cells, cluster)

    def _run_serial(self, todo: Sequence[Cell]) -> List[CellResult]:
        out: List[CellResult] = []
        try:
            for cell in todo:
                result = _execute_cell(self.spec, cell)
                out.append(result)
                self._checkpoint(result)
                if self.progress is not None:
                    self.progress(result)
        finally:
            self._flush_checkpoint()
        return out

    def pool_order(self, todo: Sequence[Cell]) -> List[Cell]:
        """Submission order for pool runs: most expensive cells first.

        With a ``spec.cost_key`` the cells sort by descending estimated
        cost (stable, so equal-cost cells keep grid order); without one
        the grid order stands.  Ordering is execution-only — seeds,
        content hash and stored bytes are oblivious to it.
        """
        if self.spec.cost_key is None:
            return list(todo)
        return sorted(todo, key=self.spec.cost_key, reverse=True)

    def _run_pool(self, todo: Sequence[Cell]) -> List[CellResult]:
        workers = min(self.jobs, len(todo))
        out: List[CellResult] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_cell, self.spec, cell)
                       for cell in self.pool_order(todo)]
            try:
                # Checkpoint in completion order: a death mid-sweep
                # keeps every finished cell, not just a prefix.
                for future in as_completed(futures):
                    result = future.result()
                    out.append(result)
                    self._checkpoint(result)
                    if self.progress is not None:
                        self.progress(result)
            finally:
                self._flush_checkpoint()
        return out

    def _flush_checkpoint(self) -> None:
        if self._pending_checkpoint and self.store is not None:
            self.store.append_partial(self.spec, self._pending_checkpoint)
            self._pending_checkpoint.clear()


def run_sweep(spec: ExperimentSpec, *, jobs: int = 1,
              store: Optional[ResultStore] = None, force: bool = False,
              cluster: Optional[P2PMPICluster] = None,
              checkpoint_every: Optional[int] = None,
              shard: Optional[Tuple[int, int]] = None,
              progress: Optional[Callable[[CellResult], None]] = None,
              ) -> SweepResult:
    """One-call façade over :class:`SweepRunner` — the shared body of
    every driver module's ``*_sweep`` entry point."""
    return SweepRunner(spec, jobs=jobs, store=store, force=force,
                       cluster=cluster, checkpoint_every=checkpoint_every,
                       shard=shard, progress=progress).run()
