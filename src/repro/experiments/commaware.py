"""Communication-aware allocation scenario pack (campaign scale).

Re-sweeps the paper's grids with the communication-aware strategy
family (:mod:`repro.alloc.commaware`) side by side with the published
strategies:

* **fig2/fig3 grid** — the §5.1 co-allocation sweep (100..600
  processes), six strategies instead of two, with two placement-quality
  metrics the paper never measured: the latency *diameter* of the
  allocated host set and its minimum pairwise *bandwidth*;
* **fig4 grids** — the EP and IS timing sweeps under all six
  strategies, exposing when communication-aware placement actually
  buys execution time;
* **latency-heterogeneity axis** — a new grid: the intra/inter-site
  latency ratio of the testbed is swept from "one big LAN" to "deep
  site hierarchy" (:func:`repro.cluster.build_latratio_cluster`) at a
  fixed demand, showing where the strategy families diverge.

Every sweep is an ordinary engine spec — parallelisable with ``--jobs``
and cacheable with ``--out`` — and the whole pack is wired into the CLI
as ``p2pmpirun --experiment commaware``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.ep import EPBenchmark
from repro.apps.is_bench import ISBenchmark
from repro.cluster import ClusterSpec
from repro.experiments.applications import (app_series_from_sweep,
                                            application_spec)
from repro.experiments.coallocation import PAPER_DEMANDS
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult,
                                      demand_cost_key, make_spec, run_sweep)
from repro.experiments.report import (format_metric_comparison,
                                      format_series_table)
from repro.middleware.jobs import JobRequest, JobStatus
from repro.net.contention import ContentionModel

__all__ = ["PAPER_STRATEGIES", "COMMAWARE_STRATEGIES", "ALL_STRATEGIES",
           "LATENCY_RATIOS", "LATRATIO_DEMAND", "CommawareCampaign",
           "commaware_cell", "latratio_cell", "commaware_alloc_spec",
           "commaware_app_spec", "latratio_spec", "run_commaware_campaign",
           "commaware_report"]

#: The paper's §4.3 strategies (block is its future-work mixed family).
PAPER_STRATEGIES: Tuple[str, ...] = ("concentrate", "spread", "block")

#: The communication-aware pack (Bender et al. spirit).
COMMAWARE_STRATEGIES: Tuple[str, ...] = (
    "bandwidth_spread", "diameter_concentrate", "topo_block")

ALL_STRATEGIES: Tuple[str, ...] = PAPER_STRATEGIES + COMMAWARE_STRATEGIES

#: The latency-heterogeneity axis: intra/inter-site latency ratio.
#: 1 = WAN-flat LAN (locality is free), 121.6 = the paper's measured
#: Grid'5000 setting (10.576 ms to lyon / 0.087 ms LAN), 1000 = deep
#: hierarchy (think transcontinental federation over campus LANs).
LATENCY_RATIOS: Tuple[float, ...] = (1.0, 10.0, 121.6, 1000.0)

#: Fixed demand for the latency-ratio sweep: mid-grid, where fig2/fig3
#: show the strategies already straddling several sites.
LATRATIO_DEMAND = 200


def _placement_metrics(cluster, plan) -> Dict:
    """The two Bender-style placement-quality numbers for a plan.

    Bandwidth is the *contended* estimate
    (:func:`repro.alloc.commaware.contended_pair_bw_bps`): the raw
    NIC-clamped bottleneck is 1 Gb/s for every pair of the paper's
    testbed and would rank all placements equal.  A completed plan
    carries its own placement, so the score is plan-dependent — each
    backbone divides by *this* plan's concurrent crossing pairs
    (DESIGN.md §10), not the deprecated fixed divisor.
    """
    used = plan.used_hosts()
    topo = cluster.topology
    # One plan entry per process copy: co-located copies load the NIC,
    # crossing copies load the backbone.
    copies = [p.host for p in plan.placements]
    contention = ContentionModel(topo).plan(copies)
    # Site-level reduction (see Topology.site_representatives): the
    # contended score depends only on the site pair.
    reps, same_site_pair = topo.site_representatives(used)
    min_bw = topo.lan_bw_bps if same_site_pair else float("inf")
    for i, a in enumerate(reps):
        for b in reps[i + 1:]:
            min_bw = min(min_bw, contention.pair_bw_bps(a, b))
    return {
        "latency_diameter_ms": round(topo.latency_diameter_ms(used), 6),
        # inf (single-host allocation) is not valid strict JSON: None.
        "min_bandwidth_bps": (None if min_bw == float("inf") else min_bw),
        "sites_used": len({h.site for h in used}),
        "max_crossing_pairs": contention.max_crossing_pairs(),
    }


def commaware_cell(ctx: CellContext) -> Dict:
    """One (strategy, n) submission plus placement-quality metrics."""
    strategy = ctx.params["strategy"]
    n = ctx.params["n"]
    result = ctx.cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, tag=f"commaware-{strategy}")
    )
    if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
        raise RuntimeError(f"{strategy} n={n} failed: {result.summary()}")
    plan = result.allocation
    value = {
        "status": result.status.value,
        "hosts_by_site": plan.hosts_by_site(),
        "cores_by_site": plan.cores_by_site(),
        "reservation_s": result.timings.reservation_s,
        "total_hosts": len(plan.used_hosts()),
        "total_cores": plan.total_processes,
    }
    value.update(_placement_metrics(ctx.cluster, plan))
    return value


def latratio_cell(ctx: CellContext) -> Dict:
    """One (ratio, strategy) cell: builds its own reshaped testbed.

    The ratio lives on an axis, not in the sweep's cluster spec, so the
    cell derives a per-cell spec via ``with_params`` — the same pattern
    the overbooking ablation uses for per-cell middleware configs.
    """
    ratio = float(ctx.params["ratio"])
    strategy = ctx.params["strategy"]
    n = int(ctx.meta["n"])
    cluster = ctx.cluster_spec.with_params(latency_ratio=ratio).build(
        seed=ctx.seed)
    result = cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, tag=f"latratio-{ratio:g}")
    )
    if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
        raise RuntimeError(
            f"{strategy} ratio={ratio:g} n={n} failed: {result.summary()}")
    plan = result.allocation
    value = {
        "status": result.status.value,
        "total_hosts": len(plan.used_hosts()),
        "reservation_s": result.timings.reservation_s,
    }
    value.update(_placement_metrics(cluster, plan))
    return value


def commaware_alloc_spec(
    seed: int = 0,
    demands: Iterable[int] = PAPER_DEMANDS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "commaware-alloc",
) -> ExperimentSpec:
    """The fig2/fig3 grid widened to the full strategy roster."""
    return make_spec(
        name=name,
        axes={"strategy": tuple(strategies), "n": tuple(demands)},
        runner=commaware_cell,
        cluster=cluster_spec or ClusterSpec(),
        master_seed=seed,
        cost_key=demand_cost_key,
    )


def commaware_app_spec(app, seed: int = 0,
                       strategies: Sequence[str] = ALL_STRATEGIES,
                       process_counts: Optional[Iterable[int]] = None,
                       cluster_spec: Optional[ClusterSpec] = None,
                       ) -> ExperimentSpec:
    """One fig4 panel under the full roster (EP or IS)."""
    return application_spec(
        app, process_counts=process_counts, strategies=tuple(strategies),
        seed=seed, cluster_spec=cluster_spec,
        name=f"commaware-fig4-{app.name}")


def latratio_spec(
    seed: int = 0,
    ratios: Iterable[float] = LATENCY_RATIOS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    n: int = LATRATIO_DEMAND,
    name: str = "commaware-latratio",
) -> ExperimentSpec:
    """The latency-heterogeneity grid: ratio x strategy at fixed n."""
    return make_spec(
        name=name,
        axes={"ratio": tuple(ratios), "strategy": tuple(strategies)},
        runner=latratio_cell,
        cluster=ClusterSpec(kind="grid5000-latratio"),
        master_seed=seed,
        meta={"n": n},
    )


@dataclass
class CommawareCampaign:
    """The pack's three sweep groups, ready for reporting."""

    alloc: SweepResult
    apps: Dict[str, SweepResult]
    latratio: Optional[SweepResult]
    strategies: Tuple[str, ...]
    demands: Tuple[int, ...]

    def sweeps(self) -> List[SweepResult]:
        """Every sweep the campaign ran, in execution order."""
        out = [self.alloc] + [self.apps[k] for k in sorted(self.apps)]
        if self.latratio is not None:
            out.append(self.latratio)
        return out


def run_commaware_campaign(
    seed: int = 0,
    demands: Iterable[int] = PAPER_DEMANDS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    cluster_spec: Optional[ClusterSpec] = None,
    with_apps: bool = True,
    with_latratio: bool = True,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> CommawareCampaign:
    """Run the whole pack through the engine.

    ``cluster_spec`` reshapes the alloc/app grids (tests use the small
    testbed); the latency-ratio sweep always runs on the
    ``grid5000-latratio`` kind since the ratio *is* its subject.
    ``shard`` slices every sweep's grid the same way (CLI ``--shard``);
    sharded sweeps persist to ``.partial`` files for a later merge.
    """
    demands = tuple(demands)
    strategies = tuple(strategies)
    alloc = run_sweep(
        commaware_alloc_spec(seed=seed, demands=demands,
                             strategies=strategies,
                             cluster_spec=cluster_spec),
        jobs=jobs, store=store, force=force, shard=shard)
    apps: Dict[str, SweepResult] = {}
    if with_apps:
        for app in (EPBenchmark("B"), ISBenchmark("B")):
            apps[app.name] = run_sweep(
                commaware_app_spec(app, seed=seed, strategies=strategies,
                                   cluster_spec=cluster_spec),
                jobs=jobs, store=store, force=force, shard=shard)
    latratio = None
    if with_latratio:
        latratio = run_sweep(
            latratio_spec(seed=seed, strategies=strategies),
            jobs=jobs, store=store, force=force, shard=shard)
    return CommawareCampaign(alloc=alloc, apps=apps, latratio=latratio,
                             strategies=strategies, demands=demands)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _metric_rows(sweep: SweepResult, strategies: Sequence[str],
                 metric: str, scale: float = 1.0) -> Dict[str, List]:
    """strategy -> metric values in grid order along the other axis."""
    rows: Dict[str, List] = {}
    for strategy in strategies:
        values = []
        for cell in sweep.select(strategy=strategy):
            v = cell.value.get(metric)
            values.append(None if v is None else v * scale)
        rows[strategy] = values
    return rows


def commaware_report(campaign: CommawareCampaign) -> str:
    """The comparison report, deterministic byte for byte.

    No timings, no paths: two runs of the same campaign — serial,
    parallel or cache-replayed — must render identical text.
    """
    parts: List[str] = []
    demands = list(campaign.demands)
    strategies = list(campaign.strategies)

    parts.append("== fig2/fig3 grid: placement quality by strategy ==")
    parts.append(format_metric_comparison(
        "hosts@n", demands,
        _metric_rows(campaign.alloc, strategies, "total_hosts"), fmt="g"))
    parts.append("")
    parts.append(format_metric_comparison(
        "sites@n", demands,
        _metric_rows(campaign.alloc, strategies, "sites_used"), fmt="g"))
    parts.append("")
    parts.append(format_metric_comparison(
        "diam_ms@n", demands,
        _metric_rows(campaign.alloc, strategies, "latency_diameter_ms"),
        fmt=".3f"))
    parts.append("")
    parts.append(format_metric_comparison(
        "minbw_gbps@n", demands,
        _metric_rows(campaign.alloc, strategies, "min_bandwidth_bps",
                     scale=1e-9),
        fmt=".2f"))

    for app_name, sweep in campaign.apps.items():
        series = app_series_from_sweep(sweep)
        parts.append("")
        parts.append(f"== fig4 grid: {app_name.upper()} class B ==")
        parts.append(format_series_table(series, title=app_name))

    if campaign.latratio is not None:
        ratios = [f"{v:g}" for v in campaign.latratio.spec.axes[0][1]]
        parts.append("")
        parts.append("== latency-heterogeneity axis "
                     f"(n={campaign.latratio.spec.meta['n']}, "
                     "inter/intra-site RTT ratio) ==")
        diam_rows: Dict[str, List] = {}
        bw_rows: Dict[str, List] = {}
        for strategy in strategies:
            cells = campaign.latratio.select(strategy=strategy)
            diam_rows[strategy] = [c.value["latency_diameter_ms"]
                                   for c in cells]
            bw_rows[strategy] = [
                None if c.value["min_bandwidth_bps"] is None
                else c.value["min_bandwidth_bps"] * 1e-9 for c in cells]
        parts.append(format_metric_comparison(
            "diam_ms@ratio", ratios, diam_rows, fmt=".3f"))
        parts.append("")
        parts.append(format_metric_comparison(
            "minbw_gbps@ratio", ratios, bw_rows, fmt=".2f"))
    return "\n".join(parts)


# ----------------------------------------------------------------------
# CLI registration (commaware)
# ----------------------------------------------------------------------
def _cli_specs(args) -> List[ExperimentSpec]:
    """The campaign's sweep grids for these flags, nothing executed.

    Must mirror :func:`run_commaware_campaign`'s spec construction
    exactly — same kwargs, same order — or the orchestrator would plan
    shards against hashes its workers never write.
    """
    from repro.experiments.cliutil import grid_overrides

    small = args.cluster == "small"
    overrides = grid_overrides(args)
    demands = tuple(overrides.get("demands", PAPER_DEMANDS))
    cluster_spec = overrides.get("cluster_spec")
    specs = [commaware_alloc_spec(seed=args.seed, demands=demands,
                                  strategies=ALL_STRATEGIES,
                                  cluster_spec=cluster_spec)]
    if not small:
        for app in (EPBenchmark("B"), ISBenchmark("B")):
            specs.append(commaware_app_spec(
                app, seed=args.seed, strategies=ALL_STRATEGIES,
                cluster_spec=cluster_spec))
        specs.append(latratio_spec(seed=args.seed,
                                   strategies=ALL_STRATEGIES))
    return specs


def _cli_run(args, store) -> None:
    """The communication-aware pack.  Output is deterministic byte for
    byte (no timings), so ``--jobs 1`` and ``--jobs 2`` runs diff clean.
    """
    from repro.experiments.cliutil import grid_overrides, report_sweep

    small = args.cluster == "small"
    campaign = run_commaware_campaign(
        seed=args.seed,
        # The fig4/latratio panels assume the full testbed's demand
        # range; on the smoke grid only the alloc comparison makes sense.
        with_apps=not small,
        with_latratio=not small,
        jobs=args.jobs, store=store, force=args.force, shard=args.shard,
        **grid_overrides(args))
    if args.shard:
        for sweep in campaign.sweeps():
            report_sweep(sweep, store)
        return
    print(commaware_report(campaign))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="commaware",
        cli_run=_cli_run,
        specs=_cli_specs,
        cli_axes=("cluster", "demands"),
    ))


_register()
