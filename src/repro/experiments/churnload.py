"""Churn-under-load campaign: sustained-load availability sweeps.

The paper's §3.2 argument is that grid failures are far more frequent
than on supercomputers and that the replication degree ``r`` is the
knob that buys job survival.  The repo's earlier churn coverage only
killed hosts in isolated one-shot tests; this campaign composes the
multi-user contention round with :meth:`ChurnInjector.sustained_schedule`
into the sweep the paper's story actually needs:

    job arrival rate x per-host failure rate x replication degree
    x allocation strategy

Every cell runs one *sustained round*: several competing submitters
each feed a Poisson stream of jobs into a shared simulated grid while
an ongoing churn process crashes (and, after a fixed downtime, revives)
the worker hosts mid-flight.  The round's :class:`SurvivalLedger`
yields the two §3.2 metrics — job availability and replica survival —
which the report tabulates per strategy, exposing e.g. what
``bandwidth_spread``'s shrunken host sets do to replica survival
versus plain ``spread`` (fewer hosts = more correlated copy deaths).

Cells are ordinary engine cells (private per-cell cluster, seed derived
from the spec), so ``--jobs N`` fan-out, the JSONL result store and
``.partial`` checkpoint resume all work unchanged, and the report is
byte-deterministic across execution modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec, P2PMPICluster
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult, make_spec,
                                      run_sweep)
from repro.experiments.multiuser import default_submitters
from repro.experiments.report import format_metric_comparison
from repro.middleware.jobs import JobRequest
from repro.overlay.churn import ChurnInjector, SurvivalLedger

__all__ = ["FixedWorkApp", "CHURNLOAD_STRATEGIES", "run_churnload_round",
           "churnload_cell", "churnload_spec", "churnload_sweep",
           "churnload_report"]

#: Default strategy roster: the two published strategies plus the
#: communication-aware one whose shrunken host sets §3.2 worries about.
CHURNLOAD_STRATEGIES: Tuple[str, ...] = (
    "spread", "concentrate", "bandwidth_spread")


@dataclass(frozen=True)
class FixedWorkApp:
    """Synthetic application: every process copy runs ``duration_s``.

    The hostname probe's zero-duration jobs leave churn no execution
    window to hit; a fixed, deterministic duration gives every cell the
    same exposure regardless of placement, so survival differences are
    attributable to the allocation alone.
    """

    duration_s: float = 30.0
    name: str = "fixedwork"

    def predicted_rank_times(self, plan, env) -> Dict[tuple, float]:
        return {(p.rank, p.replica): self.duration_s
                for p in plan.placements}


def run_churnload_round(
    cluster: P2PMPICluster,
    submitters: Sequence[str],
    horizon_s: float = 240.0,
    arrival_rate_s: float = 0.05,
    n: int = 4,
    r: int = 2,
    strategy: str = "spread",
    failure_rate_s: float = 0.0,
    downtime_s: Optional[float] = 60.0,
    work_s: float = 30.0,
) -> SurvivalLedger:
    """One sustained round of competing submitters under churn.

    Each submitter runs an independent Poisson arrival process
    (``arrival_rate_s`` jobs/s) over ``horizon_s``; since one MPD
    serialises its own submissions, a job arriving while the previous
    one is still in flight queues up (backlog) rather than being
    dropped — the sustained-load behaviour one-shot rounds cannot show.
    Concurrently, every host that is neither a submitter nor the
    supernode anchor is subjected to a sustained churn process
    (``failure_rate_s`` crashes/host/s, fixed ``downtime_s`` repair;
    ``None`` = crashed hosts stay dead).  Crashes flow through the
    cluster's ``on_change`` hook — MPD job interrupts, reservation
    loss, and (on revival) supernode re-registration are all exercised
    for real.

    Returns the round's :class:`SurvivalLedger`.
    """
    if not cluster._booted:
        cluster.boot()
    sim = cluster.sim
    ledger = SurvivalLedger()
    cluster.churn.ledger = ledger

    # Submitters and the supernode anchor are sheltered: killing the
    # bookkeeping endpoints measures protocol breakdown, not the §3.2
    # worker-failure story this campaign quantifies.
    protected = set(submitters) | {cluster.supernode_host}
    victims = sorted(name for name in cluster.mpds if name not in protected)
    if failure_rate_s > 0.0 and victims:
        schedule = ChurnInjector.sustained_schedule(
            victims, failure_rate_s, horizon_s,
            sim.rng.stream("churnload.failures"), downtime_s=downtime_s)
        cluster.churn.start(schedule)

    app = FixedWorkApp(duration_s=work_s)
    procs = []
    for submitter in submitters:
        mpd = cluster.mpds[submitter]
        arrivals = sim.rng.stream(f"churnload.arrivals.{submitter}")

        def stream(mpd=mpd, arrivals=arrivals, submitter=submitter):
            next_arrival = 0.0
            index = 0
            while True:
                next_arrival += float(
                    arrivals.exponential(1.0 / arrival_rate_s))
                if next_arrival >= horizon_s:
                    return index
                if next_arrival > sim.now:
                    yield sim.timeout(next_arrival - sim.now)
                request = JobRequest(n=n, r=r, strategy=strategy, app=app,
                                     tag=f"{submitter}#{index}")
                result = yield from mpd.submit_job(request)
                ledger.record_job(submitter, result)
                index += 1

        procs.append(sim.process(stream()))

    sim.run_until_complete(sim.all_of(procs))
    cluster.churn.ledger = None
    return ledger


def churnload_cell(ctx: CellContext) -> Dict:
    """Engine cell: one sustained round on a private cluster.

    A whole round is one cell (the competing jobs and the churn process
    must share a simulator); the axes scan round-level parameters.
    """
    params = ctx.params
    cluster = ctx.cluster
    submitters = default_submitters(cluster, int(ctx.meta["users"]))
    ledger = run_churnload_round(
        cluster, submitters,
        horizon_s=float(ctx.meta["horizon_s"]),
        arrival_rate_s=float(params["arrival"]),
        n=int(ctx.meta["n"]),
        r=int(params["r"]),
        strategy=params["strategy"],
        failure_rate_s=float(params["fail"]),
        downtime_s=ctx.meta.get("downtime_s"),
        work_s=float(ctx.meta["work_s"]),
    )
    value = ledger.summary()
    value["mean_hosts_used"] = (
        None if not any(j.launched for j in ledger.jobs) else
        round(sum(j.hosts_used for j in ledger.jobs if j.launched)
              / sum(1 for j in ledger.jobs if j.launched), 6))
    return value


def churnload_spec(
    arrivals: Sequence[float] = (0.05,),
    failures: Sequence[float] = (0.0, 0.002, 0.006),
    replications: Sequence[int] = (1, 2),
    strategies: Sequence[str] = CHURNLOAD_STRATEGIES,
    users: int = 2,
    n: int = 4,
    horizon_s: float = 240.0,
    downtime_s: Optional[float] = 60.0,
    work_s: float = 30.0,
    seed: int = 0,
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "churnload",
) -> ExperimentSpec:
    """The availability sweep as a declarative spec.

    Axes: arrival rate (jobs/s per submitter) x per-host failure rate
    (crashes/s) x replication degree x strategy.  Round constants
    (user count, demand, horizon, repair downtime, per-copy work) ride
    in ``meta`` and are part of the store's content hash.
    """
    return make_spec(
        name=name,
        axes={"arrival": tuple(arrivals), "fail": tuple(failures),
              "r": tuple(replications), "strategy": tuple(strategies)},
        runner=churnload_cell,
        cluster=cluster_spec or ClusterSpec(kind="small"),
        master_seed=seed,
        meta={"users": users, "n": n, "horizon_s": horizon_s,
              "downtime_s": downtime_s, "work_s": work_s},
    )


def churnload_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the availability sweep through the engine."""
    spec = spec or churnload_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force, shard=shard)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _panel_rows(sweep: SweepResult, strategies: Sequence[str],
                metric: str, arrival: float, r: int) -> Dict[str, List]:
    rows: Dict[str, List] = {}
    for strategy in strategies:
        rows[strategy] = [
            cell.value.get(metric)
            for cell in sweep.select(arrival=arrival, r=r, strategy=strategy)
        ]
    return rows


def churnload_report(sweep: SweepResult) -> str:
    """Availability matrix + replica-survival-by-strategy tables.

    Deterministic byte for byte: no timings, no paths — ``--jobs 1``
    and ``--jobs 2`` runs (and cache replays) render identical text.
    """
    spec = sweep.spec
    axes = dict(spec.axes)
    arrivals = list(axes["arrival"])
    failures = [f"{v:g}" for v in axes["fail"]]
    replications = list(axes["r"])
    strategies = list(axes["strategy"])

    downtime = spec.meta.get("downtime_s")
    downtime_txt = "never" if downtime is None else f"{downtime:g}s"
    parts: List[str] = []
    parts.append("== churn under load: "
                 f"{spec.meta['users']} users, n={spec.meta['n']}, "
                 f"horizon={spec.meta['horizon_s']:g}s, "
                 f"work={spec.meta['work_s']:g}s/copy, "
                 f"downtime={downtime_txt} ==")
    for arrival in arrivals:
        for r in replications:
            parts.append("")
            parts.append(f"-- arrival={arrival:g} jobs/s/user, r={r} --")
            parts.append(format_metric_comparison(
                "avail@fail", failures,
                _panel_rows(sweep, strategies, "availability", arrival, r),
                fmt=".4f"))
            parts.append("")
            parts.append(format_metric_comparison(
                "survival@fail", failures,
                _panel_rows(sweep, strategies, "replica_survival",
                            arrival, r),
                fmt=".4f"))
            parts.append("")
            parts.append(format_metric_comparison(
                "jobs@fail", failures,
                _panel_rows(sweep, strategies, "jobs", arrival, r),
                fmt="g"))
    return "\n".join(parts)


# ----------------------------------------------------------------------
# CLI registration (churnload)
# ----------------------------------------------------------------------
def _cli_spec(args) -> ExperimentSpec:
    from repro.experiments.cliutil import csv_values

    small = args.cluster == "small"
    if args.horizon <= 0:
        raise SystemExit("error: --horizon must be > 0")
    if args.users < 1:
        raise SystemExit("error: --users must be >= 1")
    overrides = {}
    if args.failures is not None:
        overrides["failures"] = csv_values("--failures", args.failures,
                                           float, nonnegative=True)
    return churnload_spec(
        seed=args.seed,
        users=args.users,
        horizon_s=args.horizon,
        # The 28-core smoke grid saturates around n*r=8; the full
        # testbed gets a demand that actually straddles sites.
        n=4 if small else 16,
        cluster_spec=ClusterSpec(kind="small" if small else "grid5000"),
        **overrides,
    )


def _cli_run(args, store) -> None:
    """The sustained-load availability campaign.  Output is the
    deterministic ledger report only (no engine timings), so
    ``--jobs 1`` and ``--jobs 2`` runs diff clean byte for byte.
    """
    from repro.experiments.cliutil import report_sweep

    spec = _cli_spec(args)
    sweep = churnload_sweep(spec=spec, jobs=args.jobs, store=store,
                            force=args.force, shard=args.shard)
    if args.shard:
        report_sweep(sweep, store)
        return
    print(churnload_report(sweep))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="churnload",
        cli_run=_cli_run,
        specs=lambda args: [_cli_spec(args)],
        cli_axes=("cluster", "churn"),
    ))


_register()
