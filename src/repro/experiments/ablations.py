"""Ablation studies on the design choices DESIGN.md calls out.

1. **Latency-measurement noise** (§5.1 / future work): how measurement
   noise degrades the cached-list ranking, quantified with Kendall's
   tau against the true base-RTT order.
2. **EWMA smoothing / sample count**: the paper's future-work item
   "improving the accuracy of our latency measurement".
3. **Overbooking factor** under churn: booking exactly ``n*r`` hosts
   versus overbooking when peers die between booking and launch.
4. **Replication degree**: job survival probability vs. ``r`` under
   i.i.d. host failures.
5. **Block (mixed) strategies**: the spread<->concentrate continuum on
   the application models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.alloc.base import ReservedHost, get_strategy
from repro.alloc.ranks import build_plan
from repro.apps.base import Application, AppEnv
from repro.cluster import DEFAULT_COST_PARAMS, P2PMPICluster, build_grid5000_cluster
from repro.ft.replication import survival_probability
from repro.grid5000.builder import build_topology
from repro.middleware.config import MiddlewareConfig
from repro.middleware.jobs import JobRequest, JobStatus
from repro.net.latency import LatencyModel
from repro.net.topology import Topology

__all__ = ["kendall_tau", "latency_noise_ablation", "smoothing_ablation",
           "overbooking_ablation", "replication_ablation",
           "block_strategy_ablation"]


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall rank correlation between two score vectors (O(n^2)).

    +1 = identical ranking, -1 = reversed.  Ties count as discordant
    half-weight (tau-a over strict pairs); adequate for continuous
    latencies.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("kendall_tau needs two equal-length vectors")
    n = len(a)
    if n < 2:
        return 1.0
    da = np.sign(a[:, None] - a[None, :])
    db = np.sign(b[:, None] - b[None, :])
    upper = np.triu_indices(n, k=1)
    prod = da[upper] * db[upper]
    return float(prod.sum() / prod.size)


@dataclass
class NoisePoint:
    noise_sigma_ms: float
    samples: int
    ewma_alpha: Optional[float]
    tau: float


def _ranking_tau(topology: Topology, noise_sigma_ms: float, samples: int,
                 ewma_alpha: Optional[float], seed: int) -> float:
    """Kendall tau of measured-vs-true RTT ranking from the submitter."""
    rng = np.random.default_rng(seed)
    model = LatencyModel(topology, rng, noise_sigma_ms=noise_sigma_ms)
    src = topology.host("grelon-1.nancy")
    hosts = [h for h in topology.all_hosts() if h.name != src.name]
    true_rtt = [topology.base_rtt_ms(src, h) for h in hosts]
    measured = [
        model.estimate(src, h, samples=samples, ewma_alpha=ewma_alpha).value_ms
        for h in hosts
    ]
    return kendall_tau(true_rtt, measured)


def latency_noise_ablation(
    sigmas_ms: Iterable[float] = (0.0, 0.35, 0.8, 1.2, 2.5, 5.0),
    samples: int = 3,
    seed: int = 0,
) -> List[NoisePoint]:
    """Ranking quality vs. per-probe noise (paper's §5.1 effect)."""
    topology = build_topology()
    return [
        NoisePoint(sigma, samples, None,
                   _ranking_tau(topology, sigma, samples, None, seed))
        for sigma in sigmas_ms
    ]


def smoothing_ablation(
    noise_sigma_ms: float = 1.2,
    sample_counts: Iterable[int] = (1, 3, 10, 30),
    ewma_alpha: Optional[float] = 0.2,
    seed: int = 0,
) -> List[NoisePoint]:
    """More probes / EWMA vs. ranking quality (the future-work fix)."""
    topology = build_topology()
    out = []
    for k in sample_counts:
        out.append(NoisePoint(noise_sigma_ms, k, None,
                              _ranking_tau(topology, noise_sigma_ms, k, None, seed)))
        out.append(NoisePoint(noise_sigma_ms, k, ewma_alpha,
                              _ranking_tau(topology, noise_sigma_ms, k,
                                           ewma_alpha, seed)))
    return out


@dataclass
class OverbookPoint:
    overbook_factor: float
    killed_hosts: int
    status: str
    dead_detected: int
    allocated: int


def overbooking_ablation(
    factors: Iterable[float] = (1.0, 1.1, 1.2, 1.5),
    n: int = 120,
    kill_count: int = 12,
    seed: int = 3,
) -> List[OverbookPoint]:
    """Book exactly vs. overbook while ``kill_count`` booked peers die.

    Hosts are killed *after boot, before submission*, so their silent
    RESERVE timeouts are what the overbooking margin must absorb.
    """
    out = []
    for factor in factors:
        config = MiddlewareConfig(overbook_factor=factor, overbook_extra=0,
                                  rs_timeout_s=1.0)
        cluster = build_grid5000_cluster(seed=seed, config=config)
        victims = [h for h in sorted(cluster.mpds) if h.startswith("grelon")
                   and h != cluster.default_submitter][:kill_count]
        cluster.kill_hosts(victims)
        result = cluster.submit_and_run(JobRequest(n=n, strategy="spread"))
        out.append(OverbookPoint(
            overbook_factor=factor,
            killed_hosts=len(victims),
            status=result.status.value,
            dead_detected=len(result.dead_peers),
            allocated=(result.plan.total_processes if result.plan else 0),
        ))
    return out


@dataclass
class ReplicationPoint:
    r: int
    p_host_fail: float
    survival: float


def replication_ablation(
    replication_degrees: Iterable[int] = (1, 2, 3),
    p_host_fail: float = 0.05,
    n: int = 60,
    seed: int = 1,
    trials: int = 4000,
) -> List[ReplicationPoint]:
    """Survival probability vs. replication degree (§3.2 rationale)."""
    cluster = build_grid5000_cluster(seed=seed)
    out = []
    rng = np.random.default_rng(seed)
    for r in replication_degrees:
        result = cluster.submit_and_run(JobRequest(n=n, r=r, strategy="spread"))
        if result.status is not JobStatus.SUCCESS:
            raise RuntimeError(result.summary())
        out.append(ReplicationPoint(
            r=r,
            p_host_fail=p_host_fail,
            survival=survival_probability(result.allocation, p_host_fail,
                                          rng, trials=trials),
        ))
    return out


@dataclass
class BlockPoint:
    block: int
    app: str
    n: int
    time_s: float


def block_strategy_ablation(
    app: Application,
    n: int = 64,
    blocks: Iterable[int] = (1, 2, 4),
    seed: int = 0,
) -> List[BlockPoint]:
    """The mixed-strategy continuum: block=1 is spread, block>=max(P)
    behaves like concentrate; intermediate blocks trade contention for
    locality on the application models."""
    cluster = build_grid5000_cluster(seed=seed)
    out = []
    for block in blocks:
        result = cluster.submit_and_run(JobRequest(
            n=n, strategy="block", strategy_kwargs={"block": block}, app=app,
        ))
        if result.status is not JobStatus.SUCCESS:
            raise RuntimeError(result.summary())
        out.append(BlockPoint(block=block, app=app.name, n=n,
                              time_s=result.timings.makespan_s))
    return out
