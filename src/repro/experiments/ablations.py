"""Ablation studies on the design choices DESIGN.md calls out.

1. **Latency-measurement noise** (§5.1 / future work): how measurement
   noise degrades the cached-list ranking, quantified with Kendall's
   tau against the true base-RTT order.
2. **EWMA smoothing / sample count**: the paper's future-work item
   "improving the accuracy of our latency measurement".
3. **Overbooking factor** under churn: booking exactly ``n*r`` hosts
   versus overbooking when peers die between booking and launch.
4. **Replication degree**: job survival probability vs. ``r`` under
   i.i.d. host failures.
5. **Block (mixed) strategies**: the spread<->concentrate continuum on
   the application models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.apps.base import Application
from repro.experiments.engine import (CellContext, derive_cell_seed,
                                      make_spec, run_sweep)
from repro.ft.replication import survival_probability
from repro.grid5000.builder import build_topology
from repro.middleware.config import MiddlewareConfig
from repro.middleware.jobs import JobRequest, JobStatus
from repro.net.latency import LatencyModel
from repro.net.topology import Topology

__all__ = ["kendall_tau", "latency_noise_ablation", "smoothing_ablation",
           "overbooking_ablation", "replication_ablation",
           "block_strategy_ablation", "noise_cell", "smoothing_cell",
           "overbooking_cell", "replication_cell", "block_cell"]


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall rank correlation between two score vectors (O(n^2)).

    +1 = identical ranking, -1 = reversed.  Ties count as discordant
    half-weight (tau-a over strict pairs); adequate for continuous
    latencies.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("kendall_tau needs two equal-length vectors")
    n = len(a)
    if n < 2:
        return 1.0
    da = np.sign(a[:, None] - a[None, :])
    db = np.sign(b[:, None] - b[None, :])
    upper = np.triu_indices(n, k=1)
    prod = da[upper] * db[upper]
    return float(prod.sum() / prod.size)


@dataclass
class NoisePoint:
    noise_sigma_ms: float
    samples: int
    ewma_alpha: Optional[float]
    tau: float


def _ranking_tau(topology: Topology, noise_sigma_ms: float, samples: int,
                 ewma_alpha: Optional[float], seed: int) -> float:
    """Kendall tau of measured-vs-true RTT ranking from the submitter."""
    rng = np.random.default_rng(seed)
    model = LatencyModel(topology, rng, noise_sigma_ms=noise_sigma_ms)
    src = topology.host("grelon-1.nancy")
    hosts = [h for h in topology.all_hosts() if h.name != src.name]
    true_rtt = [topology.base_rtt_ms(src, h) for h in hosts]
    measured = [
        model.estimate(src, h, samples=samples, ewma_alpha=ewma_alpha).value_ms
        for h in hosts
    ]
    return kendall_tau(true_rtt, measured)


def noise_cell(ctx: CellContext) -> dict:
    """Engine cell: ranking tau at one noise level (no cluster needed)."""
    tau = _ranking_tau(build_topology(), ctx.params["sigma_ms"],
                       ctx.meta["samples"], None, ctx.seed)
    return {"tau": tau}


def latency_noise_ablation(
    sigmas_ms: Iterable[float] = (0.0, 0.35, 0.8, 1.2, 2.5, 5.0),
    samples: int = 3,
    seed: int = 0,
    jobs: int = 1,
    store=None,
    force: bool = False,
) -> List[NoisePoint]:
    """Ranking quality vs. per-probe noise (paper's §5.1 effect)."""
    spec = make_spec("ablation-noise", {"sigma_ms": tuple(sigmas_ms)},
                     noise_cell, master_seed=seed, fixed_seed=True,
                     meta={"samples": samples})
    sweep = run_sweep(spec, jobs=jobs, store=store, force=force)
    return [
        NoisePoint(cell.params["sigma_ms"], samples, None, cell.value["tau"])
        for cell in sweep.cells
    ]


def smoothing_cell(ctx: CellContext) -> dict:
    """Engine cell: ranking tau for one (sample count, smoothing)."""
    tau = _ranking_tau(build_topology(), ctx.meta["noise_sigma_ms"],
                       ctx.params["samples"], ctx.params["ewma_alpha"],
                       ctx.seed)
    return {"tau": tau}


def smoothing_ablation(
    noise_sigma_ms: float = 1.2,
    sample_counts: Iterable[int] = (1, 3, 10, 30),
    ewma_alpha: Optional[float] = 0.2,
    seed: int = 0,
    jobs: int = 1,
) -> List[NoisePoint]:
    """More probes / EWMA vs. ranking quality (the future-work fix)."""
    spec = make_spec(
        "ablation-smoothing",
        {"samples": tuple(sample_counts), "ewma_alpha": (None, ewma_alpha)},
        smoothing_cell, master_seed=seed, fixed_seed=True,
        meta={"noise_sigma_ms": noise_sigma_ms})
    sweep = run_sweep(spec, jobs=jobs)
    return [
        NoisePoint(noise_sigma_ms, cell.params["samples"],
                   cell.params["ewma_alpha"], cell.value["tau"])
        for cell in sweep.cells
    ]


@dataclass
class OverbookPoint:
    overbook_factor: float
    killed_hosts: int
    status: str
    dead_detected: int
    allocated: int


def overbooking_cell(ctx: CellContext) -> dict:
    """Engine cell: one overbooking factor against freshly-dead peers.

    Builds its own cluster (the middleware config varies per cell), so
    it bypasses ``ctx.cluster`` and derives from ``cluster_spec``.
    """
    factor = ctx.params["factor"]
    config = MiddlewareConfig(overbook_factor=factor, overbook_extra=0,
                              rs_timeout_s=1.0)
    cluster = ctx.cluster_spec.with_config(config).build(seed=ctx.seed)
    victims = [h for h in sorted(cluster.mpds)
               if h.startswith(ctx.meta["victim_prefix"])
               and h != cluster.default_submitter][:ctx.meta["kill_count"]]
    cluster.kill_hosts(victims)
    result = cluster.submit_and_run(
        JobRequest(n=ctx.meta["n"], strategy="spread"))
    return {
        "killed_hosts": len(victims),
        "status": result.status.value,
        "dead_detected": len(result.dead_peers),
        "allocated": (result.plan.total_processes if result.plan else 0),
    }


def overbooking_ablation(
    factors: Iterable[float] = (1.0, 1.1, 1.2, 1.5),
    n: int = 120,
    kill_count: int = 12,
    seed: int = 3,
    jobs: int = 1,
) -> List[OverbookPoint]:
    """Book exactly vs. overbook while ``kill_count`` booked peers die.

    Hosts are killed *after boot, before submission*, so their silent
    RESERVE timeouts are what the overbooking margin must absorb.
    """
    spec = make_spec(
        "ablation-overbooking", {"factor": tuple(factors)},
        overbooking_cell, master_seed=seed, fixed_seed=True,
        meta={"n": n, "kill_count": kill_count, "victim_prefix": "grelon"})
    sweep = run_sweep(spec, jobs=jobs)
    return [
        OverbookPoint(
            overbook_factor=cell.params["factor"],
            killed_hosts=cell.value["killed_hosts"],
            status=cell.value["status"],
            dead_detected=cell.value["dead_detected"],
            allocated=cell.value["allocated"],
        )
        for cell in sweep.cells
    ]


@dataclass
class ReplicationPoint:
    r: int
    p_host_fail: float
    survival: float


def replication_cell(ctx: CellContext) -> dict:
    """Engine cell: survival at one replication degree.

    Runs on the sweep's shared cluster (the legacy sequence of
    submissions); the Monte-Carlo stream is derived per cell so the
    estimate is independent of execution order.
    """
    r = ctx.params["r"]
    result = ctx.cluster.submit_and_run(
        JobRequest(n=ctx.meta["n"], r=r, strategy="spread"))
    if result.status is not JobStatus.SUCCESS:
        raise RuntimeError(result.summary())
    rng = np.random.default_rng(
        derive_cell_seed(ctx.seed, f"replication-survival:r={r}"))
    survival = survival_probability(result.allocation,
                                    ctx.meta["p_host_fail"], rng,
                                    trials=ctx.meta["trials"])
    return {"survival": survival}


def replication_ablation(
    replication_degrees: Iterable[int] = (1, 2, 3),
    p_host_fail: float = 0.05,
    n: int = 60,
    seed: int = 1,
    trials: int = 4000,
    store=None,
    force: bool = False,
) -> List[ReplicationPoint]:
    """Survival probability vs. replication degree (§3.2 rationale)."""
    spec = make_spec(
        "ablation-replication", {"r": tuple(replication_degrees)},
        replication_cell, master_seed=seed, fixed_seed=True,
        shared_cluster=True,
        meta={"n": n, "p_host_fail": p_host_fail, "trials": trials})
    sweep = run_sweep(spec, store=store, force=force)
    return [
        ReplicationPoint(r=cell.params["r"], p_host_fail=p_host_fail,
                         survival=cell.value["survival"])
        for cell in sweep.cells
    ]


@dataclass
class BlockPoint:
    block: int
    app: str
    n: int
    time_s: float


def block_cell(ctx: CellContext) -> dict:
    """Engine cell: one block size of the mixed-strategy continuum."""
    app: Application = ctx.meta["app"]
    result = ctx.cluster.submit_and_run(JobRequest(
        n=ctx.meta["n"], strategy="block",
        strategy_kwargs={"block": ctx.params["block"]}, app=app,
    ))
    if result.status is not JobStatus.SUCCESS:
        raise RuntimeError(result.summary())
    return {"app": app.name, "time_s": result.timings.makespan_s}


def block_strategy_ablation(
    app: Application,
    n: int = 64,
    blocks: Iterable[int] = (1, 2, 4),
    seed: int = 0,
) -> List[BlockPoint]:
    """The mixed-strategy continuum: block=1 is spread, block>=max(P)
    behaves like concentrate; intermediate blocks trade contention for
    locality on the application models."""
    spec = make_spec(
        "ablation-block", {"block": tuple(blocks)},
        block_cell, master_seed=seed, fixed_seed=True, shared_cluster=True,
        meta={"app": app, "n": n})
    sweep = run_sweep(spec)
    return [
        BlockPoint(block=cell.params["block"], app=cell.value["app"], n=n,
                   time_s=cell.value["time_s"])
        for cell in sweep.cells
    ]


# ----------------------------------------------------------------------
# CLI registration (ablations)
# ----------------------------------------------------------------------
def _cli_run(args, store) -> None:
    print("Latency noise vs ranking quality (Kendall tau):")
    for p in latency_noise_ablation(seed=args.seed, jobs=args.jobs,
                                    store=store, force=args.force):
        print(f"  sigma={p.noise_sigma_ms:5.2f} ms  tau={p.tau:.4f}")
    print("\nReplication degree vs survival (5% host failures):")
    for p in replication_ablation(seed=args.seed or 1, store=store,
                                  force=args.force):
        print(f"  r={p.r}  P(survive)={p.survival:.4f}")


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="ablations",
        cli_run=_cli_run,
        shardable=False,
    ))


_register()
