"""The campaign orchestrator: a whole experiment grid, end to end.

PR 4 built the distribution *primitives* — ``--shard K/N`` slices any
sweep grid deterministically, workers checkpoint into ``.partial``
stores, and :mod:`repro.experiments.aggregate` reassembles shard
outputs byte-exactly — but a human still glued them together: launch N
shells, watch them, relaunch the one that died, run ``merge`` at the
end.  The Grid'5000 platform lesson the paper's campaign rode on is
that large campaigns only finish when dispatch, failure recovery and
result collection are automated.  This module is that automation
(DESIGN.md §12), behind ``p2pmpirun orchestrate``:

* **shard planning** — the target experiment's registered spec builder
  (:mod:`repro.experiments.registry`) yields the campaign's grids; the
  orchestrator partitions them into ``--shards`` round-robin slices
  and knows every cell key each shard owes.
* **dispatch** — a pool of at most ``--workers`` concurrent shard
  workers, launched through a pluggable :class:`ExecutionStrategy`.
  The default :class:`LocalProcessStrategy` spawns ``python -m
  repro.cli run <exp> --shard k/n`` subprocesses; a remote strategy
  (SSH, a batch queue) only has to implement launch/poll/terminate.
* **progress tracking** — workers run with ``REPRO_CHECKPOINT_EVERY=1``
  and a per-shard heartbeat file (:class:`repro.experiments.engine.
  Heartbeat`); the orchestrator tails heartbeat mtimes, so a *slow*
  shard (still beating) is distinguished from a *stalled* one (no
  beat for ``--stall-timeout`` seconds), which is terminated and
  treated as crashed.
* **retry handling** — a crashed, stalled or incomplete shard is
  relaunched against a fresh worker with exponential backoff, up to
  ``--retries`` times; the shard's checkpoint survives in its scratch
  store, so a retry resumes instead of recomputing.  An exhausted
  budget turns into a per-shard failure report, never a hang.
* **continuous merge** — each shard that lands is immediately folded
  into the campaign store (:func:`repro.experiments.aggregate.
  merge_into`); the merge that completes a grid promotes the canonical
  file, byte-identical to an unsharded ``--jobs 1`` run.
* **cleanup** — on success the shard scratch directories (and the
  promoted stores' ``.partial`` leftovers) are removed; ``--keep-
  partial`` keeps them for inspection.

Failure injection for tests and CI (``--inject-kill N``) rides the
same heartbeat channel: the first shard's first worker kills itself —
``os._exit(137)``, no flush, exactly a SIGKILL — after N cells, and
the campaign must still converge to the byte-identical canonical
store.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from repro.experiments.aggregate import MergeConflictError, merge_into
from repro.experiments.engine import ExperimentSpec, ResultStore

__all__ = ["ExecutionStrategy", "LocalProcessStrategy",
           "OrchestrationReport", "Orchestrator", "ShardState",
           "WorkerTask", "worker_flags"]


def worker_flags(experiment: str, args: Any) -> Tuple[str, ...]:
    """The sweep-shape flags a shard worker needs to rebuild the grid.

    Forwarding is driven by the experiment's registered ``cli_axes``:
    a worker must see exactly the flags that shaped the orchestrator's
    specs — same demands, same cluster, same seed — or it would compute
    cells of a different content hash and the merge would refuse them.
    """
    from repro.experiments import registry

    axes = registry.get(experiment).cli_axes
    flags: List[str] = ["--seed", str(args.seed)]
    if "cluster" in axes:
        flags += ["--cluster", args.cluster]
    if "demands" in axes and args.demands is not None:
        flags += ["--demands", args.demands]
    if "ratios" in axes and getattr(args, "ratios", None) is not None:
        flags += ["--ratios", args.ratios]
    if "churn" in axes:
        flags += ["--users", str(args.users),
                  "--horizon", str(args.horizon)]
        if args.failures is not None:
            flags += ["--failures", args.failures]
    if "nas_class" in axes:
        flags += ["--class", args.nas_class]
    if "controlplane" in axes:
        if getattr(args, "tenants", None) is not None:
            flags += ["--tenants", args.tenants]
        if getattr(args, "rates", None) is not None:
            flags += ["--rates", args.rates]
    if "alloc" in axes:
        flags += ["--alloc", args.alloc]
    if "topozoo" in axes:
        if getattr(args, "family", None) is not None:
            flags += ["--family", args.family]
        if getattr(args, "sites", None) is not None:
            flags += ["--sites", args.sites]
    if "migration" in axes:
        if getattr(args, "modes", None) is not None:
            flags += ["--modes", args.modes]
    return tuple(flags)


@dataclass(frozen=True)
class WorkerTask:
    """Everything an :class:`ExecutionStrategy` needs to run one shard
    attempt."""

    experiment: str
    shard: Tuple[int, int]
    scratch: Path
    heartbeat: Path
    log: Path
    flags: Tuple[str, ...] = ()
    #: chaos injection: the worker self-kills after this many cells.
    kill_after_cells: Optional[int] = None
    #: per-cell checkpointing, so a killed worker loses at most one cell.
    checkpoint_every: int = 1


class ExecutionStrategy:
    """Where shard workers actually run.

    The orchestrator only ever calls these three methods, so remote
    dispatch (SSH, OAR/Slurm submission — the Grid'5000 shape) slots in
    by implementing them; everything above (progress, retries, merging)
    is transport-agnostic.
    """

    def launch(self, task: WorkerTask) -> Any:
        """Start a worker for ``task``; returns an opaque handle."""
        raise NotImplementedError

    def poll(self, handle: Any) -> Optional[int]:
        """Exit code if the worker finished, ``None`` while running."""
        raise NotImplementedError

    def terminate(self, handle: Any) -> None:
        """Hard-stop a worker (stall recovery); must not raise if the
        worker already died."""
        raise NotImplementedError


class LocalProcessStrategy(ExecutionStrategy):
    """Shard workers as local ``python -m repro.cli run`` subprocesses.

    Each worker writes its cells into the task's private scratch store
    (``--out``), beacons through ``REPRO_HEARTBEAT_FILE`` and flushes
    its checkpoint every ``REPRO_CHECKPOINT_EVERY`` cells; stdout and
    stderr append to the task's log file, which the failure report
    points at.
    """

    def launch(self, task: WorkerTask) -> subprocess.Popen:
        index, count = task.shard
        argv = [sys.executable, "-m", "repro.cli", "run", task.experiment,
                "--shard", f"{index}/{count}", "--out", str(task.scratch),
                "--jobs", "1", *task.flags]
        env = dict(os.environ)
        # The worker must resolve the same repro tree as the
        # orchestrator, wherever the CWD is.
        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
        env["REPRO_HEARTBEAT_FILE"] = str(task.heartbeat)
        env["REPRO_CHECKPOINT_EVERY"] = str(task.checkpoint_every)
        if task.kill_after_cells is not None:
            env["REPRO_KILL_AFTER_CELLS"] = str(task.kill_after_cells)
        else:
            env.pop("REPRO_KILL_AFTER_CELLS", None)
        task.log.parent.mkdir(parents=True, exist_ok=True)
        with task.log.open("ab") as log:
            return subprocess.Popen(argv, stdout=log, stderr=log, env=env)

    def poll(self, handle: subprocess.Popen) -> Optional[int]:
        return handle.poll()

    def terminate(self, handle: subprocess.Popen) -> None:
        try:
            handle.kill()
            handle.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            pass


@dataclass
class ShardState:
    """The orchestrator's book-keeping for one shard of the campaign."""

    index: int
    shard: Tuple[int, int]
    scratch: Path
    heartbeat: Path
    #: per spec, the cell keys this shard owes (specs fully cached in
    #: the campaign store are excluded up front).
    expected: List[Tuple[ExperimentSpec, Set[str]]] = field(
        default_factory=list)
    status: str = "pending"  # pending | running | done | failed
    attempts: int = 0
    handle: Any = None
    launched_at: float = 0.0
    not_before: float = 0.0
    failure: Optional[str] = None
    logs: List[Path] = field(default_factory=list)
    last_done: int = -1

    @property
    def cell_count(self) -> int:
        return sum(len(keys) for _, keys in self.expected)


@dataclass
class OrchestrationReport:
    """What :meth:`Orchestrator.run` returns (and renders)."""

    experiment: str
    shards: int
    total_cells: int
    completed_shards: int = 0
    retries: int = 0
    #: shard index -> failure reason, for shards whose budget ran out.
    failed: Dict[int, str] = field(default_factory=dict)
    canonical: List[Path] = field(default_factory=list)
    ok: bool = False


class Orchestrator:
    """Owns one campaign: dispatch, progress, retries, merge, cleanup.

    Parameters
    ----------
    experiment:
        Registered experiment name (must be shardable).
    specs:
        The campaign's sweep grids for the CLI flags in force — the
        registry's spec builder output.  Shard planning, completion
        accounting and canonical promotion all derive from these.
    out:
        The campaign store root; also hosts the ``.orchestrate/``
        scratch tree while the campaign runs.
    worker_flags:
        Extra CLI flags every worker gets (see :func:`worker_flags`).
    workers:
        Maximum concurrently running shard workers.
    shards:
        Grid partitions (defaults to ``workers``): more shards than
        workers queue and backfill as workers free up.
    retries:
        Relaunch budget per shard beyond the first attempt.
    stall_timeout_s:
        A running worker whose heartbeat has not beaten for this long
        is terminated and counted as crashed.
    backoff_base_s / backoff_cap_s:
        Exponential relaunch backoff: ``base * 2**(attempt-1)`` capped.
    keep_partial:
        Keep scratch dirs and ``.partial`` files after success.
    inject_kill_cells:
        Chaos hook: the first shard's first attempt self-kills after
        this many cells (CI's crash-recovery smoke).
    strategy:
        Execution transport; default :class:`LocalProcessStrategy`.
    echo:
        Progress sink (``print``); tests capture it.
    """

    def __init__(self, experiment: str, specs: Sequence[ExperimentSpec],
                 out: os.PathLike, *,
                 worker_flags: Sequence[str] = (),
                 workers: int = 2,
                 shards: Optional[int] = None,
                 retries: int = 2,
                 stall_timeout_s: float = 300.0,
                 poll_interval_s: float = 0.5,
                 backoff_base_s: float = 0.5,
                 backoff_cap_s: float = 30.0,
                 keep_partial: bool = False,
                 inject_kill_cells: Optional[int] = None,
                 strategy: Optional[ExecutionStrategy] = None,
                 echo: Callable[[str], None] = print) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shards is None:
            shards = workers
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if not specs:
            raise ValueError(f"experiment {experiment!r} has no sweeps "
                             "to orchestrate")
        self.experiment = experiment
        self.specs = list(specs)
        self.out = Path(out)
        self.store = ResultStore(self.out)
        self.worker_flags = tuple(worker_flags)
        self.workers = workers
        self.shards = shards
        self.retries = retries
        self.stall_timeout_s = stall_timeout_s
        self.poll_interval_s = poll_interval_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.keep_partial = keep_partial
        self.inject_kill_cells = inject_kill_cells
        self.strategy = strategy or LocalProcessStrategy()
        self.echo = echo
        self.scratch_root = self.out / ".orchestrate"

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _cached_keys(self, spec: ExperimentSpec) -> Set[str]:
        """Cell keys the campaign store already holds for ``spec``."""
        return set(self.store.load(spec)) | set(self.store.load_partial(spec))

    def _plan(self) -> List[ShardState]:
        """Shard states with per-spec owed keys, minus cached cells."""
        cached = {id(spec): self._cached_keys(spec) for spec in self.specs}
        states = []
        for k in range(1, self.shards + 1):
            scratch = self.scratch_root / f"shard-{k}"
            st = ShardState(index=k, shard=(k, self.shards),
                            scratch=scratch,
                            heartbeat=scratch / "heartbeat.json")
            for spec in self.specs:
                keys = {c.key for c in spec.shard_cells((k, self.shards))}
                keys -= cached[id(spec)]
                if keys:
                    st.expected.append((spec, keys))
            if not st.expected:
                st.status = "done"
            states.append(st)
        return states

    def _seed_scratch(self, st: ShardState) -> None:
        """Copy the campaign store's files into the shard's scratch.

        A retried attempt resumes from the scratch checkpoint its
        predecessor flushed; a *fresh* campaign resume (orchestrate
        re-run over a half-done ``--out``) starts workers against the
        cells already landed, so they skip them instead of recomputing.
        """
        scratch_store = ResultStore(st.scratch)
        for spec, _keys in st.expected:
            pairs = (
                (self.store.path_for(spec), scratch_store.path_for(spec)),
                (self.store.partial_path_for(spec),
                 scratch_store.partial_path_for(spec)),
            )
            for src, dst in pairs:
                if src.exists() and not dst.exists():
                    dst.parent.mkdir(parents=True, exist_ok=True)
                    shutil.copyfile(src, dst)

    # ------------------------------------------------------------------
    # per-shard lifecycle
    # ------------------------------------------------------------------
    def _launch(self, st: ShardState, kill_shard: Optional[int]) -> None:
        st.attempts += 1
        st.scratch.mkdir(parents=True, exist_ok=True)
        self._seed_scratch(st)
        inject = (self.inject_kill_cells
                  if (st.index == kill_shard and st.attempts == 1)
                  else None)
        log = st.scratch / f"worker-{st.index}.{st.attempts}.log"
        st.logs.append(log)
        task = WorkerTask(experiment=self.experiment, shard=st.shard,
                          scratch=st.scratch, heartbeat=st.heartbeat,
                          log=log, flags=self.worker_flags,
                          kill_after_cells=inject)
        st.handle = self.strategy.launch(task)
        st.launched_at = time.monotonic()
        st.status = "running"
        note = " [kill injected]" if inject is not None else ""
        self.echo(f"[orchestrate] shard {st.index}/{self.shards}: "
                  f"attempt {st.attempts} launched "
                  f"({st.cell_count} cells){note}")

    def _heartbeat_age(self, st: ShardState) -> float:
        """Seconds since the worker last proved liveness."""
        try:
            beat = st.heartbeat.stat().st_mtime
        except OSError:
            return time.monotonic() - st.launched_at
        # mtime is wall-clock; take the smaller of "since launch" and
        # "since last beat" so clock skew can only make us patient.
        return min(time.monotonic() - st.launched_at,
                   max(0.0, time.time() - beat))

    def _shard_complete(self, st: ShardState) -> bool:
        """Did the scratch store land every cell this shard owes?"""
        scratch_store = ResultStore(st.scratch)
        for spec, keys in st.expected:
            have = (set(scratch_store.load_partial(spec))
                    | set(scratch_store.load(spec)))
            if not keys <= have:
                return False
        return True

    def _merge_shard(self, st: ShardState) -> None:
        """Fold the landed shard into the campaign store right away."""
        scratch_store = ResultStore(st.scratch)
        for spec, _keys in st.expected:
            partial = scratch_store.partial_path_for(spec)
            if not partial.exists():
                continue  # every owed cell was served from seeded cache
            merged, path = merge_into(self.out, [partial])
            if merged.hash != spec.content_hash():
                raise MergeConflictError(
                    f"shard {st.index} wrote hash {merged.hash[:12]} for "
                    f"spec {spec.name} [{spec.content_hash()[:12]}]")
            state = ("canonical" if merged.complete
                     else f"{len(merged.missing_indices)} cell(s) missing")
            self.echo(f"[orchestrate] merged shard {st.index}: "
                      f"{path.name} ({state})")

    def _fail_attempt(self, st: ShardState, reason: str) -> int:
        """Retry with backoff, or exhaust into a failure; returns the
        number of retries this consumed (0 or 1)."""
        if st.attempts > self.retries:
            st.status = "failed"
            log = st.logs[-1] if st.logs else None
            st.failure = reason + (f" (log: {log})" if log else "")
            self.echo(f"[orchestrate] shard {st.index}/{self.shards}: "
                      f"FAILED after {st.attempts} attempt(s): {reason}")
            return 0
        delay = min(self.backoff_base_s * (2 ** (st.attempts - 1)),
                    self.backoff_cap_s)
        st.status = "pending"
        st.not_before = time.monotonic() + delay
        self.echo(f"[orchestrate] shard {st.index}/{self.shards}: "
                  f"{reason}; retrying in {delay:.1f} s "
                  f"(attempt {st.attempts}/{self.retries + 1} used)")
        return 1

    def _poll_shard(self, st: ShardState, report: OrchestrationReport) -> None:
        rc = self.strategy.poll(st.handle)
        if rc is None:
            if self._heartbeat_age(st) > self.stall_timeout_s:
                self.strategy.terminate(st.handle)
                report.retries += self._fail_attempt(
                    st, f"stalled (no heartbeat for "
                        f"{self.stall_timeout_s:g} s); worker terminated")
            else:
                self._echo_progress(st)
            return
        st.handle = None
        if rc == 0 and self._shard_complete(st):
            try:
                self._merge_shard(st)
            except MergeConflictError as exc:
                # A conflict is data divergence, not a flaky worker:
                # retrying the same shard would re-refuse.  Surface it.
                st.status = "failed"
                st.failure = f"merge conflict: {exc}"
                self.echo(f"[orchestrate] shard {st.index}/{self.shards}: "
                          f"FAILED: {st.failure}")
                return
            st.status = "done"
            report.completed_shards += 1
            self.echo(f"[orchestrate] shard {st.index}/{self.shards}: "
                      f"complete ({st.cell_count} cells)")
            return
        reason = (f"worker exited {rc}" if rc != 0
                  else "worker exited 0 with an incomplete shard")
        report.retries += self._fail_attempt(st, reason)

    def _echo_progress(self, st: ShardState) -> None:
        """One line per newly-executed cell count (tailed heartbeat)."""
        try:
            import json

            done = json.loads(st.heartbeat.read_text())["done"]
        except (OSError, ValueError, KeyError):
            return
        if done != st.last_done:
            st.last_done = done
            self.echo(f"[orchestrate] shard {st.index}/{self.shards}: "
                      f"{done} cell(s) executed "
                      f"(attempt {st.attempts})")

    def _tick_sleep(self, states: List[ShardState]) -> float:
        """Sleep budget for one poll tick.

        The poll interval is a *ceiling*, not a fixed cadence: a
        pending shard whose retry-backoff deadline (``not_before``)
        expires sooner gets the loop woken at that deadline, so a short
        backoff is never stretched to the poll interval — and,
        symmetrically, one shard's long backoff never delays polling
        (and thus stall detection) for the shards still running,
        because the ceiling still applies.
        """
        wake = time.monotonic() + self.poll_interval_s
        for st in states:
            if st.status == "pending" and st.not_before < wake:
                wake = st.not_before
        return max(0.0, min(self.poll_interval_s,
                            wake - time.monotonic()))

    # ------------------------------------------------------------------
    # the campaign
    # ------------------------------------------------------------------
    def run(self) -> OrchestrationReport:
        total = sum(spec.cell_count() for spec in self.specs)
        report = OrchestrationReport(experiment=self.experiment,
                                     shards=self.shards, total_cells=total)
        states = self._plan()
        kill_shard = self._kill_shard(states)
        pre_done = sum(1 for st in states if st.status == "done")
        if pre_done:
            report.completed_shards += pre_done
        owed = sum(st.cell_count for st in states)
        self.echo(f"[orchestrate] {self.experiment}: {total} cells over "
                  f"{len(self.specs)} sweep(s), {self.shards} shard(s), "
                  f"{self.workers} worker(s); {total - owed} cell(s) "
                  f"already in {self.out}")

        while True:
            now = time.monotonic()
            running = [st for st in states if st.status == "running"]
            for st in states:
                if (st.status == "pending" and len(running) < self.workers
                        and now >= st.not_before):
                    self._launch(st, kill_shard)
                    running.append(st)
            for st in list(running):
                self._poll_shard(st, report)
            if all(st.status in ("done", "failed") for st in states):
                break
            time.sleep(self._tick_sleep(states))

        report.failed = {st.index: st.failure or "unknown failure"
                         for st in states if st.status == "failed"}
        report.canonical = [self.store.path_for(spec)
                            for spec in self.specs]
        missing = [p for p in report.canonical if not p.exists()]
        report.ok = not report.failed and not missing
        self._render_outcome(report, missing)
        if report.ok and not self.keep_partial:
            self._cleanup()
        return report

    def _kill_shard(self, states: List[ShardState]) -> Optional[int]:
        """The injection target: the first shard that owes any cells."""
        if self.inject_kill_cells is None:
            return None
        for st in sorted(states, key=lambda s: s.index):
            if st.cell_count:
                return st.index
        return None

    def _render_outcome(self, report: OrchestrationReport,
                        missing: List[Path]) -> None:
        if report.ok:
            self.echo(f"[orchestrate] campaign complete: "
                      f"{report.total_cells} cells, "
                      f"{report.completed_shards}/{report.shards} shards, "
                      f"retries: {report.retries}")
            for path in report.canonical:
                self.echo(f"[orchestrate]   canonical: {path}")
            return
        self.echo(f"[orchestrate] campaign FAILED "
                  f"({len(report.failed)} shard(s) failed, "
                  f"retries: {report.retries})")
        for index in sorted(report.failed):
            self.echo(f"[orchestrate]   shard {index}: "
                      f"{report.failed[index]}")
        for path in missing:
            self.echo(f"[orchestrate]   incomplete store: {path.name}")

    def _cleanup(self) -> None:
        """Success-path cleanup: scratch tree + promoted ``.partial``s."""
        removed = 0
        for spec in self.specs:
            partial = self.store.partial_path_for(spec)
            if partial.exists():
                partial.unlink()
                removed += 1
        if self.scratch_root.exists():
            shutil.rmtree(self.scratch_root, ignore_errors=True)
        note = f" and {removed} stale .partial file(s)" if removed else ""
        self.echo(f"[orchestrate] cleaned up {self.scratch_root}{note}")
