"""Figures 2 and 3: where processes land, per strategy.

"The experiment consists in running the hostname program, requesting
from 100 to 600 processes by steps of 50."  For each (strategy, n) we
submit through the full middleware stack and record allocated hosts and
cores per site — the two panels of each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec, P2PMPICluster
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult,
                                      demand_cost_key, make_spec, run_sweep)
from repro.middleware.jobs import JobRequest, JobStatus

__all__ = ["PAPER_DEMANDS", "CoallocationPoint", "CoallocationSeries",
           "coallocation_cell", "coallocation_spec", "coallocation_sweep",
           "series_from_sweep", "run_coallocation_experiment"]

#: The paper's x axis: 100..600 step 50.
PAPER_DEMANDS: Tuple[int, ...] = tuple(range(100, 601, 50))


@dataclass
class CoallocationPoint:
    """One (strategy, n) submission's outcome."""

    strategy: str
    n: int
    status: str
    hosts_by_site: Dict[str, int]
    cores_by_site: Dict[str, int]
    reservation_s: float
    total_hosts: int
    total_cores: int

    def hosts(self, site: str) -> int:
        return self.hosts_by_site.get(site, 0)

    def cores(self, site: str) -> int:
        return self.cores_by_site.get(site, 0)

    @property
    def sites_used(self) -> List[str]:
        return sorted(s for s, c in self.cores_by_site.items() if c > 0)


@dataclass
class CoallocationSeries:
    """All points of one strategy's sweep (one paper figure)."""

    strategy: str
    demands: List[int] = field(default_factory=list)
    points: List[CoallocationPoint] = field(default_factory=list)

    def point(self, n: int) -> CoallocationPoint:
        for pt in self.points:
            if pt.n == n:
                return pt
        raise KeyError(f"no point for n={n}")

    def hosts_series(self, site: str) -> List[int]:
        """Figure left panel: allocated hosts at ``site`` vs demand."""
        return [pt.hosts(site) for pt in self.points]

    def cores_series(self, site: str) -> List[int]:
        """Figure right panel: allocated cores at ``site`` vs demand."""
        return [pt.cores(site) for pt in self.points]

    # -- §5.1 narrative checks -------------------------------------------------
    def only_site_until(self, site: str) -> int:
        """Largest demand served exclusively by ``site`` (0 if none)."""
        best = 0
        for pt in self.points:
            if pt.sites_used == [site]:
                best = max(best, pt.n)
        return best

    def first_demand_using(self, site: str) -> Optional[int]:
        for pt in self.points:
            if pt.hosts(site) > 0:
                return pt.n
        return None

    def first_demand_using_all_sites(self, sites: Sequence[str]) -> Optional[int]:
        for pt in self.points:
            if all(pt.hosts(s) > 0 for s in sites):
                return pt.n
        return None

    def max_processes_per_host(self, n: int) -> float:
        pt = self.point(n)
        hosts = sum(pt.hosts_by_site.values())
        return pt.total_cores / hosts if hosts else 0.0


def coallocation_cell(ctx: CellContext) -> Dict:
    """Engine cell: one (strategy, n) submission through the stack."""
    strategy = ctx.params["strategy"]
    n = ctx.params["n"]
    result = ctx.cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, tag=f"fig-{strategy}")
    )
    if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
        raise RuntimeError(f"{strategy} n={n} failed: {result.summary()}")
    plan = result.allocation
    return {
        "status": result.status.value,
        "hosts_by_site": plan.hosts_by_site(),
        "cores_by_site": plan.cores_by_site(),
        "reservation_s": result.timings.reservation_s,
        "total_hosts": len(plan.used_hosts()),
        "total_cores": plan.total_processes,
    }


def coallocation_spec(
    seed: int = 0,
    demands: Iterable[int] = PAPER_DEMANDS,
    strategies: Sequence[str] = ("concentrate", "spread"),
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "coallocation",
) -> ExperimentSpec:
    """The §5.1 sweep as a declarative spec (strategy-major order)."""
    return make_spec(
        name=name,
        axes={"strategy": tuple(strategies), "n": tuple(demands)},
        runner=coallocation_cell,
        cluster=cluster_spec or ClusterSpec(),
        master_seed=seed,
        # Pool runs start the largest-demand cells first.
        cost_key=demand_cost_key,
    )


def coallocation_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    cluster: Optional[P2PMPICluster] = None,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the sweep through the engine; see :class:`SweepRunner`."""
    spec = spec or coallocation_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force,
                     cluster=cluster, shard=shard)


def series_from_sweep(sweep: SweepResult) -> Dict[str, CoallocationSeries]:
    """Assemble the legacy per-strategy series from engine cells."""
    out: Dict[str, CoallocationSeries] = {}
    for cell in sweep.cells:
        strategy = cell.params["strategy"]
        n = cell.params["n"]
        series = out.setdefault(strategy,
                                CoallocationSeries(strategy=strategy))
        series.demands.append(n)
        series.points.append(CoallocationPoint(
            strategy=strategy, n=n, status=cell.value["status"],
            hosts_by_site=dict(cell.value["hosts_by_site"]),
            cores_by_site=dict(cell.value["cores_by_site"]),
            reservation_s=cell.value["reservation_s"],
            total_hosts=cell.value["total_hosts"],
            total_cores=cell.value["total_cores"],
        ))
    return out


def run_coallocation_experiment(
    seed: int = 0,
    demands: Iterable[int] = PAPER_DEMANDS,
    strategies: Sequence[str] = ("concentrate", "spread"),
    cluster: Optional[P2PMPICluster] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
) -> Dict[str, CoallocationSeries]:
    """Run the §5.1 sweep; returns one series per strategy.

    With an explicit ``cluster`` the cells run serially against it in
    grid order — consecutive ``p2pmpirun`` invocations sharing one
    booted overlay, exactly as on the real testbed (and exactly the
    pre-engine behaviour, bit for bit).  Without one, every cell
    builds a private cluster from a seed derived per cell, which makes
    the sweep parallelisable (``jobs``) and cacheable (``store``).
    """
    spec = coallocation_spec(seed=seed, demands=demands,
                             strategies=strategies)
    sweep = coallocation_sweep(spec=spec, jobs=jobs, store=store,
                               force=force, cluster=cluster)
    return series_from_sweep(sweep)


# ----------------------------------------------------------------------
# CLI registration (fig2 / fig3 / coallocation)
# ----------------------------------------------------------------------
def _figure_strategies(name: str) -> Tuple[str, ...]:
    if name == "fig2":
        return ("concentrate",)
    if name == "fig3":
        return ("spread",)
    return ("concentrate", "spread")


def _figure_spec(args, name: str) -> ExperimentSpec:
    from repro.experiments.cliutil import grid_overrides

    return coallocation_spec(seed=args.seed,
                             strategies=_figure_strategies(name),
                             name=name, **grid_overrides(args))


def _print_series(series: CoallocationSeries, plot: bool) -> None:
    from repro.experiments.report import format_site_table

    print(format_site_table(series, value="hosts"))
    print()
    print(format_site_table(series, value="cores"))
    if plot:
        from repro.experiments.figures import ascii_plot
        from repro.experiments.report import legend_order

        sites = legend_order(
            sorted({s for pt in series.points for s in pt.cores_by_site}))
        print()
        print(ascii_plot(
            series.demands,
            {site: series.cores_series(site) for site in sites},
            title=f"{series.strategy}: allocated cores per site",
            y_label="cores",
        ))


def _cli_run_figure(args, store, name: str) -> None:
    from repro.experiments.cliutil import report_sweep

    spec = _figure_spec(args, name)
    sweep = coallocation_sweep(spec=spec, jobs=args.jobs, store=store,
                               force=args.force, shard=args.shard)
    report_sweep(sweep, store)
    if args.shard:
        return  # a shard's slice cannot fill the report tables
    strategy = _figure_strategies(name)[0]
    _print_series(series_from_sweep(sweep)[strategy], args.plot)


def _cli_run_combined(args, store) -> None:
    """The §5.1 sweep with both published strategies in one grid."""
    from repro.experiments.cliutil import report_sweep
    from repro.experiments.report import format_site_table

    spec = _figure_spec(args, "coallocation")
    sweep = coallocation_sweep(spec=spec, jobs=args.jobs, store=store,
                               force=args.force, shard=args.shard)
    report_sweep(sweep, store)
    if args.shard:
        return
    for _strategy, series in sorted(series_from_sweep(sweep).items()):
        print(format_site_table(series, value="hosts"))
        print()
        print(format_site_table(series, value="cores"))
        print()


def _register() -> None:
    from repro.experiments import registry

    axes = ("cluster", "demands", "plot")
    for name in ("fig2", "fig3", "coallocation"):
        run = (_cli_run_combined if name == "coallocation"
               else (lambda args, store, name=name:
                     _cli_run_figure(args, store, name)))
        registry.register(registry.Experiment(
            name=name,
            cli_run=run,
            specs=lambda args, name=name: [_figure_spec(args, name)],
            cli_axes=axes,
        ))


_register()
