"""Figures 2 and 3: where processes land, per strategy.

"The experiment consists in running the hostname program, requesting
from 100 to 600 processes by steps of 50."  For each (strategy, n) we
submit through the full middleware stack and record allocated hosts and
cores per site — the two panels of each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster import P2PMPICluster, build_grid5000_cluster
from repro.grid5000.sites import SITE_RTT_MS_FROM_NANCY
from repro.middleware.jobs import JobRequest, JobStatus

__all__ = ["PAPER_DEMANDS", "CoallocationPoint", "CoallocationSeries",
           "run_coallocation_experiment"]

#: The paper's x axis: 100..600 step 50.
PAPER_DEMANDS: Tuple[int, ...] = tuple(range(100, 601, 50))


@dataclass
class CoallocationPoint:
    """One (strategy, n) submission's outcome."""

    strategy: str
    n: int
    status: str
    hosts_by_site: Dict[str, int]
    cores_by_site: Dict[str, int]
    reservation_s: float
    total_hosts: int
    total_cores: int

    def hosts(self, site: str) -> int:
        return self.hosts_by_site.get(site, 0)

    def cores(self, site: str) -> int:
        return self.cores_by_site.get(site, 0)

    @property
    def sites_used(self) -> List[str]:
        return sorted(s for s, c in self.cores_by_site.items() if c > 0)


@dataclass
class CoallocationSeries:
    """All points of one strategy's sweep (one paper figure)."""

    strategy: str
    demands: List[int] = field(default_factory=list)
    points: List[CoallocationPoint] = field(default_factory=list)

    def point(self, n: int) -> CoallocationPoint:
        for pt in self.points:
            if pt.n == n:
                return pt
        raise KeyError(f"no point for n={n}")

    def hosts_series(self, site: str) -> List[int]:
        """Figure left panel: allocated hosts at ``site`` vs demand."""
        return [pt.hosts(site) for pt in self.points]

    def cores_series(self, site: str) -> List[int]:
        """Figure right panel: allocated cores at ``site`` vs demand."""
        return [pt.cores(site) for pt in self.points]

    # -- §5.1 narrative checks -------------------------------------------------
    def only_site_until(self, site: str) -> int:
        """Largest demand served exclusively by ``site`` (0 if none)."""
        best = 0
        for pt in self.points:
            if pt.sites_used == [site]:
                best = max(best, pt.n)
        return best

    def first_demand_using(self, site: str) -> Optional[int]:
        for pt in self.points:
            if pt.hosts(site) > 0:
                return pt.n
        return None

    def first_demand_using_all_sites(self, sites: Sequence[str]) -> Optional[int]:
        for pt in self.points:
            if all(pt.hosts(s) > 0 for s in sites):
                return pt.n
        return None

    def max_processes_per_host(self, n: int) -> float:
        pt = self.point(n)
        hosts = sum(pt.hosts_by_site.values())
        return pt.total_cores / hosts if hosts else 0.0


def run_coallocation_experiment(
    seed: int = 0,
    demands: Iterable[int] = PAPER_DEMANDS,
    strategies: Sequence[str] = ("concentrate", "spread"),
    cluster: Optional[P2PMPICluster] = None,
) -> Dict[str, CoallocationSeries]:
    """Run the §5.1 sweep; returns one series per strategy.

    A fresh latency-measurement round precedes every submission, so
    points are statistically independent while sharing one booted
    overlay (as consecutive ``p2pmpirun`` invocations on the real
    testbed would).
    """
    cluster = cluster or build_grid5000_cluster(seed=seed)
    out: Dict[str, CoallocationSeries] = {}
    for strategy in strategies:
        series = CoallocationSeries(strategy=strategy)
        for n in demands:
            result = cluster.submit_and_run(
                JobRequest(n=n, strategy=strategy, tag=f"fig-{strategy}")
            )
            if result.status not in (JobStatus.SUCCESS, JobStatus.DEGRADED):
                raise RuntimeError(
                    f"{strategy} n={n} failed: {result.summary()}"
                )
            plan = result.allocation
            series.demands.append(n)
            series.points.append(CoallocationPoint(
                strategy=strategy,
                n=n,
                status=result.status.value,
                hosts_by_site=plan.hosts_by_site(),
                cores_by_site=plan.cores_by_site(),
                reservation_s=result.timings.reservation_s,
                total_hosts=len(plan.used_hosts()),
                total_cores=plan.total_processes,
            ))
        out[strategy] = series
    return out
