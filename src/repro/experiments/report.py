"""Report emitters: the paper's series as ASCII tables and CSV.

The figure legends order sites by descending RTT to nancy; we keep
that convention so a reproduced table reads like the original plot
legend.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence

from repro.experiments.applications import AppTimeSeries
from repro.experiments.coallocation import CoallocationSeries
from repro.grid5000.sites import SITE_RTT_MS_FROM_NANCY

__all__ = ["legend_order", "format_site_table", "format_series_table",
           "format_metric_comparison", "series_to_csv"]


def legend_order(sites: Sequence[str]) -> List[str]:
    """Sites by descending RTT to nancy (the paper's legend order)."""
    return sorted(sites, key=lambda s: -SITE_RTT_MS_FROM_NANCY.get(s, 0.0))


def format_site_table(series: CoallocationSeries, value: str = "cores") -> str:
    """One figure panel as an ASCII table (rows = sites, cols = n)."""
    if value not in ("cores", "hosts"):
        raise ValueError("value must be 'cores' or 'hosts'")
    sites = set()
    for pt in series.points:
        sites |= set(pt.cores_by_site)
    ordered = legend_order(sorted(sites))
    header = [f"{series.strategy}:{value}"] + [str(n) for n in series.demands]
    rows = [header]
    for site in ordered:
        getter = (lambda p: p.cores(site)) if value == "cores" else (
            lambda p: p.hosts(site))
        rows.append([site] + [str(getter(pt)) for pt in series.points])
    totals = [
        sum(pt.cores_by_site.values()) if value == "cores"
        else sum(pt.hosts_by_site.values())
        for pt in series.points
    ]
    rows.append(["TOTAL"] + [str(t) for t in totals])
    return _align(rows)


def format_series_table(series_by_strategy: Dict[str, AppTimeSeries],
                        title: str = "") -> str:
    """Figure 4 panel: rows = n, one time column per strategy."""
    strategies = sorted(series_by_strategy)
    ns = series_by_strategy[strategies[0]].ns
    rows = [[title or "n"] + [f"{s} (s)" for s in strategies]]
    for n in ns:
        row = [str(n)]
        for s in strategies:
            row.append(f"{series_by_strategy[s].time_at(n):.2f}")
        rows.append(row)
    return _align(rows)


def format_metric_comparison(
    title: str,
    columns: Sequence,
    rows: "OrderedRows",
    fmt: str = "g",
    missing: str = "-",
) -> str:
    """Strategy-comparison panel: one row per strategy, one column per
    sweep point (the commaware pack's report shape).

    ``rows`` maps row label -> values aligned with ``columns``; a
    ``None`` value renders as ``missing``.  Row order is preserved as
    given — callers pass strategies in campaign order so the paper's
    strategies stay on top.
    """
    table = [[title] + [str(c) for c in columns]]
    for label, values in rows.items():
        if len(values) != len(columns):
            raise ValueError(f"row {label!r} length mismatch")
        table.append([label] + [missing if v is None else format(v, fmt)
                                for v in values])
    return _align(table)


#: ``format_metric_comparison`` row container: any ordered mapping.
OrderedRows = Dict[str, Sequence]


def series_to_csv(series: CoallocationSeries) -> str:
    """Machine-readable dump: one row per (n, site)."""
    buf = io.StringIO()
    buf.write("strategy,n,site,hosts,cores\n")
    for pt in series.points:
        sites = sorted(set(pt.cores_by_site) | set(pt.hosts_by_site))
        for site in sites:
            buf.write(f"{series.strategy},{pt.n},{site},"
                      f"{pt.hosts(site)},{pt.cores(site)}\n")
    return buf.getvalue()


def _align(rows: List[List[str]]) -> str:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for idx, row in enumerate(rows):
        line = "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        lines.append(line)
        if idx == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
