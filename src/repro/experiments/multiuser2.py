"""Open-loop multi-tenant campaign on the asyncio control plane.

Where :mod:`repro.experiments.multiuser` checks the gatekeeper's
*invariants* (few submitters, one concurrent round inside the DES) and
:mod:`repro.experiments.churnload` replays a precomputed Poisson tape,
``multiuser2`` runs *genuinely concurrent* submitters: every tenant is
an asyncio task on the virtual-time loop of
:mod:`repro.middleware.controlplane`, racing its RESERVE walk against
everyone else's and pinning ``J`` slots only through the atomic
``Gatekeeper.try_admit``.

The sweep scans arrival rate × tenant count (up to thousands of
concurrent submitters) × allocation strategy, and the report renders
the fairness ledger — saturation, per-tenant slowdown spread,
admission-latency percentiles — as deterministic text: byte-identical
across ``--jobs`` settings and cache replays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult, make_spec,
                                      run_sweep)
from repro.experiments.report import format_metric_comparison
from repro.middleware.controlplane import run_multi_tenant

__all__ = ["multiuser2_cell", "multiuser2_spec", "multiuser2_sweep",
           "multiuser2_report"]

DEFAULT_TENANTS: Tuple[int, ...] = (10, 50, 200)
DEFAULT_RATES: Tuple[float, ...] = (0.01, 0.05)
DEFAULT_STRATEGIES: Tuple[str, ...] = ("spread", "bandwidth_spread")


def multiuser2_cell(ctx: CellContext) -> Dict:
    """Engine cell: one open-loop round at (rate, tenants, strategy).

    The cluster is used as a *static* testbed — topology, owner prefs
    and per-host gatekeepers — while time is the control plane's
    virtual clock, not the DES simulator (no boot, no message traffic).
    """
    cluster = ctx.cluster
    gatekeepers = {name: mpd.gatekeeper
                   for name, mpd in cluster.mpds.items()}
    return run_multi_tenant(
        cluster.topology, gatekeepers, cluster.default_submitter,
        tenants=ctx.params["tenants"],
        rate_hz=ctx.params["rate"],
        strategy_name=ctx.params["strategy"],
        jobs_per_tenant=ctx.meta.get("jobs_per_tenant", 2),
        n=ctx.meta.get("n", 4),
        work_s=ctx.meta.get("work_s", 20.0),
        seed=ctx.seed,
    )


def multiuser2_spec(
    tenants: Sequence[int] = DEFAULT_TENANTS,
    rates: Sequence[float] = DEFAULT_RATES,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    jobs_per_tenant: int = 2,
    n: int = 4,
    work_s: float = 20.0,
    seed: int = 0,
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "multiuser2",
) -> ExperimentSpec:
    """The control-plane fairness campaign as a declarative spec."""
    return make_spec(
        name=name,
        axes={"rate": tuple(rates), "tenants": tuple(tenants),
              "strategy": tuple(strategies)},
        runner=multiuser2_cell,
        cluster=cluster_spec or ClusterSpec(kind="small"),
        master_seed=seed,
        meta={"jobs_per_tenant": jobs_per_tenant, "n": n,
              "work_s": work_s},
    )


def multiuser2_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the fairness sweep through the engine."""
    spec = spec or multiuser2_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force, shard=shard)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _panel_rows(sweep: SweepResult, strategies: Sequence[str],
                metric: str, rate: float) -> Dict[str, List]:
    rows: Dict[str, List] = {}
    for strategy in strategies:
        rows[strategy] = [
            cell.value.get(metric)
            for cell in sweep.select(rate=rate, strategy=strategy)
        ]
    return rows


def multiuser2_report(sweep: SweepResult) -> str:
    """Fairness ledger tables, deterministic byte for byte.

    One panel block per arrival rate: saturation (refused fraction),
    per-tenant slowdown spread (the fairness gap), mean slowdown, and
    the p95 admission latency, each with one row per strategy and one
    column per tenant count.  Closes with the headline fairness gap
    between ``spread`` and ``bandwidth_spread`` at the most loaded
    sweep point, when both strategies are present.
    """
    spec = sweep.spec
    axes = dict(spec.axes)
    rates = list(axes["rate"])
    tenants = list(axes["tenants"])
    strategies = list(axes["strategy"])
    meta = spec.meta

    parts: List[str] = []
    parts.append("== multi-tenant control plane: "
                 f"{meta['jobs_per_tenant']} jobs/tenant, n={meta['n']}, "
                 f"work={meta['work_s']:g}s ==")
    for rate in rates:
        parts.append("")
        parts.append(f"-- arrival rate {rate:g} jobs/s/tenant --")
        parts.append(format_metric_comparison(
            "saturation@tenants", tenants,
            _panel_rows(sweep, strategies, "saturation", rate),
            fmt=".4f"))
        parts.append("")
        parts.append(format_metric_comparison(
            "slowdown-spread@tenants", tenants,
            _panel_rows(sweep, strategies, "tenant_slowdown_spread", rate),
            fmt=".4f"))
        parts.append("")
        parts.append(format_metric_comparison(
            "slowdown-mean@tenants", tenants,
            _panel_rows(sweep, strategies, "slowdown_mean", rate),
            fmt=".4f"))
        parts.append("")
        parts.append(format_metric_comparison(
            "admit-p95-ms@tenants", tenants,
            _panel_rows(sweep, strategies, "admit_p95_ms", rate),
            fmt=".3f"))
    if "spread" in strategies and "bandwidth_spread" in strategies:
        rate, count = max(rates), max(tenants)
        sat = {
            s: sweep.select(rate=rate, tenants=count, strategy=s)[0]
            .value["saturation"]
            for s in ("spread", "bandwidth_spread")
        }
        parts.append("")
        parts.append(
            f"fairness gap @ rate={rate:g}, tenants={count}: "
            f"saturation spread={sat['spread']:.4f} "
            f"bandwidth_spread={sat['bandwidth_spread']:.4f} "
            f"delta={sat['spread'] - sat['bandwidth_spread']:+.4f}")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# CLI registration (multiuser2)
# ----------------------------------------------------------------------
def _cli_spec(args) -> ExperimentSpec:
    from repro.experiments.cliutil import csv_values

    overrides = {}
    if getattr(args, "tenants", None) is not None:
        overrides["tenants"] = csv_values("--tenants", args.tenants, int)
    if getattr(args, "rates", None) is not None:
        overrides["rates"] = csv_values("--rates", args.rates, float)
    return multiuser2_spec(
        seed=args.seed,
        cluster_spec=ClusterSpec(kind=args.cluster
                                 if args.cluster == "small" else "grid5000"),
        **overrides,
    )


def _cli_run(args, store) -> None:
    """The multi-tenant fairness campaign.  Output is the deterministic
    ledger report only, so ``--jobs 1`` and ``--jobs 2`` runs diff
    clean byte for byte.
    """
    from repro.experiments.cliutil import report_sweep

    spec = _cli_spec(args)
    sweep = multiuser2_sweep(spec=spec, jobs=args.jobs, store=store,
                             force=args.force, shard=args.shard)
    if args.shard:
        report_sweep(sweep, store)
        return
    print(multiuser2_report(sweep))


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="multiuser2",
        cli_run=_cli_run,
        specs=lambda args: [_cli_spec(args)],
        cli_axes=("cluster", "controlplane"),
    ))


_register()
