"""Table 1: the testbed resource inventory.

The paper's Table 1 lists the Grid'5000 clusters the experiment drew
from — site, cluster, CPU model, node/CPU/core counts — and the figure
legends annotate each site with its RTT from the submitter.  This is a
static render of :data:`repro.grid5000.resources.CLUSTERS` plus the
legend; there is no sweep, no store, nothing to shard.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.experiments import registry
from repro.grid5000.builder import build_topology, paper_site_legend
from repro.grid5000.resources import CLUSTERS

__all__ = ["inventory_table"]


def inventory_table() -> str:
    """The Table-1 render (plus RTT legend) as one string."""
    lines = [f"{'Site':<10}{'Cluster':<12}{'CPU':<20}"
             f"{'#Nodes':>8}{'#CPUs':>8}{'#Cores':>8}"]
    for c in CLUSTERS:
        lines.append(f"{c.site:<10}{c.name:<12}{c.cpu_model:<20}"
                     f"{c.nodes:>8}{c.cpus:>8}{c.cores:>8}")
    topo = build_topology()
    lines.append("\nLegend (RTT to nancy):")
    for site, rtt, hosts, cores in paper_site_legend(topo):
        lines.append(f"  {site:<10} {rtt:>7.3f} ms  {hosts:>3} hosts  "
                     f"{cores:>4} cores")
    return "\n".join(lines)


def _cli_run(args: Any, store: Optional[Any]) -> None:
    print(inventory_table())


registry.register(registry.Experiment(
    name="table1",
    cli_run=_cli_run,
    shardable=False,
))
