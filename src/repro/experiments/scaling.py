"""Co-allocation latency scaling.

The paper's main objective is "to assess the allocation mechanism
effects at the scale of applications composed of hundreds of
processes"; besides *where* processes land, an operator cares how
*long* the reservation machinery takes as the request grows.  This
driver measures the simulated booking/launch milestones of
:class:`~repro.middleware.jobs.JobTimings` across demand sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster import ClusterSpec, P2PMPICluster
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult, make_spec,
                                      run_sweep)
from repro.middleware.jobs import JobRequest

__all__ = ["ScalingPoint", "ScalingSeries", "scaling_cell", "scaling_spec",
           "scaling_sweep", "scaling_series_from_sweep",
           "run_scaling_experiment"]


@dataclass
class ScalingPoint:
    """Timing milestones of one submission."""

    n: int
    strategy: str
    reservation_s: float
    launch_s: float
    total_s: float
    booked_hosts: int
    attempts: int


@dataclass
class ScalingSeries:
    strategy: str
    points: List[ScalingPoint] = field(default_factory=list)

    @property
    def ns(self) -> List[int]:
        return [p.n for p in self.points]

    def reservation_series(self) -> List[float]:
        return [p.reservation_s for p in self.points]

    def launch_series(self) -> List[float]:
        return [p.launch_s for p in self.points]


def scaling_cell(ctx: CellContext) -> Dict:
    """Engine cell: timing milestones of one sized submission."""
    strategy = ctx.meta["strategy"]
    n = ctx.params["n"]
    result = ctx.cluster.submit_and_run(
        JobRequest(n=n, strategy=strategy, tag="scaling"))
    if not result.ok:
        raise RuntimeError(result.summary())
    return {
        "reservation_s": result.timings.reservation_s,
        "launch_s": result.timings.launch_s,
        "total_s": result.timings.total_s,
        "booked_hosts": len(result.allocation.slist),
        "attempts": result.attempts,
    }


def scaling_spec(
    demands: Iterable[int] = (50, 100, 200, 400, 600),
    strategy: str = "spread",
    seed: int = 0,
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "scaling",
) -> ExperimentSpec:
    """The reservation-latency sweep as a declarative spec."""
    return make_spec(
        name=name,
        axes={"n": tuple(demands)},
        runner=scaling_cell,
        cluster=cluster_spec or ClusterSpec(),
        master_seed=seed,
        meta={"strategy": strategy},
    )


def scaling_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    cluster: Optional[P2PMPICluster] = None,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the sweep through the engine; see :class:`SweepRunner`."""
    spec = spec or scaling_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force,
                     cluster=cluster, shard=shard)


def scaling_series_from_sweep(sweep: SweepResult) -> ScalingSeries:
    """Assemble the legacy series from engine cells."""
    strategy = sweep.spec.meta["strategy"]
    series = ScalingSeries(strategy=strategy)
    for cell in sweep.cells:
        series.points.append(ScalingPoint(
            n=cell.params["n"], strategy=strategy,
            reservation_s=cell.value["reservation_s"],
            launch_s=cell.value["launch_s"],
            total_s=cell.value["total_s"],
            booked_hosts=cell.value["booked_hosts"],
            attempts=cell.value["attempts"],
        ))
    return series


def run_scaling_experiment(
    demands: Iterable[int] = (50, 100, 200, 400, 600),
    strategy: str = "spread",
    seed: int = 0,
    cluster: Optional[P2PMPICluster] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
) -> ScalingSeries:
    """Measure co-allocation latency over a demand sweep."""
    spec = scaling_spec(demands=demands, strategy=strategy, seed=seed)
    sweep = scaling_sweep(spec=spec, jobs=jobs, store=store, force=force,
                          cluster=cluster)
    return scaling_series_from_sweep(sweep)


# ----------------------------------------------------------------------
# CLI registration (scaling)
# ----------------------------------------------------------------------
def _cli_strategy(args) -> str:
    strategy = args.alloc
    if strategy == "block":
        import sys

        print("warning: --experiment scaling does not sweep the block "
              "strategy; using spread", file=sys.stderr)
        strategy = "spread"
    return strategy


def _cli_specs(args) -> List[ExperimentSpec]:
    return [scaling_spec(seed=args.seed, strategy=_cli_strategy(args))]


def _cli_run(args, store) -> None:
    from repro.experiments.cliutil import report_sweep

    spec = scaling_spec(seed=args.seed, strategy=_cli_strategy(args))
    sweep = scaling_sweep(spec=spec, jobs=args.jobs, store=store,
                          force=args.force, shard=args.shard)
    report_sweep(sweep, store)
    if args.shard:
        return
    series = scaling_series_from_sweep(sweep)
    print(f"strategy: {series.strategy}")
    for p in series.points:
        print(f"n={p.n:<4} reservation={p.reservation_s * 1e3:7.1f} ms  "
              f"launch={p.launch_s * 1e3:7.1f} ms  booked={p.booked_hosts}  "
              f"attempts={p.attempts}")


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="scaling",
        cli_run=_cli_run,
        specs=_cli_specs,
        cli_axes=("alloc",),
    ))


_register()
