"""Co-allocation latency scaling.

The paper's main objective is "to assess the allocation mechanism
effects at the scale of applications composed of hundreds of
processes"; besides *where* processes land, an operator cares how
*long* the reservation machinery takes as the request grows.  This
driver measures the simulated booking/launch milestones of
:class:`~repro.middleware.jobs.JobTimings` across demand sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster import P2PMPICluster, build_grid5000_cluster
from repro.middleware.jobs import JobRequest

__all__ = ["ScalingPoint", "ScalingSeries", "run_scaling_experiment"]


@dataclass
class ScalingPoint:
    """Timing milestones of one submission."""

    n: int
    strategy: str
    reservation_s: float
    launch_s: float
    total_s: float
    booked_hosts: int
    attempts: int


@dataclass
class ScalingSeries:
    strategy: str
    points: List[ScalingPoint] = field(default_factory=list)

    @property
    def ns(self) -> List[int]:
        return [p.n for p in self.points]

    def reservation_series(self) -> List[float]:
        return [p.reservation_s for p in self.points]

    def launch_series(self) -> List[float]:
        return [p.launch_s for p in self.points]


def run_scaling_experiment(
    demands: Iterable[int] = (50, 100, 200, 400, 600),
    strategy: str = "spread",
    seed: int = 0,
    cluster: Optional[P2PMPICluster] = None,
) -> ScalingSeries:
    """Measure co-allocation latency over a demand sweep."""
    cluster = cluster or build_grid5000_cluster(seed=seed)
    series = ScalingSeries(strategy=strategy)
    for n in demands:
        result = cluster.submit_and_run(
            JobRequest(n=n, strategy=strategy, tag="scaling"))
        if not result.ok:
            raise RuntimeError(result.summary())
        series.points.append(ScalingPoint(
            n=n,
            strategy=strategy,
            reservation_s=result.timings.reservation_s,
            launch_s=result.timings.launch_s,
            total_s=result.timings.total_s,
            booked_hosts=len(result.allocation.slist),
            attempts=result.attempts,
        ))
    return series
