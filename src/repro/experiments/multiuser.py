"""Multi-user contention experiments.

§4 motivates the owner policies with "the grid is a multi-user
platform".  This driver submits several jobs *concurrently* from
different peers and verifies what the gatekeeper (``J`` limits) and the
hash-keyed reservations guarantee: no host ever runs more concurrent
applications than its owner allows, and with ``J=1`` the allocations of
simultaneously-running jobs are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster import ClusterSpec, P2PMPICluster
from repro.experiments.engine import (CellContext, ExperimentSpec,
                                      ResultStore, SweepResult, make_spec,
                                      run_sweep)
from repro.middleware.jobs import JobRequest, JobResult

__all__ = ["MultiUserOutcome", "run_multiuser_experiment",
           "multiuser_cell", "multiuser_spec", "multiuser_sweep"]


@dataclass
class MultiUserOutcome:
    """Results of one concurrent-submission round."""

    results: Dict[str, JobResult] = field(default_factory=dict)

    @property
    def statuses(self) -> Dict[str, str]:
        return {sub: res.status.value for sub, res in self.results.items()}

    def used_hosts(self, submitter: str) -> Set[str]:
        res = self.results[submitter]
        if res.plan is None:
            return set()
        return {h.name for h in res.plan.used_hosts()}

    def overlaps(self) -> List[Tuple[str, str, Set[str]]]:
        """Host sets shared by pairs of allocated jobs (any time)."""
        out = []
        subs = [s for s, r in self.results.items() if r.plan is not None]
        for i, a in enumerate(subs):
            for b in subs[i + 1:]:
                shared = self.used_hosts(a) & self.used_hosts(b)
                if shared:
                    out.append((a, b, shared))
        return out

    def concurrent_overlaps(self) -> List[Tuple[str, str, Set[str]]]:
        """Shared hosts whose execution windows actually intersected.

        A host reused by job B *after* job A finished is legitimate
        (the gatekeeper freed the ``J`` slot); only temporally
        overlapping co-residency violates ``J=1``.
        """
        out = []
        for a, b, shared in self.overlaps():
            ta, tb = self.results[a].timings, self.results[b].timings
            if (ta.launched_at < tb.finished_at
                    and tb.launched_at < ta.finished_at):
                out.append((a, b, shared))
        return out

    def max_attempts(self) -> int:
        return max((r.attempts for r in self.results.values()), default=1)

    def total_refusals(self) -> int:
        return sum(len(r.refusals) for r in self.results.values())


def run_multiuser_experiment(
    cluster: P2PMPICluster,
    submitters: Sequence[str],
    requests: Optional[Sequence[JobRequest]] = None,
    n: int = 8,
    strategy: str = "spread",
    stagger_s: float = 0.0,
) -> MultiUserOutcome:
    """Submit one job per submitter, all in flight together.

    ``stagger_s`` separates the submission instants (0 = simultaneous);
    the RS brokering of the competing jobs then interleaves on the
    wire, which is precisely the race the hash keys and gatekeeper
    serialise.
    """
    if not cluster._booted:
        cluster.boot()
    if requests is None:
        requests = [JobRequest(n=n, strategy=strategy, tag=f"user-{i}")
                    for i in range(len(submitters))]
    if len(requests) != len(submitters):
        raise ValueError("one request per submitter required")

    sim = cluster.sim
    procs = {}
    for i, (submitter, request) in enumerate(zip(submitters, requests)):
        mpd = cluster.mpds[submitter]

        def delayed(mpd=mpd, request=request, delay=i * stagger_s):
            if delay:
                yield sim.timeout(delay)
            result = yield from mpd.submit_job(request)
            return result

        procs[submitter] = sim.process(delayed())

    sim.run_until_complete(sim.all_of(list(procs.values())))
    outcome = MultiUserOutcome()
    for submitter, proc in procs.items():
        outcome.results[submitter] = proc.value
    return outcome


def default_submitters(cluster: P2PMPICluster, users: int) -> List[str]:
    """Deterministic contention setup: one submitter per site, round
    robin over the site's hosts when ``users`` exceeds the site count."""
    topology = cluster.topology
    sites = list(topology.sites)
    out: List[str] = []
    round_ = 0
    while len(out) < users:
        for site in sites:
            hosts = topology.hosts_in_site(site)
            if round_ < len(hosts):
                out.append(hosts[round_].name)
            if len(out) == users:
                break
        round_ += 1
        if round_ > max(len(topology.hosts_in_site(s)) for s in sites):
            raise ValueError(f"cannot place {users} submitters")
    return out


def multiuser_cell(ctx: CellContext) -> Dict:
    """Engine cell: one concurrent round of ``users`` submissions.

    A whole round is one cell (the competing jobs must share a
    simulator), so the sweep axes scan round-level parameters: user
    count, per-job demand, strategy.
    """
    cluster = ctx.cluster
    submitters = default_submitters(cluster, ctx.params["users"])
    outcome = run_multiuser_experiment(
        cluster, submitters=submitters,
        n=ctx.params["n"], strategy=ctx.params["strategy"],
        stagger_s=ctx.meta.get("stagger_s", 0.0),
    )
    total_cores = sum(
        sum(res.plan.cores_by_site().values())
        for res in outcome.results.values() if res.plan is not None
    )
    return {
        "statuses": dict(sorted(outcome.statuses.items())),
        "concurrent_overlap_count": len(outcome.concurrent_overlaps()),
        "total_refusals": outcome.total_refusals(),
        "max_attempts": outcome.max_attempts(),
        "total_cores": total_cores,
    }


def multiuser_spec(
    users: Sequence[int] = (2, 3),
    demands: Sequence[int] = (50, 150),
    strategies: Sequence[str] = ("spread",),
    stagger_s: float = 0.0,
    seed: int = 0,
    cluster_spec: Optional[ClusterSpec] = None,
    name: str = "multiuser",
) -> ExperimentSpec:
    """Contention rounds as a declarative spec."""
    return make_spec(
        name=name,
        axes={"users": tuple(users), "n": tuple(demands),
              "strategy": tuple(strategies)},
        runner=multiuser_cell,
        cluster=cluster_spec or ClusterSpec(),
        master_seed=seed,
        meta={"stagger_s": stagger_s},
    )


def multiuser_sweep(
    spec: Optional[ExperimentSpec] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    **spec_kwargs,
) -> SweepResult:
    """Run the contention sweep through the engine."""
    spec = spec or multiuser_spec(**spec_kwargs)
    return run_sweep(spec, jobs=jobs, store=store, force=force, shard=shard)


# ----------------------------------------------------------------------
# CLI registration (multiuser)
# ----------------------------------------------------------------------
def _cli_specs(args) -> List[ExperimentSpec]:
    return [multiuser_spec(seed=args.seed)]


def _cli_run(args, store) -> None:
    from repro.experiments.cliutil import report_sweep

    spec = multiuser_spec(seed=args.seed)
    sweep = multiuser_sweep(spec=spec, jobs=args.jobs, store=store,
                            force=args.force, shard=args.shard)
    report_sweep(sweep, store)
    if args.shard:
        return
    for cell in sweep.cells:
        v = cell.value
        print(f"users={cell.params['users']} n={cell.params['n']} "
              f"{cell.params['strategy']:<12} statuses={v['statuses']} "
              f"overlaps={v['concurrent_overlap_count']} "
              f"refusals={v['total_refusals']}")


def _register() -> None:
    from repro.experiments import registry

    registry.register(registry.Experiment(
        name="multiuser",
        cli_run=_cli_run,
        specs=_cli_specs,
    ))


_register()
