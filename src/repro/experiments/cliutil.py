"""Shared CLI-side helpers for the registered experiment drivers.

The subcommand redesign moved each ``--experiment`` dispatch arm out of
``repro.cli`` into its owning driver module (see
:mod:`repro.experiments.registry`); the idioms those arms shared —
comma-separated grid flags, the small-testbed overrides, the one
``[engine]`` summary line — live here so the drivers do not import the
CLI (which would be a cycle) or each other.

Deliberately import-light: the engine and the cluster recipe only.
Nothing here runs a sweep.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.experiments.engine import ResultStore, SweepResult

__all__ = ["csv_values", "grid_overrides", "report_sweep"]


def csv_values(flag: str, text: str, cast, nonnegative: bool = False,
               positive: bool = False) -> Tuple:
    """Parse a comma-separated grid flag; the one shared error idiom
    for ``--demands`` / ``--failures`` / ``--ratios``."""
    try:
        values = tuple(cast(part) for part in text.split(",") if part)
    except ValueError:
        raise SystemExit(f"error: bad {flag} {text!r}")
    if not values:
        raise SystemExit(f"error: {flag} needs at least one value")
    if positive and any(v <= 0 for v in values):
        raise SystemExit(f"error: {flag} values must be > 0")
    if nonnegative and any(v < 0 for v in values):
        raise SystemExit(f"error: {flag} rates must be >= 0")
    return values


def grid_overrides(args: Any) -> dict:
    """Only the sweep-shape kwargs the user explicitly set, so the
    figure drivers keep their spec functions' own defaults otherwise."""
    overrides = {}
    if args.demands is not None:
        overrides["demands"] = csv_values("--demands", args.demands, int)
    if args.cluster == "small":
        overrides["cluster_spec"] = ClusterSpec(kind="small")
        if args.demands is None:
            # The paper's 100..600 grid is infeasible on the 28-core
            # smoke testbed; default to a grid that fits it.
            overrides["demands"] = (4, 8, 16)
    return overrides


def report_sweep(sweep: SweepResult, store: Optional[ResultStore]) -> None:
    """The one ``[engine]`` line every driver prints per sweep."""
    line = f"[engine] {sweep.summary()}"
    if store is not None:
        # Sharded runs persist to the .partial checkpoint (the merge
        # input); only complete sweeps own the canonical file.  A shard
        # served entirely from cache checkpoints nothing — pointing a
        # later `merge` at a nonexistent path would only confuse.
        path = (store.partial_path_for(sweep.spec) if sweep.shard
                else store.path_for(sweep.spec))
        if sweep.shard and not path.exists():
            line += " (all cells cached; no checkpoint written)"
        else:
            line += f" -> {path}"
    print(line)
