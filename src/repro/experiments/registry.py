"""The experiment registry: one lazy catalogue of every campaign.

Before this module the CLI hand-maintained eight import blocks and a
``--experiment`` dispatch ladder, and ``p2pmpirun --help`` paid for
importing every driver (and numpy/networkx behind them).  Now the
mapping is split in two layers:

* :data:`MANIFEST` — a static name -> module table.  Importing this
  module costs nothing (stdlib only), so parser construction and
  ``--help`` stay lazy; :func:`names` and :func:`is_shardable` answer
  from the table alone.
* :class:`Experiment` — the behavioural record a driver module
  registers at import time via :func:`register`: its spec builder (what
  grids the campaign spans, for the orchestrator), its CLI entry point
  (run + report), and the CLI axis groups whose flags it consumes
  (what ``orchestrate`` forwards to worker processes).

:func:`get` bridges the two: it imports the manifest module on first
use — the import runs the module's ``register`` call — and returns the
registered record.  The ``all`` composite lives here (it is pure glue
over other entries) and resolves its parts through :func:`get`, so even
it imports nothing until executed.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["MANIFEST", "Experiment", "ExperimentRef", "get",
           "is_shardable", "names", "register"]


@dataclass(frozen=True)
class ExperimentRef:
    """Manifest row: where an experiment's driver lives.

    ``shardable`` is manifest metadata (not behaviour) so the CLI can
    validate ``--shard``/``orchestrate`` targets without importing the
    driver; :func:`register` cross-checks it against the registered
    record.
    """

    module: str
    shardable: bool = True


#: Every experiment name the CLI accepts, in the legacy ``--experiment``
#: choices order (golden tests pin ``--help`` output to it).
MANIFEST: Dict[str, ExperimentRef] = {
    "fig2": ExperimentRef("repro.experiments.coallocation"),
    "fig3": ExperimentRef("repro.experiments.coallocation"),
    "fig4": ExperimentRef("repro.experiments.applications"),
    "table1": ExperimentRef("repro.experiments.inventory", shardable=False),
    "ablations": ExperimentRef("repro.experiments.ablations",
                               shardable=False),
    "scaling": ExperimentRef("repro.experiments.scaling"),
    "multiuser": ExperimentRef("repro.experiments.multiuser"),
    "coallocation": ExperimentRef("repro.experiments.coallocation"),
    "commaware": ExperimentRef("repro.experiments.commaware"),
    "churnload": ExperimentRef("repro.experiments.churnload"),
    "applatency": ExperimentRef("repro.experiments.applatency"),
    "multiuser2": ExperimentRef("repro.experiments.multiuser2"),
    "topozoo": ExperimentRef("repro.experiments.topozoo"),
    "migration": ExperimentRef("repro.experiments.migration"),
    "all": ExperimentRef("repro.experiments.registry"),
}


@dataclass(frozen=True)
class Experiment:
    """What a driver module registers for one experiment name.

    Attributes
    ----------
    name:
        The CLI name; must appear in :data:`MANIFEST`.
    cli_run:
        ``(args, store) -> None`` — run the campaign and print its
        report, exactly the behaviour of the legacy ``--experiment``
        dispatch arm.  ``store`` is ``None`` without ``--out``.
    specs:
        ``(args) -> [ExperimentSpec, ...]`` — the campaign's sweep
        grids for the given CLI flags, *without running anything*.
        This is the orchestrator's contract: shard planning, progress
        accounting and canonical-store promotion all derive from these
        specs, so a builder must mirror its ``cli_run``'s grids
        exactly (the registry tests pin the store paths to it).
        ``None`` for table/ablation entries that have no engine sweep.
    cli_axes:
        The CLI flag groups this experiment consumes (``"cluster"``,
        ``"demands"``, ``"ratios"``, ``"churn"``, ``"nas_class"``,
        ``"alloc"``, ``"plot"``); ``orchestrate`` forwards exactly
        these groups' flags to its worker processes.
    shardable:
        Whether ``--shard K/N`` (and hence ``orchestrate``) applies.
    """

    name: str
    cli_run: Callable[[Any, Optional[Any]], None]
    specs: Optional[Callable[[Any], List[Any]]] = None
    cli_axes: Tuple[str, ...] = ()
    shardable: bool = True


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Driver modules call this once per experiment name at import.

    Re-registration with the same name overwrites (harmless on module
    reload); a name missing from :data:`MANIFEST` or disagreeing with
    its ``shardable`` metadata is a programming error worth failing
    loudly on.
    """
    ref = MANIFEST.get(experiment.name)
    if ref is None:
        raise ValueError(
            f"experiment {experiment.name!r} is not in the manifest; "
            f"add it to repro.experiments.registry.MANIFEST first")
    if ref.shardable != experiment.shardable:
        raise ValueError(
            f"experiment {experiment.name!r}: manifest says "
            f"shardable={ref.shardable}, registration says "
            f"{experiment.shardable}")
    _REGISTRY[experiment.name] = experiment
    return experiment


def names() -> Tuple[str, ...]:
    """Every experiment name, manifest order — import-free."""
    return tuple(MANIFEST)


def is_shardable(name: str) -> bool:
    """Whether ``--shard``/``orchestrate`` applies — import-free."""
    return MANIFEST[name].shardable


def shardable_names() -> Tuple[str, ...]:
    """The orchestratable subset of :func:`names`, manifest order."""
    return tuple(n for n, ref in MANIFEST.items() if ref.shardable)


def get(name: str) -> Experiment:
    """Resolve a name to its registered :class:`Experiment`.

    Imports the driver module on first use (the import side effect is
    the registration), so the cost of a campaign's dependency tree is
    paid only by invocations that actually run it.
    """
    ref = MANIFEST.get(name)
    if ref is None:
        raise KeyError(f"unknown experiment {name!r} "
                       f"(choose from {', '.join(MANIFEST)})")
    if name not in _REGISTRY:
        importlib.import_module(ref.module)
    if name not in _REGISTRY:
        raise RuntimeError(
            f"module {ref.module} did not register experiment {name!r}")
    return _REGISTRY[name]


# ----------------------------------------------------------------------
# the `all` composite: the full paper campaign, glued from other entries
# ----------------------------------------------------------------------
_ALL_PARTS: Tuple[str, ...] = ("fig2", "fig3", "fig4", "scaling",
                               "multiuser")


def _all_specs(args: Any) -> List[Any]:
    out: List[Any] = []
    for part in _ALL_PARTS:
        builder = get(part).specs
        if builder is not None:
            out.extend(builder(args))
    return out


def _all_cli_run(args: Any, store: Optional[Any]) -> None:
    # Matches the legacy `--experiment all` output byte for byte:
    # a `== name ==` banner per part, blank line between parts.
    for i, part in enumerate(_ALL_PARTS):
        print(f"== {part} ==")
        get(part).cli_run(args, store)
        if i < len(_ALL_PARTS) - 1:
            print()


register(Experiment(
    name="all",
    cli_run=_all_cli_run,
    specs=_all_specs,
    cli_axes=("cluster", "demands", "nas_class", "alloc", "plot"),
))
