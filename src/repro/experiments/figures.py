"""Plain-text figure rendering.

The evaluation environment is headless, so the figure benchmarks emit
ASCII line charts alongside the numeric tables.  Dot markers, one
symbol per series, shared y scale — close enough to eyeball the
paper's gnuplot panels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["ascii_plot"]

MARKERS = "ox+*#@%&"


def ascii_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render ``series`` (name -> y values over shared ``xs``).

    >>> print(ascii_plot([1, 2], {"a": [0.0, 1.0]}, width=8, height=4))
    ... # doctest: +SKIP
    """
    if not xs or not series:
        raise ValueError("need at least one x and one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    span_x = (x_max - x_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(sorted(series.items())):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_min) / span_x * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.2f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10g}{'':^{max(0, width - 20)}}{x_max:>10g}")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}"
        for i, name in enumerate(sorted(series)))
    lines.append(" " * 12 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)
