"""Collective operations for the message-level engine.

Algorithms mirror classic MPICH choices (and are mirrored again by the
closed forms in :mod:`repro.mpi.costmodel`):

* ``barrier`` — dissemination, ``ceil(log2 p)`` rounds;
* ``bcast`` / ``reduce`` — binomial trees;
* ``allreduce`` — reduce to rank 0 then broadcast;
* ``gather`` / ``scatter`` — linear at the root;
* ``allgather`` — ring, ``p-1`` steps;
* ``alltoall`` / ``alltoallv`` — pairwise exchange, ``p-1`` steps.

Every function is a generator meant to be delegated to from a program
(``result = yield from comm.allreduce(x)``).  Importing this module
binds the functions onto :class:`repro.mpi.api.Comm`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.mpi.api import Comm
from repro.mpi.datatypes import Op, SUM

__all__ = ["barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
           "allgather", "alltoall", "alltoallv"]

#: Wire size of a zero-payload synchronisation message.
SYNC_BYTES = 32


def barrier(comm: Comm) -> Generator:
    """Dissemination barrier."""
    tag = comm._next_coll_tag()
    p = comm.size
    k = 1
    while k < p:
        dest = (comm.rank + k) % p
        src = (comm.rank - k) % p
        comm.isend(dest, None, SYNC_BYTES, tag)
        yield from comm.recv(source=src, tag=tag)
        k <<= 1
    return None


def bcast(comm: Comm, value: Any = None, root: int = 0,
          size_bytes: int = SYNC_BYTES) -> Generator:
    """Binomial-tree broadcast; every rank returns the root's value."""
    tag = comm._next_coll_tag()
    p = comm.size
    relative = (comm.rank - root) % p
    mask = 1
    data = value if comm.rank == root else None
    while mask < p:
        if relative & mask:
            src = (comm.rank - mask) % p
            _s, _t, data = yield from comm.recv(source=src, tag=tag)
            break
        mask <<= 1
    else:
        mask = 1
        while mask < p:
            mask <<= 1
    mask >>= 1
    while mask > 0:
        if relative + mask < p:
            dest = (comm.rank + mask) % p
            comm.isend(dest, data, size_bytes, tag)
        mask >>= 1
    return data


def reduce(comm: Comm, value: Any, op: Op = SUM, root: int = 0,
           size_bytes: int = SYNC_BYTES) -> Generator:
    """Binomial fan-in; the root returns the reduction, others None."""
    tag = comm._next_coll_tag()
    p = comm.size
    relative = (comm.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if relative & mask == 0:
            src_rel = relative | mask
            if src_rel < p:
                src = (src_rel + root) % p
                _s, _t, partial = yield from comm.recv(source=src, tag=tag)
                acc = op.fn(acc, partial)
        else:
            dest = (relative - mask + root) % p
            comm.isend(dest, acc, size_bytes, tag)
            break
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce(comm: Comm, value: Any, op: Op = SUM,
              size_bytes: int = SYNC_BYTES) -> Generator:
    """Recursive-doubling allreduce (MPICH small-message algorithm).

    Non-power-of-two sizes fold the first ``2*rem`` ranks pairwise into
    the power-of-two core, run the doubling, then fold the result back
    out.  Requires a commutative op (all built-ins are).
    """
    tag = comm._next_coll_tag()
    out_tag = comm._next_coll_tag()
    p = comm.size
    rank = comm.rank
    if p == 1:
        yield comm.sim.timeout(comm.world.network.sw_overhead_s)
        return value
    pof2 = 1 << (p.bit_length() - 1)  # largest power of two <= p
    rem = p - pof2
    acc = value
    if rank < 2 * rem:
        if rank % 2 == 1:
            # Fold in: odd ranks hand their value to the left neighbour
            # and wait for the final result.
            comm.isend(rank - 1, acc, size_bytes, tag)
            _s, _t, result = yield from comm.recv(source=rank - 1, tag=out_tag)
            return result
        _s, _t, other = yield from comm.recv(source=rank + 1, tag=tag)
        acc = op.fn(acc, other)
        vrank = rank // 2
    else:
        vrank = rank - rem
    mask = 1
    while mask < pof2:
        vdest = vrank ^ mask
        dest = 2 * vdest if vdest < rem else vdest + rem
        _s, _t, other = yield from comm.sendrecv(
            dest, acc, size_bytes, source=dest, tag=tag)
        acc = op.fn(acc, other)
        mask <<= 1
    if rank < 2 * rem:
        comm.isend(rank + 1, acc, size_bytes, out_tag)
    return acc


def gather(comm: Comm, value: Any, root: int = 0,
           size_bytes: int = SYNC_BYTES) -> Generator:
    """Linear gather; the root returns the rank-ordered list."""
    tag = comm._next_coll_tag()
    if comm.rank == root:
        out: List[Any] = [None] * comm.size
        out[root] = value
        for _ in range(comm.size - 1):
            src, _t, data = yield from comm.recv(tag=tag)
            out[src] = data
        return out
    comm.isend(root, value, size_bytes, tag)
    yield comm.sim.timeout(comm.world.network.sw_overhead_s)
    return None


def scatter(comm: Comm, values: Optional[Sequence[Any]] = None, root: int = 0,
            size_bytes: int = SYNC_BYTES) -> Generator:
    """Linear scatter; every rank returns its element of the root list."""
    tag = comm._next_coll_tag()
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError("root must provide one value per rank")
        for dest in range(comm.size):
            if dest != root:
                comm.isend(dest, values[dest], size_bytes, tag)
        yield comm.sim.timeout(comm.world.network.sw_overhead_s)
        return values[root]
    _s, _t, data = yield from comm.recv(source=root, tag=tag)
    return data


def allgather(comm: Comm, value: Any,
              size_bytes: int = SYNC_BYTES) -> Generator:
    """Ring allgather; every rank returns the rank-ordered list."""
    tag = comm._next_coll_tag()
    p = comm.size
    out: List[Any] = [None] * p
    out[comm.rank] = value
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    block_rank, block = comm.rank, value
    for _step in range(p - 1):
        comm.isend(right, (block_rank, block), size_bytes, tag)
        _s, _t, (block_rank, block) = yield from comm.recv(source=left, tag=tag)
        out[block_rank] = block
    return out


def alltoall(comm: Comm, values: Sequence[Any],
             size_bytes: int = SYNC_BYTES) -> Generator:
    """Pairwise-exchange alltoall; returns list indexed by source rank."""
    if len(values) != comm.size:
        raise ValueError("alltoall needs one value per destination")
    sizes = [size_bytes] * comm.size
    out = yield from alltoallv(comm, values, sizes)
    return out


def alltoallv(comm: Comm, values: Sequence[Any],
              sizes: Sequence[int]) -> Generator:
    """Pairwise-exchange with per-destination sizes (NAS IS pattern)."""
    p = comm.size
    if len(values) != p or len(sizes) != p:
        raise ValueError("alltoallv needs one value and size per destination")
    tag = comm._next_coll_tag()
    out: List[Any] = [None] * p
    out[comm.rank] = values[comm.rank]
    for step in range(1, p):
        dest = (comm.rank + step) % p
        src = (comm.rank - step) % p
        comm.isend(dest, values[dest], int(sizes[dest]), tag)
        _s, _t, data = yield from comm.recv(source=src, tag=tag)
        out[src] = data
    return out


# Bind onto Comm so programs write `yield from comm.barrier()`.
Comm.barrier = barrier
Comm.bcast = bcast
Comm.reduce = reduce
Comm.allreduce = allreduce
Comm.gather = gather
Comm.scatter = scatter
Comm.allgather = allgather
Comm.alltoall = alltoall
Comm.alltoallv = alltoallv
