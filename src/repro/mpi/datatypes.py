"""Wire sizes and reduction operators.

MPJ (like MPI) sizes messages by element type; we only need the byte
widths for the simulated transfer times, plus real reduction operators
so collectives in the message-level engine return true values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["Datatype", "BYTE", "INT", "LONG", "FLOAT", "DOUBLE",
           "Op", "SUM", "PROD", "MAX", "MIN"]


@dataclass(frozen=True)
class Datatype:
    """An element type with a wire width."""

    name: str
    size: int  # bytes per element

    def extent(self, count: int) -> int:
        return self.size * count


BYTE = Datatype("byte", 1)
INT = Datatype("int", 4)
LONG = Datatype("long", 8)
FLOAT = Datatype("float", 4)
DOUBLE = Datatype("double", 8)


@dataclass(frozen=True)
class Op:
    """A commutative, associative reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]

    def reduce(self, values: Sequence[Any]) -> Any:
        if not values:
            raise ValueError("reduce of empty sequence")
        acc = values[0]
        for value in values[1:]:
            acc = self.fn(acc, value)
        return acc


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


SUM = Op("sum", _sum)
PROD = Op("prod", _prod)
MAX = Op("max", max)
MIN = Op("min", min)
