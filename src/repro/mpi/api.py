"""Message-level MPI engine: worlds, communicators, point-to-point.

Programs are generators receiving a :class:`Comm`; communication calls
are sub-generators (``yield from comm.recv(...)``), mirroring how MPJ
programs block inside library calls.

Example
-------
>>> def program(comm):
...     if comm.rank == 0:
...         yield from comm.send(1, {"a": 7}, size_bytes=64)
...     elif comm.rank == 1:
...         msg = yield from comm.recv(source=0)
...         return msg
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.net.topology import Host
from repro.net.transport import Message, Network
from repro.sim.core import Simulator
from repro.sim.process import Process

__all__ = ["ANY_SOURCE", "ANY_TAG", "MPIProcessFailure", "Comm", "MPIWorld"]

#: Wildcards, as in MPI.
ANY_SOURCE = -1
ANY_TAG = -1


class MPIProcessFailure(RuntimeError):
    """A rank's program raised or its host died."""


class Comm:
    """Communicator endpoint for one rank of one world.

    Point-to-point methods follow the mpi4py lowercase convention for
    object communication: ``send``/``recv``/``isend`` plus the
    collectives in :mod:`repro.mpi.collectives` (bound as methods).
    """

    def __init__(self, world: "MPIWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.host: Host = world.hosts[rank]
        self._coll_seq = 0  # aligned across ranks by SPMD call order

    # -- introspection -------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    def _port(self, rank: int) -> str:
        return self.world.port_of(rank)

    # -- point-to-point --------------------------------------------------------
    def isend(self, dest: int, payload: Any = None, size_bytes: int = 0,
              tag: int = 0) -> None:
        """Eager non-blocking send (buffered; returns immediately)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        self.world.network.send(
            self.host.name, self.world.hosts[dest].name,
            port=self._port(dest), kind="MPI",
            payload={"source": self.rank, "tag": tag, "data": payload},
            size_bytes=size_bytes,
        )

    def send(self, dest: int, payload: Any = None, size_bytes: int = 0,
             tag: int = 0) -> Generator:
        """Blocking-send semantics of the eager protocol: the local
        buffer copy costs one software overhead."""
        self.isend(dest, payload, size_bytes, tag)
        yield self.sim.timeout(self.world.network.sw_overhead_s)
        return None

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns ``(source, tag, data)``."""

        def match(msg: Message) -> bool:
            if msg.port != self._port(self.rank) or msg.kind != "MPI":
                return False
            if source != ANY_SOURCE and msg.payload["source"] != source:
                return False
            if tag != ANY_TAG and msg.payload["tag"] != tag:
                return False
            return True

        inbox = self.world.network.inbox(self.host.name)
        msg = yield inbox.get(match)
        return msg.payload["source"], msg.payload["tag"], msg.payload["data"]

    def sendrecv(self, dest: int, payload: Any, size_bytes: int,
                 source: int, tag: int = 0) -> Generator:
        """Simultaneous exchange (deadlock-free pairwise step)."""
        self.isend(dest, payload, size_bytes, tag)
        got = yield from self.recv(source=source, tag=tag)
        return got

    # -- collectives (bound from repro.mpi.collectives) ----------------------------
    def _next_coll_tag(self) -> int:
        """Collective calls use a reserved descending tag space; SPMD
        call order keeps the per-rank counters aligned."""
        self._coll_seq += 1
        return -1000 - self._coll_seq

    # populated at import time by repro.mpi.collectives
    barrier: Callable[..., Generator]
    bcast: Callable[..., Generator]
    reduce: Callable[..., Generator]
    allreduce: Callable[..., Generator]
    gather: Callable[..., Generator]
    scatter: Callable[..., Generator]
    allgather: Callable[..., Generator]
    alltoall: Callable[..., Generator]
    alltoallv: Callable[..., Generator]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm rank={self.rank}/{self.size} on {self.host.name}>"


class MPIWorld:
    """A set of ranks pinned to hosts, ready to run SPMD programs.

    Parameters
    ----------
    sim, network:
        Substrate (hosts are registered automatically).
    hosts:
        ``hosts[rank]`` is the host running that rank.  Build from an
        :class:`~repro.alloc.base.AllocationPlan` with
        :meth:`from_plan`.
    job_id:
        Namespace for the MPI ports (several worlds may coexist).
    """

    def __init__(self, sim: Simulator, network: Network, hosts: List[Host],
                 job_id: str = "job") -> None:
        if not hosts:
            raise ValueError("world needs at least one rank")
        self.sim = sim
        self.network = network
        self.hosts = list(hosts)
        self.job_id = job_id
        self.size = len(hosts)
        for host in self.hosts:
            network.register(host.name)
        self.comms = [Comm(self, rank) for rank in range(self.size)]
        self._procs: List[Optional[Process]] = [None] * self.size

    @classmethod
    def from_plan(cls, sim: Simulator, network: Network, plan,
                  job_id: str = "job", replica: int = 0) -> "MPIWorld":
        """World over one replica slice of an allocation plan."""
        chosen: Dict[int, Host] = {}
        for placement in plan.placements:
            if placement.replica == replica:
                chosen[placement.rank] = placement.host
        if len(chosen) != plan.n:
            raise ValueError(f"replica {replica} does not cover all ranks")
        return cls(sim, network, [chosen[r] for r in range(plan.n)], job_id)

    def port_of(self, rank: int) -> str:
        return f"mpi:{self.job_id}:{rank}"

    # -- running programs ------------------------------------------------------
    def spawn(self, program: Callable[[Comm], Generator]) -> List[Process]:
        """Start ``program(comm)`` on every rank."""
        procs = []
        for rank in range(self.size):
            proc = self.sim.process(program(self.comms[rank]))
            self._procs[rank] = proc
            procs.append(proc)
        return procs

    def run(self, program: Callable[[Comm], Generator],
            limit_s: float = 1e6) -> List[Any]:
        """Spawn, run to completion, return per-rank results.

        Raises
        ------
        MPIProcessFailure
            If any rank's program raised.
        """
        procs = self.spawn(program)
        done = self.sim.all_of(procs)
        try:
            self.sim.run_until_complete(done, limit=self.sim.now + limit_s)
        except Exception as exc:
            raise MPIProcessFailure(f"world {self.job_id}: {exc}") from exc
        return [proc.value for proc in procs]
