"""MPJ-like message-passing library over the simulated network.

P2P-MPI's second facet (§3.1) is an MPJ communication library "quite
close to the original MPI specification".  We provide, following the
mpi4py lowercase-method convention for object communication:

* a **message-level engine** (:class:`~repro.mpi.api.MPIWorld` /
  :class:`~repro.mpi.api.Comm`): real simulated sends and receives,
  collectives built from point-to-point algorithms (binomial trees,
  ring allgather, pairwise alltoall).  Semantically exact — collectives
  return real reduced values — and used for correctness tests and
  examples at small process counts.
* an **analytic cost model** (:class:`~repro.mpi.costmodel.CollectiveCostModel`):
  closed-form execution-time formulas mirroring the same algorithms,
  vectorised by site, used by the NAS application models at the
  paper's scales (up to 600 processes).

``tests/mpi/test_costmodel.py`` cross-validates the two.
"""

from repro.mpi.datatypes import BYTE, DOUBLE, FLOAT, INT, LONG, Op, MAX, MIN, PROD, SUM
from repro.mpi.api import Comm, MPIWorld, MPIProcessFailure
import repro.mpi.collectives  # noqa: F401  (binds collective methods on Comm)
from repro.mpi.costmodel import (CollectiveCostModel, CostParams, GroupLayout,
                                 KernelStats)

__all__ = [
    "BYTE", "INT", "LONG", "FLOAT", "DOUBLE",
    "Op", "SUM", "PROD", "MAX", "MIN",
    "Comm", "MPIWorld", "MPIProcessFailure",
    "CollectiveCostModel", "CostParams", "GroupLayout", "KernelStats",
]
