"""Closed-form collective cost model (the scale path).

At the paper's scales (up to 600 processes) simulating every message of
every NAS iteration would cost O(p^2) events per alltoall; instead the
application models evaluate these closed forms, which mirror the exact
algorithms of :mod:`repro.mpi.collectives`:

* point-to-point: ``latency + overheads + bytes * (ser + 8/bw_eff)``;
* binomial trees: per-round max edge cost, summed over rounds;
* dissemination barrier: likewise;
* pairwise alltoall(v): per-rank sum over partners, max over ranks.

Effective bandwidth accounts for NIC sharing between co-located
processes and WAN *backbone* sharing between concurrent flows — the
two contention effects the paper's Figure 4 analysis invokes.  The
backbone share is plan-dependent (``CostParams.wan_contention ==
"plan"``, the default): each site-pair link divides among the
placement's own concurrent crossing pairs, the same counts
:mod:`repro.net.contention` feeds the allocation scores.  The
``"fixed"`` mode replays the deprecated constant-16 divisor (the fig4
calibration suite pins that it does *not* reproduce the paper's IS
crossover) and ``"none"`` the pre-calibration behaviour (NIC-clamped
path divided by flows, no backbone pooling).

``CostParams.msg_fixed_s`` and ``ser_per_byte_s`` model the Java/MPJ
per-message serialization overheads of the 2008 runtime; they are the
main calibration knobs for absolute IS/EP times (see DESIGN.md §5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.net.contention import WAN_CONTENTION_FACTOR
from repro.net.topology import Host, Topology

__all__ = ["CostParams", "GroupLayout", "CollectiveCostModel",
           "WAN_CONTENTION_MODES"]

#: Valid ``CostParams.wan_contention`` settings.
WAN_CONTENTION_MODES = ("plan", "fixed", "none")


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the communication cost model.

    Attributes
    ----------
    sw_overhead_s:
        Kernel/syscall overhead per message.
    msg_fixed_s:
        Fixed runtime cost per *large* message (MPJ buffered path:
        serialization setup, buffer copies, TCP segmentation).  The IS
        calibration sets ~3.5 ms.
    msg_fixed_small_s:
        Fixed cost per *small* message (eager path); EP's one-double
        allreduces ride this.
    eager_threshold_bytes:
        Boundary between the two paths.
    ser_per_byte_s:
        Per-byte (de)serialization cost.
    wan_extra_s:
        Extra fixed cost per WAN message (TCP windows over long RTT).
    nic_share:
        Divide LAN bandwidth by the number of co-located processes.
    wan_contention:
        How cross-site flows share the site backbone: ``"plan"``
        (default) divides each backbone by the layout's own concurrent
        crossing-pair count, ``"fixed"`` by the deprecated
        :data:`~repro.net.contention.WAN_CONTENTION_FACTOR`, and
        ``"none"`` restores the pre-calibration behaviour (the
        NIC-clamped path rate divided by flows in alltoall only).
    """

    sw_overhead_s: float = 20e-6
    msg_fixed_s: float = 0.0
    msg_fixed_small_s: float = 0.0
    eager_threshold_bytes: int = 6144
    ser_per_byte_s: float = 0.0
    wan_extra_s: float = 0.0
    nic_share: bool = True
    wan_contention: str = "plan"

    def __post_init__(self) -> None:
        if self.wan_contention not in WAN_CONTENTION_MODES:
            raise ValueError(
                f"wan_contention must be one of {WAN_CONTENTION_MODES}, "
                f"got {self.wan_contention!r}")

    def fixed_cost_s(self, nbytes: int) -> float:
        """Per-message runtime cost for a message of ``nbytes``."""
        if nbytes <= self.eager_threshold_bytes:
            return self.msg_fixed_small_s
        return self.msg_fixed_s


class GroupLayout:
    """Precomputed structure of one process group (rank -> host).

    Exposes per-rank site indices, co-location counts and the site-level
    one-way latency matrix, so collective formulas are O(p * n_sites).
    """

    def __init__(self, hosts: Sequence[Host], topology: Topology) -> None:
        if not hosts:
            raise ValueError("empty process group")
        self.hosts = list(hosts)
        self.topology = topology
        self.p = len(hosts)
        site_names = sorted({h.site for h in hosts})
        self.site_names = site_names
        self.site_of: Dict[str, int] = {s: i for i, s in enumerate(site_names)}
        self.rank_site = np.array([self.site_of[h.site] for h in hosts])
        self.site_counts = np.bincount(self.rank_site, minlength=len(site_names))
        per_host = Counter(h.name for h in hosts)
        #: Processes co-located with each rank (including itself).
        self.colocated = np.array([per_host[h.name] for h in hosts])
        # One-way latency between sites, seconds.
        n = len(site_names)
        self.oneway_s = np.zeros((n, n))
        for i, a in enumerate(site_names):
            for j, b in enumerate(site_names):
                self.oneway_s[i, j] = topology.site_rtt_ms(a, b) / 2.0 / 1000.0
        # WAN capacity between sites, bit/s (LAN on the diagonal).
        # ``bw_bps`` is the NIC-clamped *path* rate one flow can reach;
        # ``backbone_bps`` the pooled site-link capacity all crossing
        # flows divide (repro.net.contention's quantity).
        self.bw_bps = np.zeros((n, n))
        self.backbone_bps = np.zeros((n, n))
        for i, a in enumerate(site_names):
            for j, b in enumerate(site_names):
                if a == b:
                    self.bw_bps[i, j] = topology.lan_bw_bps
                    self.backbone_bps[i, j] = topology.lan_bw_bps
                else:
                    ha = topology.hosts_in_site(a)[0]
                    hb = topology.hosts_in_site(b)[0]
                    self.bw_bps[i, j] = topology.bandwidth_bps(ha, hb)
                    self.backbone_bps[i, j] = \
                        topology.backbone_bandwidth_bps(ha, hb)
        # Concurrent crossing pairs per site-pair backbone: the
        # dominant-collective concurrency bound min(n_a, n_b) — the
        # plan-dependent divisor of the "plan" contention mode.
        counts = self.site_counts
        self.wan_flows = np.minimum.outer(counts, counts)

    def apply_copy_counts(self, copies: Mapping[str, int]) -> None:
        """Recount WAN contention from the plan's full copy census.

        ``copies`` maps host name -> process copies of the *whole*
        plan (every rank, every replica, co-scheduled jobs included if
        the caller knows them).  A replicated job runs its replicas'
        collectives concurrently, so the backbone divisor must see all
        of them — the same widening the ``colocated`` override applies
        to the NIC divisor (see ``Application.run_time``).  The
        layout's own ranks always stay counted.
        """
        totals = np.zeros(len(self.site_names), dtype=np.int64)
        for name, count in copies.items():
            host = self.topology.hosts.get(name)
            if host is None:
                continue
            idx = self.site_of.get(host.site)
            if idx is not None:
                totals[idx] += int(count)
        totals = np.maximum(totals, self.site_counts)
        self.wan_flows = np.minimum.outer(totals, totals)

    def wan_share_bps(self, si: int, sj: int, params: CostParams) -> float:
        """Per-flow share of the ``si``<->``sj`` backbone under
        ``params.wan_contention`` (``inf`` when unshared or LAN)."""
        if si == sj:
            return float("inf")
        backbone = self.backbone_bps[si, sj]
        if params.wan_contention == "plan":
            return backbone / max(1, int(self.wan_flows[si, sj]))
        if params.wan_contention == "fixed":
            return backbone / WAN_CONTENTION_FACTOR
        return float("inf")  # "none": backbone never pooled

    @property
    def max_colocated(self) -> int:
        return int(self.colocated.max())

    def sites_used(self) -> List[str]:
        return [s for s, c in zip(self.site_names, self.site_counts) if c > 0]


class CollectiveCostModel:
    """Evaluates collective execution times for a :class:`GroupLayout`."""

    def __init__(self, topology: Topology, params: CostParams = CostParams()) -> None:
        self.topology = topology
        self.params = params

    def layout(self, hosts: Sequence[Host]) -> GroupLayout:
        return GroupLayout(hosts, self.topology)

    # -- point-to-point ---------------------------------------------------------
    def p2p_time(self, layout: GroupLayout, src: int, dst: int,
                 nbytes: int) -> float:
        """Modelled transfer time between two ranks of the group."""
        if src == dst:
            return self.params.sw_overhead_s
        pa = self.params
        same_host = layout.hosts[src].name == layout.hosts[dst].name
        si, sj = layout.rank_site[src], layout.rank_site[dst]
        lat = 0.0 if same_host else layout.oneway_s[si, sj]
        cost = lat + pa.sw_overhead_s + pa.fixed_cost_s(nbytes)
        if si != sj:
            cost += pa.wan_extra_s
        if nbytes > 0 and not same_host:
            bw = layout.bw_bps[si, sj]
            if pa.nic_share:
                share = max(layout.colocated[src], layout.colocated[dst])
                bw = bw / share
            if si != sj:
                # The plan's other crossing flows pool the backbone;
                # collective rounds run concurrently, so every edge
                # sees its contended share, not the idle path.
                bw = min(bw, layout.wan_share_bps(si, sj, pa))
            cost += nbytes * (pa.ser_per_byte_s + 8.0 / bw)
        elif nbytes > 0:
            cost += nbytes * pa.ser_per_byte_s
        return float(cost)

    # -- tree / dissemination collectives -------------------------------------------
    def _round_edges_barrier(self, p: int) -> List[List[Tuple[int, int]]]:
        rounds = []
        k = 1
        while k < p:
            rounds.append([(i, (i + k) % p) for i in range(p)])
            k <<= 1
        return rounds

    def barrier_time(self, layout: GroupLayout) -> float:
        """Dissemination barrier: sum over rounds of the slowest edge."""
        total = 0.0
        for edges in self._round_edges_barrier(layout.p):
            total += max(self.p2p_time(layout, i, j, 32) for i, j in edges)
        return total

    def _binomial_rounds(self, p: int, root: int) -> List[List[Tuple[int, int]]]:
        """Edges (parent -> child) per round of a binomial bcast."""
        rounds = []
        mask = 1
        while mask < p:
            mask <<= 1
        mask >>= 1
        while mask > 0:
            edges = []
            for rel in range(0, p, mask << 1 if mask else 1):
                # sender rel transmits to rel+mask in this round
                if rel + mask < p:
                    src = (rel + root) % p
                    dst = (rel + mask + root) % p
                    edges.append((src, dst))
            if edges:
                rounds.append(edges)
            mask >>= 1
        return rounds

    def bcast_time(self, layout: GroupLayout, nbytes: int,
                   root: int = 0) -> float:
        """Binomial broadcast: per-round max edge, summed."""
        total = 0.0
        for edges in self._binomial_rounds(layout.p, root):
            total += max(self.p2p_time(layout, i, j, nbytes) for i, j in edges)
        return total

    def reduce_time(self, layout: GroupLayout, nbytes: int,
                    root: int = 0) -> float:
        """Binomial fan-in mirrors the broadcast tree."""
        return self.bcast_time(layout, nbytes, root=root)

    def allreduce_time(self, layout: GroupLayout, nbytes: int) -> float:
        """Recursive doubling, mirroring the message-level engine.

        ``ceil(log2 pof2)`` exchange rounds (each priced at its slowest
        edge) plus a fold-in and fold-out round for non-power-of-two
        sizes.
        """
        p = layout.p
        if p == 1:
            return self.params.sw_overhead_s
        pof2 = 1 << (p.bit_length() - 1)
        if pof2 > p:  # pragma: no cover - bit_length guards this
            pof2 >>= 1
        rem = p - pof2
        total = 0.0
        if rem:
            fold = max(
                self.p2p_time(layout, 2 * i + 1, 2 * i, nbytes)
                for i in range(rem)
            )
            total += 2 * fold  # fold in + fold out

        def real(vrank: int) -> int:
            return 2 * vrank if vrank < rem else vrank + rem

        mask = 1
        while mask < pof2:
            total += max(
                self.p2p_time(layout, real(v), real(v ^ mask), nbytes)
                for v in range(pof2)
            )
            mask <<= 1
        return total

    def gather_time(self, layout: GroupLayout, nbytes: int,
                    root: int = 0) -> float:
        """Linear gather: root drains p-1 messages."""
        pa = self.params
        if layout.p == 1:
            return pa.sw_overhead_s
        lat = max(
            self.p2p_time(layout, i, root, 0)
            for i in range(layout.p) if i != root
        )
        per_msg = (pa.sw_overhead_s + pa.fixed_cost_s(nbytes)
                   + nbytes * pa.ser_per_byte_s)
        return lat + (layout.p - 1) * per_msg + self._serial_bytes_time(
            layout, root, nbytes * (layout.p - 1)
        )

    def _serial_bytes_time(self, layout: GroupLayout, rank: int,
                           nbytes: int) -> float:
        bw = layout.bw_bps[layout.rank_site[rank], layout.rank_site[rank]]
        if self.params.nic_share:
            bw /= layout.colocated[rank]
        return nbytes * 8.0 / bw

    # -- pairwise exchange ------------------------------------------------------------
    def alltoall_time(self, layout: GroupLayout, bytes_per_pair: int) -> float:
        """Pairwise alltoall: slowest rank's sum over its partners.

        Vectorised by site: a rank's partner mix is the site population,
        corrected for same-host partners (zero latency, no NIC transit).
        """
        return self.alltoallv_time(layout, bytes_per_pair)

    def alltoallv_time(self, layout: GroupLayout, bytes_per_pair: int) -> float:
        pa = self.params
        p = layout.p
        if p == 1:
            return pa.sw_overhead_s
        n_sites = len(layout.site_names)
        # unit[s, s'] = cost of one message between sites s and s'.
        unit = np.zeros((n_sites, n_sites))
        fixed = pa.fixed_cost_s(bytes_per_pair)
        for si in range(n_sites):
            for sj in range(n_sites):
                cost = layout.oneway_s[si, sj] + pa.sw_overhead_s + fixed
                if si != sj:
                    cost += pa.wan_extra_s
                if bytes_per_pair > 0:
                    cost += bytes_per_pair * pa.ser_per_byte_s
                unit[si, sj] = cost
        # Bandwidth term is added per rank below (depends on colocation).
        wire = self._alltoallv_wire_per_rank(layout, bytes_per_pair)
        per_rank = np.zeros(p)
        for i in range(p):
            si = layout.rank_site[i]
            counts = layout.site_counts.astype(float).copy()
            counts[si] -= 1  # exclude self
            total = float(np.dot(counts, unit[si])) + wire[i]
            # Same-host partners: no wire, only overheads (already in
            # `unit` diagonal via latency=LAN; subtract the LAN latency
            # for the (colocated-1) same-host partners — also for
            # zero-byte exchanges, else cost(0) exceeds cost(1)).
            k = layout.colocated[i] - 1
            if k > 0:
                total -= k * layout.oneway_s[si, si]
            per_rank[i] = total
        return float(per_rank.max())

    def _alltoallv_wire_per_rank(self, layout: GroupLayout,
                                 bytes_per_pair: int) -> np.ndarray:
        """Per-rank bytes-on-the-wire seconds of one alltoall(v).

        The bandwidth-dependent component only — no latency, fixed or
        serialization overheads — under the configured NIC and WAN
        contention modes.  Same-host partners never touch the wire.
        """
        pa = self.params
        p = layout.p
        out = np.zeros(p)
        if bytes_per_pair <= 0:
            return out
        n_sites = len(layout.site_names)
        for i in range(p):
            si = layout.rank_site[i]
            counts = layout.site_counts.astype(float).copy()
            counts[si] -= 1  # exclude self
            total = 0.0
            for sj in range(n_sites):
                c = counts[sj]
                if c <= 0:
                    continue
                bw = layout.bw_bps[si, sj]
                if pa.nic_share:
                    bw = bw / layout.colocated[i]
                if si != sj:
                    if pa.wan_contention == "none":
                        # Legacy: the NIC-clamped path rate divided by
                        # the concurrent cross flows.
                        flows = min(layout.site_counts[si],
                                    layout.site_counts[sj])
                        bw = min(bw, layout.bw_bps[si, sj] / max(1, flows))
                    else:
                        # Calibrated: the *backbone* pools across the
                        # plan's crossing pairs ("plan") or the fixed
                        # divisor ("fixed"); a lone flow stays NIC-bound.
                        bw = min(bw, layout.wan_share_bps(si, sj, pa))
                total += c * bytes_per_pair * 8.0 / bw
            # Same-host partners never touch the wire: back out the
            # (colocated-1) LAN-priced shares the loop charged them.
            k = layout.colocated[i] - 1
            if k > 0:
                total -= k * bytes_per_pair * 8.0 / (
                    layout.bw_bps[si, si]
                    / (layout.colocated[i] if pa.nic_share else 1)
                )
            out[i] = total
        return out

    def alltoallv_transfer_time(self, layout: GroupLayout,
                                bytes_per_pair: int) -> float:
        """Slowest rank's pure wire time for one alltoall(v) exchange.

        The fig4 calibration quantity: per-message fixed and latency
        overheads are identical constants under every contention mode,
        so the wire time is where the plan-dependent backbone share
        shows (see DESIGN.md §10).
        """
        if layout.p == 1:
            return 0.0
        return float(self._alltoallv_wire_per_rank(
            layout, bytes_per_pair).max())

    # -- convenience ---------------------------------------------------------------
    def describe(self, layout: GroupLayout) -> str:
        sites = ", ".join(
            f"{s}:{c}" for s, c in zip(layout.site_names, layout.site_counts) if c
        )
        return f"p={layout.p} over [{sites}], max colocated={layout.max_colocated}"
