"""Closed-form collective cost model (the scale path).

At the paper's scales (up to 600 processes) simulating every message of
every NAS iteration would cost O(p^2) events per alltoall; instead the
application models evaluate these closed forms, which mirror the exact
algorithms of :mod:`repro.mpi.collectives`:

* point-to-point: ``latency + overheads + bytes * (ser + 8/bw_eff)``;
* binomial trees: per-round max edge cost, summed over rounds;
* dissemination barrier: likewise;
* pairwise alltoall(v): per-rank sum over partners, max over ranks.

Effective bandwidth accounts for NIC sharing between co-located
processes and WAN *backbone* sharing between concurrent flows — the
two contention effects the paper's Figure 4 analysis invokes.  The
backbone share is plan-dependent (``CostParams.wan_contention ==
"plan"``, the default): each site-pair link divides among the
placement's own concurrent crossing pairs, the same counts
:mod:`repro.net.contention` feeds the allocation scores.  The
``"fixed"`` mode replays the deprecated constant-16 divisor (the fig4
calibration suite pins that it does *not* reproduce the paper's IS
crossover) and ``"none"`` the pre-calibration behaviour (NIC-clamped
path divided by flows, no backbone pooling).

``CostParams.msg_fixed_s`` and ``ser_per_byte_s`` model the Java/MPJ
per-message serialization overheads of the 2008 runtime; they are the
main calibration knobs for absolute IS/EP times (see DESIGN.md §5).

Kernel paths (DESIGN.md §11)
----------------------------
Every collective has two implementations selected by
``CostParams.kernel``:

* ``"vector"`` (default): :meth:`CollectiveCostModel.pairwise_times`
  builds the full rank x rank p2p cost matrix once per message size
  (memoized on the layout, keyed by the mutable contention state) and
  each round's max is one fancy-indexed reduction over precomputed,
  LRU-cached edge-index arrays.  The alltoall(v) rank loop collapses
  to one evaluation per distinct ``(site, colocated)`` combination.
* ``"reference"``: the original scalar per-edge loops, retained
  verbatim as the equivalence oracle and bench baseline.

Both paths share the same scalar arithmetic bodies and summation order
(per-round max, then left-to-right sum), so they agree bit for bit —
pinned by ``tests/mpi/test_kernel_equivalence.py``.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, fields as _dataclass_fields
from functools import lru_cache
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.net.contention import WAN_CONTENTION_FACTOR
from repro.net.topology import Host, Topology

__all__ = ["CostParams", "GroupLayout", "CollectiveCostModel",
           "KernelStats", "WAN_CONTENTION_MODES", "KERNEL_MODES"]

#: Valid ``CostParams.wan_contention`` settings.
WAN_CONTENTION_MODES = ("plan", "fixed", "none")

#: Valid ``CostParams.kernel`` settings: ``"vector"`` prices rounds from
#: cached rank x rank cost matrices, ``"reference"`` replays the scalar
#: per-edge loops.  Bit-exact against each other by construction.
KERNEL_MODES = ("vector", "reference")

#: Layout templates memoized per topology (keyed by the ordered host
#: name tuple — rank order matters to every collective).
LAYOUT_MEMO_SIZE = 32

#: Rank x rank cost matrices memoized per layout template (keyed by
#: message size, params and the mutable contention state).
PAIRWISE_MEMO_SIZE = 8


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the communication cost model.

    Attributes
    ----------
    sw_overhead_s:
        Kernel/syscall overhead per message.
    msg_fixed_s:
        Fixed runtime cost per *large* message (MPJ buffered path:
        serialization setup, buffer copies, TCP segmentation).  The IS
        calibration sets ~3.5 ms.
    msg_fixed_small_s:
        Fixed cost per *small* message (eager path); EP's one-double
        allreduces ride this.
    eager_threshold_bytes:
        Boundary between the two paths.
    ser_per_byte_s:
        Per-byte (de)serialization cost.
    wan_extra_s:
        Extra fixed cost per WAN message (TCP windows over long RTT).
    nic_share:
        Divide LAN bandwidth by the number of co-located processes.
    wan_contention:
        How cross-site flows share the site backbone: ``"plan"``
        (default) divides each backbone by the layout's own concurrent
        crossing-pair count, ``"fixed"`` by the deprecated
        :data:`~repro.net.contention.WAN_CONTENTION_FACTOR`, and
        ``"none"`` restores the pre-calibration behaviour (the
        NIC-clamped path rate divided by flows in alltoall only).
    kernel:
        Evaluation path: ``"vector"`` (default, matrix kernels) or
        ``"reference"`` (scalar per-edge loops).  Both produce
        bit-identical times; the switch exists for the equivalence
        suite and the perf-trajectory benchmarks.
    """

    sw_overhead_s: float = 20e-6
    msg_fixed_s: float = 0.0
    msg_fixed_small_s: float = 0.0
    eager_threshold_bytes: int = 6144
    ser_per_byte_s: float = 0.0
    wan_extra_s: float = 0.0
    nic_share: bool = True
    wan_contention: str = "plan"
    kernel: str = "vector"

    def __post_init__(self) -> None:
        if self.wan_contention not in WAN_CONTENTION_MODES:
            raise ValueError(
                f"wan_contention must be one of {WAN_CONTENTION_MODES}, "
                f"got {self.wan_contention!r}")
        if self.kernel not in KERNEL_MODES:
            raise ValueError(
                f"kernel must be one of {KERNEL_MODES}, "
                f"got {self.kernel!r}")

    def fixed_cost_s(self, nbytes: int) -> float:
        """Per-message runtime cost for a message of ``nbytes``."""
        if nbytes <= self.eager_threshold_bytes:
            return self.msg_fixed_small_s
        return self.msg_fixed_s


@dataclass
class KernelStats:
    """Deterministic work counters of one :class:`CollectiveCostModel`.

    These are the hard currency of the perf trajectory
    (``benchmarks/test_bench_kernels.py``): timing is machine-dependent
    and informational, but the number of scalar p2p evaluations, matrix
    builds and layout constructions a campaign performs is exact and
    CI-comparable across PRs.
    """

    p2p_calls: int = 0            # scalar p2p_time invocations
    p2p_edges_vectorized: int = 0  # edges priced via matrix reductions
    pairwise_builds: int = 0       # rank x rank matrices constructed
    pairwise_hits: int = 0         # matrix memo hits
    alltoallv_rank_evals: int = 0  # scalar per-rank wire evaluations
    alltoallv_combo_evals: int = 0  # deduped (site, colocated) evals
    layout_builds: int = 0         # GroupLayout constructions
    layout_cache_hits: int = 0     # layout memo hits

    def reset(self) -> None:
        for f in _dataclass_fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name)
                for f in _dataclass_fields(self)}


# -- cached edge-index arrays -------------------------------------------------
# The round structure of every tree/dissemination collective depends
# only on (p, root), never on the layout — so the per-round edge lists
# are built once, converted to index arrays, and shared process-wide.

def _barrier_rounds(p: int) -> List[List[Tuple[int, int]]]:
    rounds = []
    k = 1
    while k < p:
        rounds.append([(i, (i + k) % p) for i in range(p)])
        k <<= 1
    return rounds


def _binomial_round_edges(p: int, root: int) -> List[List[Tuple[int, int]]]:
    """Edges (parent -> child) per round of a binomial bcast."""
    rounds = []
    mask = 1
    while mask < p:
        mask <<= 1
    mask >>= 1
    while mask > 0:
        edges = []
        for rel in range(0, p, mask << 1 if mask else 1):
            # sender rel transmits to rel+mask in this round
            if rel + mask < p:
                src = (rel + root) % p
                dst = (rel + mask + root) % p
                edges.append((src, dst))
        if edges:
            rounds.append(edges)
        mask >>= 1
    return rounds


def _rounds_to_arrays(rounds: List[List[Tuple[int, int]]]
                      ) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    return tuple(
        (np.array([e[0] for e in edges], dtype=np.intp),
         np.array([e[1] for e in edges], dtype=np.intp))
        for edges in rounds)


@lru_cache(maxsize=1024)
def _barrier_edge_arrays(p: int) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    return _rounds_to_arrays(_barrier_rounds(p))


@lru_cache(maxsize=1024)
def _binomial_edge_arrays(p: int, root: int
                          ) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    return _rounds_to_arrays(_binomial_round_edges(p, root))


@lru_cache(maxsize=1024)
def _allreduce_edge_arrays(p: int):
    """Recursive-doubling edge arrays: (fold pair or None, rounds)."""
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    fold = None
    if rem:
        # p2p(2i+1, 2i) for i in range(rem)
        fold = (np.arange(1, 2 * rem, 2, dtype=np.intp),
                np.arange(0, 2 * rem, 2, dtype=np.intp))
    real = np.array([2 * v if v < rem else v + rem for v in range(pof2)],
                    dtype=np.intp)
    rounds = []
    mask = 1
    while mask < pof2:
        v = np.arange(pof2)
        rounds.append((real[v], real[v ^ mask]))
        mask <<= 1
    return fold, tuple(rounds)


@lru_cache(maxsize=1024)
def _ring_edge_arrays(p: int) -> Tuple[np.ndarray, np.ndarray]:
    src = np.arange(p, dtype=np.intp)
    return src, (src + 1) % p


def _rank_combo_index(layout: "GroupLayout"):
    """Distinct (site, colocated) combinations across the ranks.

    Every per-rank alltoall(v) quantity depends on the rank only
    through its site index and co-location count, so the p-rank loop
    reduces to one evaluation per distinct combination.  Returns
    ``(combos, first, inverse)``: the combination list, the first rank
    index carrying each combination, and each rank's combo index.
    """
    m = int(layout.colocated.max()) + 1
    codes = layout.rank_site * m + layout.colocated
    uniq, first, inverse = np.unique(codes, return_index=True,
                                     return_inverse=True)
    combos = [(int(c) // m, int(c) % m) for c in uniq]
    return combos, first, inverse


class GroupLayout:
    """Precomputed structure of one process group (rank -> host).

    Exposes per-rank site indices, co-location counts and the site-level
    one-way latency matrix, so collective formulas are O(p * n_sites).
    The site matrices (``oneway_s`` / ``bw_bps`` / ``backbone_bps``)
    are read-only views shared through the owning topology's memo —
    they depend only on the site set, never on the plan.  The mutable
    contention state (``colocated``, ``wan_flows``) is private to each
    instance.
    """

    def __init__(self, hosts: Sequence[Host], topology: Topology) -> None:
        if not hosts:
            raise ValueError("empty process group")
        self.hosts = list(hosts)
        self.topology = topology
        self.p = len(hosts)
        site_names = sorted({h.site for h in hosts})
        self.site_names = site_names
        self.site_of: Dict[str, int] = {s: i for i, s in enumerate(site_names)}
        self.rank_site = np.array([self.site_of[h.site] for h in hosts])
        self.site_counts = np.bincount(self.rank_site, minlength=len(site_names))
        per_host = Counter(h.name for h in hosts)
        #: Processes co-located with each rank (including itself).
        self.colocated = np.array([per_host[h.name] for h in hosts])
        # Distinct-host index per rank: the vector kernel's same-host
        # mask is ``host_index[i] == host_index[j]``.
        host_ids: Dict[str, int] = {}
        self.host_index = np.array(
            [host_ids.setdefault(h.name, len(host_ids)) for h in hosts],
            dtype=np.intp)
        # Site-level latency/bandwidth matrices, memoized on the
        # topology: one-way seconds, NIC-clamped path rate, and the
        # pooled backbone capacity (repro.net.contention's quantity).
        self.oneway_s, self.bw_bps, self.backbone_bps = \
            topology.site_matrices(tuple(site_names))
        # Concurrent crossing pairs per site-pair backbone: the
        # dominant-collective concurrency bound min(n_a, n_b) — the
        # plan-dependent divisor of the "plan" contention mode.
        counts = self.site_counts
        self.wan_flows = np.minimum.outer(counts, counts)
        #: rank x rank cost-matrix memo, shared with clones.  Keys
        #: embed the mutable contention state, so callers may mutate
        #: ``colocated``/``wan_flows`` freely without invalidation.
        self._pairwise_memo: "OrderedDict" = OrderedDict()
        #: Routed topologies: per-flow share matrices memoized by the
        #: census state (the ``wan_flows`` diagonal *is* the per-site
        #: totals, so the same key covers ``apply_copy_counts``).
        self._routed_share_memo: Dict[bytes, np.ndarray] = {}

    def _clone(self) -> "GroupLayout":
        """Cheap copy for the layout memo: shares every immutable site
        matrix (and the state-keyed pairwise memo) but owns fresh
        mutable contention arrays, so one cached template serves
        callers that rebind ``colocated`` or call
        :meth:`apply_copy_counts`."""
        twin = object.__new__(GroupLayout)
        twin.__dict__.update(self.__dict__)
        twin.colocated = self.colocated.copy()
        twin.wan_flows = self.wan_flows.copy()
        return twin

    def _mutation_key(self) -> Tuple[bytes, bytes]:
        """The mutable contention state, as a hashable memo key."""
        return (self.colocated.tobytes(), self.wan_flows.tobytes())

    def apply_copy_counts(self, copies: Mapping[str, int]) -> None:
        """Recount WAN contention from the plan's full copy census.

        ``copies`` maps host name -> process copies of the *whole*
        plan (every rank, every replica, co-scheduled jobs included if
        the caller knows them).  A replicated job runs its replicas'
        collectives concurrently, so the backbone divisor must see all
        of them — the same widening the ``colocated`` override applies
        to the NIC divisor (see ``Application.run_time``).  The
        layout's own ranks always stay counted.
        """
        totals = np.zeros(len(self.site_names), dtype=np.int64)
        for name, count in copies.items():
            host = self.topology.hosts.get(name)
            if host is None:
                continue
            idx = self.site_of.get(host.site)
            if idx is not None:
                totals[idx] += int(count)
        totals = np.maximum(totals, self.site_counts)
        self.wan_flows = np.minimum.outer(totals, totals)

    def _routed_plan_shares(self) -> np.ndarray:
        """Site x site per-flow share on a *routed* topology.

        Mirrors :mod:`repro.net.contention`'s per-link model: each
        populated site pair's ``min(n_a, n_b)`` flows load every link
        on its shortest-RTT route, and a pair's share is the narrowest
        per-flow slice along its own route.  The site totals are read
        off the ``wan_flows`` diagonal (``min(n, n) == n``), so the
        matrix follows :meth:`apply_copy_counts` and any caller
        rebinding ``wan_flows`` without extra bookkeeping.  Memoized
        per census state, shared across clones.
        """
        key = self.wan_flows.tobytes()
        cached = self._routed_share_memo.get(key)
        if cached is not None:
            return cached
        topo = self.topology
        names = self.site_names
        totals = np.diagonal(self.wan_flows)
        n = len(names)
        loads: Dict[Tuple[str, str], int] = {}
        for i in range(n):
            for j in range(i + 1, n):
                flows = int(min(totals[i], totals[j]))
                if not flows:
                    continue
                for link in topo.route_links(names[i], names[j]):
                    loads[link] = loads.get(link, 0) + flows
        share = np.full((n, n), np.inf)
        for i in range(n):
            for j in range(i + 1, n):
                val = min(
                    topo.link_bandwidth_bps(link) / max(1, loads.get(link, 0))
                    for link in topo.route_links(names[i], names[j]))
                share[i, j] = share[j, i] = val
        share.setflags(write=False)
        self._routed_share_memo[key] = share
        return share

    def wan_share_bps(self, si: int, sj: int, params: CostParams) -> float:
        """Per-flow share of the ``si``<->``sj`` backbone under
        ``params.wan_contention`` (``inf`` when unshared or LAN)."""
        if si == sj:
            return float("inf")
        backbone = self.backbone_bps[si, sj]
        if params.wan_contention == "plan":
            if self.topology.routed:
                return float(self._routed_plan_shares()[si, sj])
            return backbone / max(1, int(self.wan_flows[si, sj]))
        if params.wan_contention == "fixed":
            return backbone / WAN_CONTENTION_FACTOR
        return float("inf")  # "none": backbone never pooled

    def wan_share_matrix(self, params: CostParams) -> np.ndarray:
        """Site x site per-flow backbone share under ``params``; the
        elementwise (bit-exact) batch form of :meth:`wan_share_bps`."""
        n = len(self.site_names)
        if params.wan_contention == "plan":
            if self.topology.routed:
                return self._routed_plan_shares()  # inf diagonal built in
            share = self.backbone_bps / np.maximum(1, self.wan_flows)
        elif params.wan_contention == "fixed":
            share = self.backbone_bps / WAN_CONTENTION_FACTOR
        else:
            share = np.full((n, n), np.inf)
        np.fill_diagonal(share, np.inf)
        return share

    @property
    def max_colocated(self) -> int:
        return int(self.colocated.max())

    def sites_used(self) -> List[str]:
        return [s for s, c in zip(self.site_names, self.site_counts) if c > 0]


class CollectiveCostModel:
    """Evaluates collective execution times for a :class:`GroupLayout`."""

    def __init__(self, topology: Topology, params: CostParams = CostParams()) -> None:
        self.topology = topology
        self.params = params
        self.stats = KernelStats()

    def layout(self, hosts: Sequence[Host]) -> GroupLayout:
        """Build a group layout, memoized per topology.

        Keyed by the *ordered* host-name tuple (rank order matters to
        every collective); hits return a cheap clone whose mutable
        contention arrays are private to the caller.
        """
        memo = self.topology.layout_memo
        key = tuple(h.name for h in hosts)
        template = memo.get(key)
        if template is not None:
            memo.move_to_end(key)
            self.stats.layout_cache_hits += 1
            return template._clone()
        template = GroupLayout(hosts, self.topology)
        self.stats.layout_builds += 1
        memo[key] = template
        while len(memo) > LAYOUT_MEMO_SIZE:
            memo.popitem(last=False)
        return template._clone()

    # -- point-to-point ---------------------------------------------------------
    def p2p_time(self, layout: GroupLayout, src: int, dst: int,
                 nbytes: int) -> float:
        """Modelled transfer time between two ranks of the group."""
        self.stats.p2p_calls += 1
        if src == dst:
            return self.params.sw_overhead_s
        pa = self.params
        same_host = layout.hosts[src].name == layout.hosts[dst].name
        si, sj = layout.rank_site[src], layout.rank_site[dst]
        lat = 0.0 if same_host else layout.oneway_s[si, sj]
        cost = lat + pa.sw_overhead_s + pa.fixed_cost_s(nbytes)
        if si != sj:
            cost += pa.wan_extra_s
        if nbytes > 0 and not same_host:
            bw = layout.bw_bps[si, sj]
            if pa.nic_share:
                share = max(layout.colocated[src], layout.colocated[dst])
                bw = bw / share
            if si != sj:
                # The plan's other crossing flows pool the backbone;
                # collective rounds run concurrently, so every edge
                # sees its contended share, not the idle path.
                bw = min(bw, layout.wan_share_bps(si, sj, pa))
            cost += nbytes * (pa.ser_per_byte_s + 8.0 / bw)
        elif nbytes > 0:
            cost += nbytes * pa.ser_per_byte_s
        return float(cost)

    def pairwise_times(self, layout: GroupLayout, nbytes: int) -> np.ndarray:
        """Full rank x rank p2p cost matrix for one message size.

        Entry ``[i, j]`` equals ``p2p_time(layout, i, j, nbytes)`` bit
        for bit (same scalar arithmetic, evaluated elementwise).
        Memoized on the layout template, keyed by the message size,
        the params and the mutable contention state — so repeated
        collective evaluations of one plan shape build it once, and a
        caller mutating ``colocated``/``wan_flows`` transparently gets
        a fresh matrix.
        """
        key = (nbytes, self.params, layout._mutation_key())
        memo = layout._pairwise_memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            self.stats.pairwise_hits += 1
            return cached
        times = self._build_pairwise(layout, nbytes)
        times.setflags(write=False)
        self.stats.pairwise_builds += 1
        memo[key] = times
        while len(memo) > PAIRWISE_MEMO_SIZE:
            memo.popitem(last=False)
        return times

    def _build_pairwise(self, layout: GroupLayout, nbytes: int) -> np.ndarray:
        pa = self.params
        si = layout.rank_site[:, None]
        sj = layout.rank_site[None, :]
        same_host = layout.host_index[:, None] == layout.host_index[None, :]
        cross = si != sj
        lat = np.where(same_host, 0.0, layout.oneway_s[si, sj])
        cost = lat + pa.sw_overhead_s + pa.fixed_cost_s(nbytes)
        cost[cross] += pa.wan_extra_s
        if nbytes > 0:
            bw = layout.bw_bps[si, sj]
            if pa.nic_share:
                share = np.maximum(layout.colocated[:, None],
                                   layout.colocated[None, :])
                bw = bw / share
            wan = layout.wan_share_matrix(pa)
            bw = np.where(cross, np.minimum(bw, wan[si, sj]), bw)
            cost = cost + np.where(same_host,
                                   nbytes * pa.ser_per_byte_s,
                                   nbytes * (pa.ser_per_byte_s + 8.0 / bw))
        np.fill_diagonal(cost, pa.sw_overhead_s)
        return cost

    # -- tree / dissemination collectives -------------------------------------------
    def _round_edges_barrier(self, p: int) -> List[List[Tuple[int, int]]]:
        return _barrier_rounds(p)

    def _binomial_rounds(self, p: int, root: int) -> List[List[Tuple[int, int]]]:
        return _binomial_round_edges(p, root)

    def barrier_time(self, layout: GroupLayout) -> float:
        """Dissemination barrier: sum over rounds of the slowest edge."""
        if self.params.kernel == "reference":
            total = 0.0
            for edges in _barrier_rounds(layout.p):
                total += max(self.p2p_time(layout, i, j, 32)
                             for i, j in edges)
            return total
        times = self.pairwise_times(layout, 32)
        total = 0.0
        for src, dst in _barrier_edge_arrays(layout.p):
            total += float(times[src, dst].max())
            self.stats.p2p_edges_vectorized += len(src)
        return total

    def bcast_time(self, layout: GroupLayout, nbytes: int,
                   root: int = 0) -> float:
        """Binomial broadcast: per-round max edge, summed."""
        if self.params.kernel == "reference":
            total = 0.0
            for edges in _binomial_round_edges(layout.p, root):
                total += max(self.p2p_time(layout, i, j, nbytes)
                             for i, j in edges)
            return total
        times = self.pairwise_times(layout, nbytes)
        total = 0.0
        for src, dst in _binomial_edge_arrays(layout.p, root):
            total += float(times[src, dst].max())
            self.stats.p2p_edges_vectorized += len(src)
        return total

    def reduce_time(self, layout: GroupLayout, nbytes: int,
                    root: int = 0) -> float:
        """Binomial fan-in mirrors the broadcast tree."""
        return self.bcast_time(layout, nbytes, root=root)

    def allreduce_time(self, layout: GroupLayout, nbytes: int) -> float:
        """Recursive doubling, mirroring the message-level engine.

        ``ceil(log2 pof2)`` exchange rounds (each priced at its slowest
        edge) plus a fold-in and fold-out round for non-power-of-two
        sizes.
        """
        p = layout.p
        if p == 1:
            return self.params.sw_overhead_s
        if self.params.kernel == "reference":
            pof2 = 1 << (p.bit_length() - 1)
            rem = p - pof2
            total = 0.0
            if rem:
                fold = max(
                    self.p2p_time(layout, 2 * i + 1, 2 * i, nbytes)
                    for i in range(rem)
                )
                total += 2 * fold  # fold in + fold out

            def real(vrank: int) -> int:
                return 2 * vrank if vrank < rem else vrank + rem

            mask = 1
            while mask < pof2:
                total += max(
                    self.p2p_time(layout, real(v), real(v ^ mask), nbytes)
                    for v in range(pof2)
                )
                mask <<= 1
            return total
        times = self.pairwise_times(layout, nbytes)
        fold_pair, rounds = _allreduce_edge_arrays(p)
        total = 0.0
        if fold_pair is not None:
            src, dst = fold_pair
            total += 2 * float(times[src, dst].max())
            self.stats.p2p_edges_vectorized += len(src)
        for src, dst in rounds:
            total += float(times[src, dst].max())
            self.stats.p2p_edges_vectorized += len(src)
        return total

    def gather_time(self, layout: GroupLayout, nbytes: int,
                    root: int = 0) -> float:
        """Linear gather: root drains p-1 messages."""
        pa = self.params
        if layout.p == 1:
            return pa.sw_overhead_s
        if pa.kernel == "reference":
            lat = max(
                self.p2p_time(layout, i, root, 0)
                for i in range(layout.p) if i != root
            )
        else:
            times = self.pairwise_times(layout, 0)
            sel = np.arange(layout.p) != root
            lat = float(times[sel, root].max())
            self.stats.p2p_edges_vectorized += layout.p - 1
        per_msg = (pa.sw_overhead_s + pa.fixed_cost_s(nbytes)
                   + nbytes * pa.ser_per_byte_s)
        return lat + (layout.p - 1) * per_msg + self._serial_bytes_time(
            layout, root, nbytes * (layout.p - 1)
        )

    def ring_exchange_time(self, layout: GroupLayout, nbytes: int) -> float:
        """Slowest neighbouring edge of the rank ring: one halo-exchange
        step of a 1-D decomposition (CG's transpose stand-in)."""
        if self.params.kernel == "reference":
            p = layout.p
            return max(self.p2p_time(layout, i, (i + 1) % p, nbytes)
                       for i in range(p))
        times = self.pairwise_times(layout, nbytes)
        src, dst = _ring_edge_arrays(layout.p)
        self.stats.p2p_edges_vectorized += layout.p
        return float(times[src, dst].max())

    def _serial_bytes_time(self, layout: GroupLayout, rank: int,
                           nbytes: int) -> float:
        bw = layout.bw_bps[layout.rank_site[rank], layout.rank_site[rank]]
        if self.params.nic_share:
            bw /= layout.colocated[rank]
        return nbytes * 8.0 / bw

    # -- pairwise exchange ------------------------------------------------------------
    def alltoall_time(self, layout: GroupLayout, bytes_per_pair: int) -> float:
        """Pairwise alltoall: slowest rank's sum over its partners.

        Vectorised by site: a rank's partner mix is the site population,
        corrected for same-host partners (zero latency, no NIC transit).
        """
        return self.alltoallv_time(layout, bytes_per_pair)

    def _alltoallv_unit(self, layout: GroupLayout,
                        bytes_per_pair: int) -> np.ndarray:
        """unit[s, s'] = overhead cost of one message between sites."""
        pa = self.params
        n_sites = len(layout.site_names)
        unit = np.zeros((n_sites, n_sites))
        fixed = pa.fixed_cost_s(bytes_per_pair)
        for si in range(n_sites):
            for sj in range(n_sites):
                cost = layout.oneway_s[si, sj] + pa.sw_overhead_s + fixed
                if si != sj:
                    cost += pa.wan_extra_s
                if bytes_per_pair > 0:
                    cost += bytes_per_pair * pa.ser_per_byte_s
                unit[si, sj] = cost
        return unit

    def _alltoallv_rank_total(self, layout: GroupLayout, si: int,
                              colocated: int, unit: np.ndarray,
                              wire: float) -> float:
        """One rank's alltoall(v) total: the loop body both kernel
        paths share (a rank enters only through ``si``/``colocated``)."""
        counts = layout.site_counts.astype(float).copy()
        counts[si] -= 1  # exclude self
        total = float(np.dot(counts, unit[si])) + wire
        # Same-host partners: no wire, only overheads (already in
        # `unit` diagonal via latency=LAN; subtract the LAN latency
        # for the (colocated-1) same-host partners — also for
        # zero-byte exchanges, else cost(0) exceeds cost(1)).
        k = colocated - 1
        if k > 0:
            total -= k * layout.oneway_s[si, si]
        return total

    def alltoallv_time(self, layout: GroupLayout, bytes_per_pair: int) -> float:
        pa = self.params
        p = layout.p
        if p == 1:
            return pa.sw_overhead_s
        unit = self._alltoallv_unit(layout, bytes_per_pair)
        # Bandwidth term is added per rank (depends on colocation).
        wire = self._alltoallv_wire_per_rank(layout, bytes_per_pair)
        if pa.kernel == "reference":
            per_rank = np.zeros(p)
            for i in range(p):
                per_rank[i] = self._alltoallv_rank_total(
                    layout, layout.rank_site[i], layout.colocated[i],
                    unit, wire[i])
            return float(per_rank.max())
        combos, first, _ = _rank_combo_index(layout)
        return float(max(
            self._alltoallv_rank_total(layout, si, colo, unit, wire[fi])
            for (si, colo), fi in zip(combos, first)))

    def _alltoallv_wire_one(self, layout: GroupLayout, si: int,
                            colocated: int, bytes_per_pair: int) -> float:
        """One rank's bytes-on-the-wire seconds (shared loop body)."""
        pa = self.params
        counts = layout.site_counts.astype(float).copy()
        counts[si] -= 1  # exclude self
        total = 0.0
        for sj in range(len(layout.site_names)):
            c = counts[sj]
            if c <= 0:
                continue
            bw = layout.bw_bps[si, sj]
            if pa.nic_share:
                bw = bw / colocated
            if si != sj:
                if pa.wan_contention == "none":
                    # Legacy: the NIC-clamped path rate divided by
                    # the concurrent cross flows.
                    flows = min(layout.site_counts[si],
                                layout.site_counts[sj])
                    bw = min(bw, layout.bw_bps[si, sj] / max(1, flows))
                else:
                    # Calibrated: the *backbone* pools across the
                    # plan's crossing pairs ("plan") or the fixed
                    # divisor ("fixed"); a lone flow stays NIC-bound.
                    bw = min(bw, layout.wan_share_bps(si, sj, pa))
            total += c * bytes_per_pair * 8.0 / bw
        # Same-host partners never touch the wire: back out the
        # (colocated-1) LAN-priced shares the loop charged them.
        k = colocated - 1
        if k > 0:
            total -= k * bytes_per_pair * 8.0 / (
                layout.bw_bps[si, si]
                / (colocated if pa.nic_share else 1)
            )
        return total

    def _alltoallv_wire_per_rank(self, layout: GroupLayout,
                                 bytes_per_pair: int) -> np.ndarray:
        """Per-rank bytes-on-the-wire seconds of one alltoall(v).

        The bandwidth-dependent component only — no latency, fixed or
        serialization overheads — under the configured NIC and WAN
        contention modes.  Same-host partners never touch the wire.
        """
        p = layout.p
        if bytes_per_pair <= 0:
            return np.zeros(p)
        if self.params.kernel == "reference":
            self.stats.alltoallv_rank_evals += p
            out = np.zeros(p)
            for i in range(p):
                out[i] = self._alltoallv_wire_one(
                    layout, layout.rank_site[i], layout.colocated[i],
                    bytes_per_pair)
            return out
        combos, _, inverse = _rank_combo_index(layout)
        self.stats.alltoallv_combo_evals += len(combos)
        vals = np.array([
            self._alltoallv_wire_one(layout, si, colo, bytes_per_pair)
            for si, colo in combos])
        return vals[inverse]

    def alltoallv_transfer_time(self, layout: GroupLayout,
                                bytes_per_pair: int) -> float:
        """Slowest rank's pure wire time for one alltoall(v) exchange.

        The fig4 calibration quantity: per-message fixed and latency
        overheads are identical constants under every contention mode,
        so the wire time is where the plan-dependent backbone share
        shows (see DESIGN.md §10).
        """
        if layout.p == 1:
            return 0.0
        return float(self._alltoallv_wire_per_rank(
            layout, bytes_per_pair).max())

    # -- convenience ---------------------------------------------------------------
    def describe(self, layout: GroupLayout) -> str:
        sites = ", ".join(
            f"{s}:{c}" for s, c in zip(layout.site_names, layout.site_counts) if c
        )
        return f"p={layout.p} over [{sites}], max colocated={layout.max_colocated}"
