"""``p2pmpirun`` — command-line front end onto the simulated grid.

Mirrors the paper's invocation::

    p2pmpirun -n 100 -r 1 -a concentrate hostname

and adds experiment subcommands::

    p2pmpirun --experiment fig2   # concentrate co-allocation sweep
    p2pmpirun --experiment fig3   # spread co-allocation sweep
    p2pmpirun --experiment fig4   # EP + IS timing sweeps
    p2pmpirun --experiment table1 # resource inventory
    p2pmpirun --experiment applatency  # EP/IS x latency-ratio x strategy
    p2pmpirun --experiment all    # the whole campaign

Sweeps run on the experiment engine: ``--jobs N`` fans cells out over
worker processes (``--jobs 0`` auto-sizes from the CPU count),
``--out DIR`` persists results to a
:class:`~repro.experiments.engine.ResultStore` (re-invocations skip
cached cells), and ``--force`` invalidates the stored sweep first.

Campaigns distribute with two more pieces (DESIGN.md §9)::

    p2pmpirun --experiment commaware --shard 2/3 --out store   # one slice
    p2pmpirun merge host1/*.partial host2/*.partial --out all  # reassemble
    p2pmpirun aggregate all                                    # roll up

``--shard K/N`` runs the K-th of N deterministic slices of every sweep
grid (results land in the store's ``.partial`` file); ``merge``
combines shard/checkpoint stores from any number of machines into the
canonical file an unsharded run would have written, refusing on
conflicts; ``aggregate`` renders a cross-experiment summary of a store
directory.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from repro.apps import CGLikeBenchmark, EPBenchmark, HostnameApp, ISBenchmark
from repro.cluster import ClusterSpec, build_grid5000_cluster
from repro.experiments.applications import (
    app_series_from_sweep,
    application_spec,
    application_sweep,
)
from repro.experiments.coallocation import (
    coallocation_spec,
    coallocation_sweep,
    series_from_sweep,
)
from repro.experiments.commaware import (
    commaware_report,
    run_commaware_campaign,
)
from repro.experiments.applatency import (
    applatency_report,
    run_applatency_campaign,
)
from repro.experiments.churnload import (
    churnload_report,
    churnload_spec,
    churnload_sweep,
)
from repro.experiments.aggregate import (
    MergeConflictError,
    StoreMerger,
    render_aggregate,
    scan_store_root,
)
from repro.experiments.engine import (
    ResultStore,
    SweepResult,
    parse_shard,
    resolve_jobs,
)
from repro.experiments.multiuser import multiuser_spec, multiuser_sweep
from repro.experiments.report import format_series_table, format_site_table
from repro.experiments.scaling import (
    scaling_series_from_sweep,
    scaling_spec,
    scaling_sweep,
)
from repro.grid5000.builder import build_topology, paper_site_legend
from repro.grid5000.resources import CLUSTERS
from repro.middleware.jobs import JobRequest

__all__ = ["main", "build_parser", "build_merge_parser",
           "build_aggregate_parser", "make_app"]

PROGRAMS = ("hostname", "ep", "is", "cg")

#: Experiments whose sweeps partition with ``--shard`` (everything
#: engine-backed; table1 prints a static table and the ablation
#: drivers are a handful of cells each).
SHARDABLE_EXPERIMENTS = ("fig2", "fig3", "fig4", "scaling", "multiuser",
                         "coallocation", "commaware", "churnload",
                         "applatency", "all")


def make_app(name: str, nas_class: str = "B"):
    """Application model for a program name (``None`` for hostname)."""
    if name == "hostname":
        return HostnameApp()
    if name == "ep":
        return EPBenchmark(nas_class)
    if name == "is":
        return ISBenchmark(nas_class)
    if name == "cg":
        return CGLikeBenchmark(nas_class)
    raise ValueError(f"unknown program {name!r} (choose from {PROGRAMS})")


def _shard_arg(text: str) -> Tuple[int, int]:
    try:
        return parse_shard(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _csv_values(flag: str, text: str, cast, nonnegative: bool = False,
                positive: bool = False) -> Tuple:
    """Parse a comma-separated grid flag; the one shared error idiom
    for ``--demands`` / ``--failures`` / ``--ratios``."""
    try:
        values = tuple(cast(part) for part in text.split(",") if part)
    except ValueError:
        raise SystemExit(f"error: bad {flag} {text!r}")
    if not values:
        raise SystemExit(f"error: {flag} needs at least one value")
    if positive and any(v <= 0 for v in values):
        raise SystemExit(f"error: {flag} values must be > 0")
    if nonnegative and any(v < 0 for v in values):
        raise SystemExit(f"error: {flag} rates must be >= 0")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun",
        description="Run a job on the simulated P2P-MPI Grid'5000 testbed.",
        epilog="Store tools: 'p2pmpirun merge <STORE...> --out DIR' "
               "combines shard/checkpoint stores of one sweep into the "
               "canonical file (refusing on conflicts); 'p2pmpirun "
               "aggregate DIR' renders the campaign-level summary of a "
               "store directory.  See 'p2pmpirun merge --help'.",
    )
    parser.add_argument("-n", type=int, default=None,
                        help="number of MPI processes (mandatory for runs)")
    parser.add_argument("-r", type=int, default=1,
                        help="replication degree (default 1)")
    parser.add_argument("-a", "--alloc", default="spread",
                        help="allocation strategy: spread | concentrate | "
                             "block | bandwidth_spread | "
                             "diameter_concentrate | topo_block")
    parser.add_argument("--block", type=int, default=2,
                        help="block size when -a block")
    parser.add_argument("--group", type=int, default=None,
                        help="collective-group block unit when -a "
                             "topo_block (default: derived from n)")
    parser.add_argument("--class", dest="nas_class", default="B",
                        help="NAS class for ep/is/cg (default B)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--experiment",
                        choices=("fig2", "fig3", "fig4", "table1",
                                 "ablations", "scaling", "multiuser",
                                 "coallocation", "commaware", "churnload",
                                 "applatency", "all"),
                        help="regenerate a paper figure/table, run the "
                             "ablation studies, the combined §5.1 sweep "
                             "('coallocation'), the communication-aware "
                             "scenario pack ('commaware'), the sustained-"
                             "load availability campaign ('churnload'), "
                             "the EP/IS latency-ratio execution campaign "
                             "('applatency'), or the whole campaign "
                             "('all') instead of running a job")
    parser.add_argument("--cluster", default="grid5000",
                        choices=("grid5000", "small"),
                        help="testbed for coallocation/commaware sweeps "
                             "(default grid5000; 'small' is the 10-host "
                             "CI/smoke grid)")
    parser.add_argument("--demands", default=None, metavar="N,N,...",
                        help="comma-separated demand grid overriding the "
                             "paper's 100..600 for coallocation/commaware")
    parser.add_argument("--ratios", default=None, metavar="R,R,...",
                        help="comma-separated intra/inter-site latency "
                             "ratios overriding the applatency default "
                             "1,10,121.6,1000 (the testbed subject: "
                             "--cluster does not apply)")
    parser.add_argument("--users", type=int, default=2,
                        help="competing submitters per churnload round "
                             "(default 2)")
    parser.add_argument("--failures", default=None, metavar="F,F,...",
                        help="comma-separated per-host failure-rate grid "
                             "(crashes/s) overriding the churnload "
                             "default 0,0.002,0.006")
    parser.add_argument("--horizon", type=float, default=240.0,
                        help="churnload round horizon in simulated "
                             "seconds (default 240)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep cells (default 1; "
                             "0 auto-sizes from the CPU count)")
    parser.add_argument("--shard", type=_shard_arg, default=None,
                        metavar="K/N",
                        help="run only the K-th of N deterministic slices "
                             "of each sweep grid (1-based; requires --out). "
                             "Disjoint shards of one spec share a store "
                             "key and seed schedule; their .partial "
                             "outputs reassemble byte-for-byte with "
                             "'p2pmpirun merge'")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="persist sweep results under DIR; cached "
                             "cells are skipped on re-invocation")
    parser.add_argument("--force", action="store_true",
                        help="invalidate stored sweeps and recompute")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII charts for figure sweeps")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the experiment sweep in cProfile: dump "
                             "profile-<experiment>.pstats next to the store "
                             "(or the CWD without --out) and print the "
                             "top-20 cumulative entries")
    parser.add_argument("prog", nargs="?", default="hostname",
                        choices=PROGRAMS, help="program to execute")
    return parser


def _run_single(args: argparse.Namespace) -> int:
    if args.n is None:
        print("error: -n is mandatory (as in the paper's p2pmpirun)",
              file=sys.stderr)
        return 2
    cluster = build_grid5000_cluster(seed=args.seed)
    kwargs = {}
    if args.alloc == "block":
        kwargs["block"] = args.block
    elif args.alloc == "topo_block" and args.group is not None:
        kwargs["group"] = args.group
    request = JobRequest(n=args.n, r=args.r, strategy=args.alloc,
                         strategy_kwargs=kwargs,
                         app=make_app(args.prog, args.nas_class))
    result = cluster.submit_and_run(request)
    print(result.summary())
    if result.plan is not None:
        print("hosts by site:", dict(sorted(result.allocation.hosts_by_site().items())))
        print("cores by site:", dict(sorted(result.allocation.cores_by_site().items())))
        print(f"reservation: {result.timings.reservation_s * 1000:.1f} ms, "
              f"makespan: {result.timings.makespan_s:.2f} s")
    return 0 if result.ok else 1


def _store(args: argparse.Namespace) -> Optional[ResultStore]:
    return ResultStore(args.out) if args.out else None


def _report_sweep(sweep: SweepResult, store: Optional[ResultStore]) -> None:
    line = f"[engine] {sweep.summary()}"
    if store is not None:
        # Sharded runs persist to the .partial checkpoint (the merge
        # input); only complete sweeps own the canonical file.  A shard
        # served entirely from cache checkpoints nothing — pointing a
        # later `merge` at a nonexistent path would only confuse.
        path = (store.partial_path_for(sweep.spec) if sweep.shard
                else store.path_for(sweep.spec))
        if sweep.shard and not path.exists():
            line += " (all cells cached; no checkpoint written)"
        else:
            line += f" -> {path}"
    print(line)


def _run_coallocation(args: argparse.Namespace, experiment: str,
                      store: Optional[ResultStore]) -> None:
    strategy = "concentrate" if experiment == "fig2" else "spread"
    spec = coallocation_spec(seed=args.seed, strategies=(strategy,),
                             name=experiment, **_grid_overrides(args))
    sweep = coallocation_sweep(spec=spec, jobs=args.jobs, store=store,
                               force=args.force, shard=args.shard)
    _report_sweep(sweep, store)
    if args.shard:
        return  # a shard's slice cannot fill the report tables
    series = series_from_sweep(sweep)[strategy]
    print(format_site_table(series, value="hosts"))
    print()
    print(format_site_table(series, value="cores"))
    if args.plot:
        from repro.experiments.figures import ascii_plot
        from repro.experiments.report import legend_order

        sites = legend_order(
            sorted({s for pt in series.points for s in pt.cores_by_site}))
        print()
        print(ascii_plot(
            series.demands,
            {site: series.cores_series(site) for site in sites},
            title=f"{strategy}: allocated cores per site",
            y_label="cores",
        ))


def _grid_overrides(args: argparse.Namespace) -> dict:
    """Only the sweep-shape kwargs the user explicitly set, so the
    figure drivers keep their spec functions' own defaults otherwise."""
    overrides = {}
    if args.demands is not None:
        overrides["demands"] = _csv_values("--demands", args.demands, int)
    if args.cluster == "small":
        overrides["cluster_spec"] = ClusterSpec(kind="small")
        if args.demands is None:
            # The paper's 100..600 grid is infeasible on the 28-core
            # smoke testbed; default to a grid that fits it.
            overrides["demands"] = (4, 8, 16)
    return overrides


def _run_combined_coallocation(args: argparse.Namespace,
                               store: Optional[ResultStore]) -> None:
    """The §5.1 sweep with both published strategies in one grid."""
    spec = coallocation_spec(seed=args.seed,
                             strategies=("concentrate", "spread"),
                             name="coallocation", **_grid_overrides(args))
    sweep = coallocation_sweep(spec=spec, jobs=args.jobs, store=store,
                               force=args.force, shard=args.shard)
    _report_sweep(sweep, store)
    if args.shard:
        return
    for strategy, series in sorted(series_from_sweep(sweep).items()):
        print(format_site_table(series, value="hosts"))
        print()
        print(format_site_table(series, value="cores"))
        print()


def _run_commaware(args: argparse.Namespace,
                   store: Optional[ResultStore]) -> None:
    """The communication-aware pack.  Output is deterministic byte for
    byte (no timings), so ``--jobs 1`` and ``--jobs 2`` runs diff clean.
    """
    small = args.cluster == "small"
    campaign = run_commaware_campaign(
        seed=args.seed,
        # The fig4/latratio panels assume the full testbed's demand
        # range; on the smoke grid only the alloc comparison makes sense.
        with_apps=not small,
        with_latratio=not small,
        jobs=args.jobs, store=store, force=args.force, shard=args.shard,
        **_grid_overrides(args))
    if args.shard:
        for sweep in campaign.sweeps():
            _report_sweep(sweep, store)
        return
    print(commaware_report(campaign))


def _run_applatency(args: argparse.Namespace,
                    store: Optional[ResultStore]) -> None:
    """The EP/IS latency-ratio execution campaign.  Output is the
    deterministic report only (no engine timings), so ``--jobs 1`` and
    ``--jobs 2`` runs diff clean byte for byte.

    The latency-ratio testbed is the campaign's subject, so --cluster
    is ignored; tiny CI grids come from --demands and --ratios.
    """
    overrides = {}
    if args.demands is not None:
        overrides["ns"] = _csv_values("--demands", args.demands, int,
                                      positive=True)
    if args.ratios is not None:
        overrides["ratios"] = _csv_values("--ratios", args.ratios, float,
                                          positive=True)
    campaign = run_applatency_campaign(
        seed=args.seed, nas_class=args.nas_class, jobs=args.jobs,
        store=store, force=args.force, shard=args.shard, **overrides)
    if args.shard:
        for sweep in campaign.sweeps():
            _report_sweep(sweep, store)
        return
    print(applatency_report(campaign))


def _run_churnload(args: argparse.Namespace,
                   store: Optional[ResultStore]) -> None:
    """The sustained-load availability campaign.  Output is the
    deterministic ledger report only (no engine timings), so
    ``--jobs 1`` and ``--jobs 2`` runs diff clean byte for byte.
    """
    small = args.cluster == "small"
    if args.horizon <= 0:
        raise SystemExit("error: --horizon must be > 0")
    if args.users < 1:
        raise SystemExit("error: --users must be >= 1")
    overrides = {}
    if args.failures is not None:
        overrides["failures"] = _csv_values("--failures", args.failures,
                                            float, nonnegative=True)
    spec = churnload_spec(
        seed=args.seed,
        users=args.users,
        horizon_s=args.horizon,
        # The 28-core smoke grid saturates around n*r=8; the full
        # testbed gets a demand that actually straddles sites.
        n=4 if small else 16,
        cluster_spec=ClusterSpec(kind="small" if small else "grid5000"),
        **overrides,
    )
    sweep = churnload_sweep(spec=spec, jobs=args.jobs, store=store,
                            force=args.force, shard=args.shard)
    if args.shard:
        _report_sweep(sweep, store)
        return
    print(churnload_report(sweep))


def _run_fig4(args: argparse.Namespace,
              store: Optional[ResultStore]) -> None:
    panels = {}
    for app in (EPBenchmark(args.nas_class), ISBenchmark(args.nas_class)):
        spec = application_spec(app, seed=args.seed)
        sweep = application_sweep(spec=spec, jobs=args.jobs, store=store,
                                  force=args.force, shard=args.shard)
        _report_sweep(sweep, store)
        panels[app.name] = app_series_from_sweep(sweep)
    if args.shard:
        return
    for label, series in panels.items():
        print()
        print(format_series_table(series, title=label.upper()))
    if args.plot:
        from repro.experiments.figures import ascii_plot

        for label, series in panels.items():
            print()
            print(ascii_plot(
                series["spread"].ns,
                {name: s.times for name, s in series.items()},
                title=f"{label} total time",
                y_label="s",
            ))


def _run_scaling(args: argparse.Namespace,
                 store: Optional[ResultStore]) -> None:
    strategy = args.alloc
    if strategy == "block":
        print("warning: --experiment scaling does not sweep the block "
              "strategy; using spread", file=sys.stderr)
        strategy = "spread"
    spec = scaling_spec(seed=args.seed, strategy=strategy)
    sweep = scaling_sweep(spec=spec, jobs=args.jobs, store=store,
                          force=args.force, shard=args.shard)
    _report_sweep(sweep, store)
    if args.shard:
        return
    series = scaling_series_from_sweep(sweep)
    print(f"strategy: {series.strategy}")
    for p in series.points:
        print(f"n={p.n:<4} reservation={p.reservation_s * 1e3:7.1f} ms  "
              f"launch={p.launch_s * 1e3:7.1f} ms  booked={p.booked_hosts}  "
              f"attempts={p.attempts}")


def _run_multiuser(args: argparse.Namespace,
                   store: Optional[ResultStore]) -> None:
    spec = multiuser_spec(seed=args.seed)
    sweep = multiuser_sweep(spec=spec, jobs=args.jobs, store=store,
                            force=args.force, shard=args.shard)
    _report_sweep(sweep, store)
    if args.shard:
        return
    for cell in sweep.cells:
        v = cell.value
        print(f"users={cell.params['users']} n={cell.params['n']} "
              f"{cell.params['strategy']:<12} statuses={v['statuses']} "
              f"overlaps={v['concurrent_overlap_count']} "
              f"refusals={v['total_refusals']}")


def _run_experiment(args: argparse.Namespace) -> int:
    if args.experiment == "table1":
        print(f"{'Site':<10}{'Cluster':<12}{'CPU':<20}"
              f"{'#Nodes':>8}{'#CPUs':>8}{'#Cores':>8}")
        for c in CLUSTERS:
            print(f"{c.site:<10}{c.name:<12}{c.cpu_model:<20}"
                  f"{c.nodes:>8}{c.cpus:>8}{c.cores:>8}")
        topo = build_topology()
        print("\nLegend (RTT to nancy):")
        for site, rtt, hosts, cores in paper_site_legend(topo):
            print(f"  {site:<10} {rtt:>7.3f} ms  {hosts:>3} hosts  {cores:>4} cores")
        return 0
    store = _store(args)
    if args.experiment in ("fig2", "fig3"):
        _run_coallocation(args, args.experiment, store)
        return 0
    if args.experiment == "coallocation":
        _run_combined_coallocation(args, store)
        return 0
    if args.experiment == "commaware":
        _run_commaware(args, store)
        return 0
    if args.experiment == "churnload":
        _run_churnload(args, store)
        return 0
    if args.experiment == "applatency":
        _run_applatency(args, store)
        return 0
    if args.experiment == "fig4":
        _run_fig4(args, store)
        return 0
    if args.experiment == "scaling":
        _run_scaling(args, store)
        return 0
    if args.experiment == "multiuser":
        _run_multiuser(args, store)
        return 0
    if args.experiment == "ablations":
        from repro.experiments.ablations import (
            latency_noise_ablation,
            replication_ablation,
        )

        print("Latency noise vs ranking quality (Kendall tau):")
        for p in latency_noise_ablation(seed=args.seed, jobs=args.jobs,
                                        store=store, force=args.force):
            print(f"  sigma={p.noise_sigma_ms:5.2f} ms  tau={p.tau:.4f}")
        print("\nReplication degree vs survival (5% host failures):")
        for p in replication_ablation(seed=args.seed or 1, store=store,
                                      force=args.force):
            print(f"  r={p.r}  P(survive)={p.survival:.4f}")
        return 0
    # --experiment all: the full campaign through the engine.
    for experiment in ("fig2", "fig3"):
        print(f"== {experiment} ==")
        _run_coallocation(args, experiment, store)
        print()
    print("== fig4 ==")
    _run_fig4(args, store)
    print()
    print("== scaling ==")
    _run_scaling(args, store)
    print()
    print("== multiuser ==")
    _run_multiuser(args, store)
    return 0


def _run_profiled(args: argparse.Namespace) -> int:
    """cProfile wrapper around one experiment sweep (``--profile``).

    Dumps the raw pstats next to the store (the CWD without ``--out``)
    and prints the top-20 cumulative entries, so hot-path claims about
    the cost kernels come with receipts (DESIGN.md §11).
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        rc = _run_experiment(args)
    finally:
        profiler.disable()
    out_dir = args.out or "."
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"profile-{args.experiment}.pstats")
    profiler.dump_stats(path)
    print(f"\n[profile] wrote {path}; top 20 by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative")
    stats.print_stats(20)
    return rc


# ----------------------------------------------------------------------
# store tools: merge + aggregate verbs
# ----------------------------------------------------------------------
def build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun merge",
        description="Combine shard/checkpoint JSONL stores of ONE sweep "
                    "into a single canonical store.  Inputs may mix "
                    "canonical .jsonl files and .jsonl.partial shard or "
                    "checkpoint files produced on any machine; the merge "
                    "refuses on header-hash mismatch or divergent cell "
                    "values, tolerates torn tails and identical "
                    "duplicates, and — when the union covers the full "
                    "grid — writes a file byte-identical to what one "
                    "unsharded run would have saved.")
    parser.add_argument("stores", nargs="+", metavar="STORE",
                        help="store files to merge (.jsonl and/or "
                             ".jsonl.partial of one spec)")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="store directory receiving the merged file "
                             "(canonical when complete, .partial when "
                             "cells are still missing)")
    parser.add_argument("--require-complete", action="store_true",
                        help="exit non-zero unless the merged cells cover "
                             "the full sweep grid")
    return parser


def build_aggregate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun aggregate",
        description="Render the campaign-level summary of a store "
                    "directory: every sweep (canonical or pending "
                    ".partial) with completeness, axis shapes and "
                    "numeric-metric rollups.")
    parser.add_argument("root", metavar="DIR",
                        help="store directory (the --out of runs/merges)")
    return parser


def _run_merge(argv: List[str]) -> int:
    args = build_merge_parser().parse_args(argv)
    try:
        merged = StoreMerger().merge(args.stores)
        # write() can conflict too: it absorbs same-sweep files already
        # at the destination and refuses on divergence.
        path = merged.write(args.out)
    except MergeConflictError as exc:
        print(f"error: merge conflict: {exc}", file=sys.stderr)
        return 1
    print(f"[merge] {merged.summary()} -> {path}")
    if args.require_complete and not merged.complete:
        print(f"error: merged store is incomplete "
              f"({len(merged.missing_indices)} cell(s) missing)",
              file=sys.stderr)
        return 1
    return 0


def _run_aggregate(argv: List[str]) -> int:
    args = build_aggregate_parser().parse_args(argv)
    if not os.path.isdir(args.root):
        # A typo'd path must not pass as an empty-but-clean campaign.
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2
    sweeps, conflicts = scan_store_root(args.root)
    print(render_aggregate(sweeps, conflicts))
    if conflicts:
        print(f"error: {len(conflicts)} sweep(s) have conflicting store "
              "files; see the CONFLICT sections above", file=sys.stderr)
        return 1
    return 0


#: Store-tool verbs dispatched before the main parser (``p2pmpirun
#: merge ...`` / ``p2pmpirun aggregate ...``).
TOOL_VERBS = {"merge": _run_merge, "aggregate": _run_aggregate}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in TOOL_VERBS:
        try:
            return TOOL_VERBS[argv[0]](argv[1:])
        except BrokenPipeError:
            # The stdout reader (head, grep -q) went away mid-report;
            # park stdout on devnull so the interpreter's exit flush
            # does not raise again, and exit like a SIGPIPE'd tool.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 141
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = auto-size from CPU count)")
    args.jobs = resolve_jobs(args.jobs)
    if args.shard:
        if args.experiment is None:
            parser.error("--shard only applies to --experiment sweeps")
        if args.experiment not in SHARDABLE_EXPERIMENTS:
            parser.error(f"--experiment {args.experiment} does not shard "
                         f"(shardable: {', '.join(SHARDABLE_EXPERIMENTS)})")
        if not args.out:
            parser.error("--shard requires --out: a shard's cells persist "
                         "to the store's .partial file for the merge step")
        if args.force:
            parser.error("--force cannot be combined with --shard: it "
                         "would invalidate cells other shards checkpointed "
                         "into the same store")
    if args.profile:
        if args.experiment is None:
            parser.error("--profile only applies to --experiment sweeps")
        if args.experiment == "table1":
            parser.error("--profile: table1 prints a static table, "
                         "there is no sweep to profile")
    if args.experiment:
        if args.profile:
            return _run_profiled(args)
        return _run_experiment(args)
    return _run_single(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
