"""``p2pmpirun`` — command-line front end onto the simulated grid.

Mirrors the paper's invocation::

    p2pmpirun -n 100 -r 1 -a concentrate hostname

and drives the experiment campaigns through verbs::

    p2pmpirun run fig2                  # concentrate co-allocation sweep
    p2pmpirun run fig4 --out store      # EP + IS timing sweeps, persisted
    p2pmpirun run all --jobs 4          # the whole campaign
    p2pmpirun run topozoo --family scale_free --sites 200
    p2pmpirun orchestrate commaware --workers 4 --out store
    p2pmpirun merge host1/*.partial host2/*.partial --out all
    p2pmpirun aggregate all

(the pre-verb ``p2pmpirun --experiment X`` spelling still works and is
rewritten to ``p2pmpirun run X`` with a deprecation note).

Sweeps run on the experiment engine: ``--jobs N`` fans cells out over
worker processes (``--jobs 0`` auto-sizes from the CPU count),
``--out DIR`` persists results to a
:class:`~repro.experiments.engine.ResultStore` (re-invocations skip
cached cells), and ``--force`` invalidates the stored sweep first.

Campaigns distribute three ways (DESIGN.md §9 and §12):

* by hand — ``run <exp> --shard K/N --out store`` executes the K-th of
  N deterministic slices of every sweep grid (results land in the
  store's ``.partial`` file); ``merge`` combines shard/checkpoint
  stores from any number of machines into the canonical file an
  unsharded run would have written, refusing on conflicts, and cleans
  up the promoted inputs (``--keep-partial`` retains them);
* supervised — ``orchestrate <exp> --workers N --out store`` owns the
  whole campaign: it shards the grid, dispatches worker processes,
  tails their heartbeats, retries crashed or stalled shards with
  backoff, merges each landed shard immediately, promotes the
  canonical store and cleans up its scratch;
* ``aggregate DIR`` renders a cross-experiment summary of a store
  directory either way.

Experiments come from :mod:`repro.experiments.registry`: the parser
enumerates names from its static manifest, and each driver module is
imported only when its campaign actually runs — which is what keeps
``p2pmpirun --help`` fast.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from repro.experiments import registry

__all__ = ["main", "build_parser", "build_run_parser",
           "build_orchestrate_parser", "build_merge_parser",
           "build_aggregate_parser", "make_app"]

PROGRAMS = ("hostname", "ep", "is", "cg")

#: Experiments whose sweeps partition with ``--shard`` (everything
#: engine-backed; table1 prints a static table and the ablation
#: drivers are a handful of cells each).  Kept as a module constant
#: for compatibility; the registry manifest is the source of truth.
SHARDABLE_EXPERIMENTS = registry.shardable_names()


def make_app(name: str, nas_class: str = "B"):
    """Application model for a program name (``None`` for hostname)."""
    from repro.apps import (CGLikeBenchmark, EPBenchmark, HostnameApp,
                            ISBenchmark)

    if name == "hostname":
        return HostnameApp()
    if name == "ep":
        return EPBenchmark(nas_class)
    if name == "is":
        return ISBenchmark(nas_class)
    if name == "cg":
        return CGLikeBenchmark(nas_class)
    raise ValueError(f"unknown program {name!r} (choose from {PROGRAMS})")


def _shard_arg(text: str) -> Tuple[int, int]:
    from repro.experiments.engine import parse_shard

    try:
        return parse_shard(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


# ----------------------------------------------------------------------
# parsers
# ----------------------------------------------------------------------
def _add_shape_flags(parser: argparse.ArgumentParser) -> None:
    """Sweep-shape flags: what grid a campaign spans.

    Shared by the legacy parser, ``run`` and ``orchestrate`` — the
    orchestrator forwards exactly these to its worker processes, so
    the three surfaces must stay flag-compatible.
    """
    parser.add_argument("-a", "--alloc", default="spread",
                        help="allocation strategy: spread | concentrate | "
                             "block | bandwidth_spread | "
                             "diameter_concentrate | topo_block")
    parser.add_argument("--class", dest="nas_class", default="B",
                        help="NAS class for ep/is/cg (default B)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cluster", default="grid5000",
                        choices=("grid5000", "small"),
                        help="testbed for coallocation/commaware sweeps "
                             "(default grid5000; 'small' is the 10-host "
                             "CI/smoke grid)")
    parser.add_argument("--demands", default=None, metavar="N,N,...",
                        help="comma-separated demand grid overriding the "
                             "paper's 100..600 for coallocation/commaware")
    parser.add_argument("--ratios", default=None, metavar="R,R,...",
                        help="comma-separated intra/inter-site latency "
                             "ratios overriding the applatency default "
                             "1,10,121.6,1000 (the testbed subject: "
                             "--cluster does not apply)")
    parser.add_argument("--users", type=int, default=2,
                        help="competing submitters per churnload round "
                             "(default 2)")
    parser.add_argument("--failures", default=None, metavar="F,F,...",
                        help="comma-separated per-host failure-rate grid "
                             "(crashes/s) overriding the churnload "
                             "default 0,0.002,0.006")
    parser.add_argument("--horizon", type=float, default=240.0,
                        help="churnload round horizon in simulated "
                             "seconds (default 240)")
    parser.add_argument("--tenants", default=None, metavar="T,T,...",
                        help="comma-separated tenant-count grid for the "
                             "multiuser2 control-plane campaign "
                             "(default 10,50,200)")
    parser.add_argument("--rates", default=None, metavar="R,R,...",
                        help="comma-separated per-tenant arrival rates "
                             "(jobs/s) for multiuser2 "
                             "(default 0.01,0.05)")
    parser.add_argument("--family", default=None, metavar="F,F,...",
                        help="comma-separated topology families for the "
                             "topozoo campaign (grid5000, scale_free, "
                             "small_world, fat_sites; default all), e.g. "
                             "'p2pmpirun run topozoo --family scale_free "
                             "--sites 200'")
    parser.add_argument("--sites", default=None, metavar="N,N,...",
                        help="comma-separated site counts for topozoo's "
                             "generated families (default 16,48)")
    parser.add_argument("--modes", default=None, metavar="M,M,...",
                        help="comma-separated placement modes for the "
                             "migration campaign (static, diffusive; "
                             "default both)")


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Execution/persistence flags of a directly-run sweep."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep cells (default 1; "
                             "0 auto-sizes from the CPU count)")
    parser.add_argument("--shard", type=_shard_arg, default=None,
                        metavar="K/N",
                        help="run only the K-th of N deterministic slices "
                             "of each sweep grid (1-based; requires --out). "
                             "Disjoint shards of one spec share a store "
                             "key and seed schedule; their .partial "
                             "outputs reassemble byte-for-byte with "
                             "'p2pmpirun merge'")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="persist sweep results under DIR; cached "
                             "cells are skipped on re-invocation")
    parser.add_argument("--force", action="store_true",
                        help="invalidate stored sweeps and recompute")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII charts for figure sweeps")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the experiment sweep in cProfile: dump "
                             "profile-<experiment>.pstats next to the store "
                             "(or the CWD without --out) and print the "
                             "top-20 cumulative entries")


def build_parser() -> argparse.ArgumentParser:
    """The job-run (and legacy ``--experiment``) parser."""
    parser = argparse.ArgumentParser(
        prog="p2pmpirun",
        description="Run a job on the simulated P2P-MPI Grid'5000 testbed.",
        epilog="Campaign verbs: 'p2pmpirun run EXPERIMENT' executes one "
               "campaign, 'p2pmpirun orchestrate EXPERIMENT --out DIR' "
               "runs it sharded over supervised worker processes, "
               "'p2pmpirun merge <STORE...> --out DIR' combines "
               "shard/checkpoint stores into the canonical file "
               "(refusing on conflicts), and 'p2pmpirun aggregate DIR' "
               "renders the campaign-level summary of a store "
               "directory.  See 'p2pmpirun run --help'.",
    )
    parser.add_argument("-n", type=int, default=None,
                        help="number of MPI processes (mandatory for runs)")
    parser.add_argument("-r", type=int, default=1,
                        help="replication degree (default 1)")
    parser.add_argument("--block", type=int, default=2,
                        help="block size when -a block")
    parser.add_argument("--group", type=int, default=None,
                        help="collective-group block unit when -a "
                             "topo_block (default: derived from n)")
    parser.add_argument("--experiment", choices=registry.names(),
                        help="deprecated spelling of 'p2pmpirun run "
                             "EXPERIMENT' (kept for compatibility)")
    _add_shape_flags(parser)
    _add_engine_flags(parser)
    parser.add_argument("prog", nargs="?", default="hostname",
                        choices=PROGRAMS, help="program to execute")
    return parser


def build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun run",
        description="Run one experiment campaign: regenerate a paper "
                    "figure/table, the ablation studies, the combined "
                    "§5.1 sweep ('coallocation'), the communication-"
                    "aware scenario pack ('commaware'), the sustained-"
                    "load availability campaign ('churnload'), the "
                    "EP/IS latency-ratio execution campaign "
                    "('applatency'), the topology-family ranking "
                    "campaign ('topozoo', e.g. 'run topozoo --family "
                    "scale_free --sites 200'), or the whole campaign "
                    "('all').")
    parser.add_argument("experiment", choices=registry.names(),
                        help="campaign to run")
    _add_shape_flags(parser)
    _add_engine_flags(parser)
    return parser


def build_orchestrate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun orchestrate",
        description="Run a whole campaign end to end over supervised "
                    "worker processes: shard the sweep grids, dispatch "
                    "up to --workers concurrent shard workers, track "
                    "their progress through heartbeat files, retry "
                    "crashed or stalled shards with exponential "
                    "backoff, merge every landed shard into --out "
                    "immediately, and promote the canonical store — "
                    "byte-identical to an unsharded run — when the "
                    "grid completes.")
    parser.add_argument("experiment", choices=registry.shardable_names(),
                        help="campaign to orchestrate (engine-backed "
                             "experiments only)")
    _add_shape_flags(parser)
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="campaign store directory; also hosts the "
                             ".orchestrate/ scratch tree while running")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="maximum concurrent shard workers (default 2)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="grid partitions (default: --workers; more "
                             "shards than workers queue and backfill)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="relaunch budget per shard beyond the first "
                             "attempt (default 2)")
    parser.add_argument("--stall-timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="terminate and retry a worker whose "
                             "heartbeat stops this long (default 300)")
    parser.add_argument("--poll-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="supervisor poll period (default 0.5)")
    parser.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base of the exponential relaunch backoff "
                             "(default 0.5)")
    parser.add_argument("--keep-partial", action="store_true",
                        help="keep shard scratch directories and "
                             ".partial files after a successful campaign")
    parser.add_argument("--inject-kill", type=int, default=None,
                        metavar="CELLS",
                        help="failure-injection hook for tests/CI: the "
                             "first shard's first worker self-kills "
                             "after CELLS cells")
    return parser


def build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun merge",
        description="Combine shard/checkpoint JSONL stores of ONE sweep "
                    "into a single canonical store.  Inputs may mix "
                    "canonical .jsonl files and .jsonl.partial shard or "
                    "checkpoint files produced on any machine; the merge "
                    "refuses on header-hash mismatch or divergent cell "
                    "values, tolerates torn tails and identical "
                    "duplicates, and — when the union covers the full "
                    "grid — writes a file byte-identical to what one "
                    "unsharded run would have saved, then removes the "
                    "promoted .partial inputs.")
    parser.add_argument("stores", nargs="+", metavar="STORE",
                        help="store files to merge (.jsonl and/or "
                             ".jsonl.partial of one spec)")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="store directory receiving the merged file "
                             "(canonical when complete, .partial when "
                             "cells are still missing)")
    parser.add_argument("--require-complete", action="store_true",
                        help="exit non-zero unless the merged cells cover "
                             "the full sweep grid")
    parser.add_argument("--keep-partial", action="store_true",
                        help="keep the input .partial files even when "
                             "the merge promotes the canonical store")
    return parser


def build_aggregate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun aggregate",
        description="Render the campaign-level summary of a store "
                    "directory: every sweep (canonical or pending "
                    ".partial) with completeness, axis shapes and "
                    "numeric-metric rollups.")
    parser.add_argument("root", metavar="DIR",
                        help="store directory (the --out of runs/merges)")
    return parser


# ----------------------------------------------------------------------
# single-job path
# ----------------------------------------------------------------------
def _run_single(args: argparse.Namespace) -> int:
    from repro.cluster import build_grid5000_cluster
    from repro.middleware.jobs import JobRequest

    if args.n is None:
        print("error: -n is mandatory (as in the paper's p2pmpirun)",
              file=sys.stderr)
        return 2
    cluster = build_grid5000_cluster(seed=args.seed)
    kwargs = {}
    if args.alloc == "block":
        kwargs["block"] = args.block
    elif args.alloc == "topo_block" and args.group is not None:
        kwargs["group"] = args.group
    request = JobRequest(n=args.n, r=args.r, strategy=args.alloc,
                         strategy_kwargs=kwargs,
                         app=make_app(args.prog, args.nas_class))
    result = cluster.submit_and_run(request)
    print(result.summary())
    if result.plan is not None:
        print("hosts by site:", dict(sorted(result.allocation.hosts_by_site().items())))
        print("cores by site:", dict(sorted(result.allocation.cores_by_site().items())))
        print(f"reservation: {result.timings.reservation_s * 1000:.1f} ms, "
              f"makespan: {result.timings.makespan_s:.2f} s")
    return 0 if result.ok else 1


# ----------------------------------------------------------------------
# experiment execution (shared by `run` and the legacy spelling)
# ----------------------------------------------------------------------
def _store(args: argparse.Namespace):
    from repro.experiments.engine import ResultStore

    return ResultStore(args.out) if args.out else None


def _run_experiment(args: argparse.Namespace) -> int:
    registry.get(args.experiment).cli_run(args, _store(args))
    return 0


def _run_profiled(args: argparse.Namespace) -> int:
    """cProfile wrapper around one experiment sweep (``--profile``).

    Dumps the raw pstats next to the store (the CWD without ``--out``)
    and prints the top-20 cumulative entries, so hot-path claims about
    the cost kernels come with receipts (DESIGN.md §11).
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        rc = _run_experiment(args)
    finally:
        profiler.disable()
    out_dir = args.out or "."
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"profile-{args.experiment}.pstats")
    profiler.dump_stats(path)
    print(f"\n[profile] wrote {path}; top 20 by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative")
    stats.print_stats(20)
    return rc


def _finish(parser: argparse.ArgumentParser,
            args: argparse.Namespace) -> int:
    """Validations + dispatch shared by ``run`` and the legacy form."""
    from repro.experiments.engine import resolve_jobs

    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = auto-size from CPU count)")
    args.jobs = resolve_jobs(args.jobs)
    if args.shard:
        if args.experiment is None:
            parser.error("--shard only applies to experiment sweeps "
                         "('p2pmpirun run EXPERIMENT --shard K/N')")
        if not registry.is_shardable(args.experiment):
            parser.error(
                f"experiment {args.experiment} does not shard (shardable: "
                f"{', '.join(registry.shardable_names())})")
        if not args.out:
            parser.error("--shard requires --out: a shard's cells persist "
                         "to the store's .partial file for the merge step")
        if args.force:
            parser.error("--force cannot be combined with --shard: it "
                         "would invalidate cells other shards checkpointed "
                         "into the same store")
    if args.profile:
        if args.experiment is None:
            parser.error("--profile only applies to experiment sweeps")
        if args.experiment == "table1":
            parser.error("--profile: table1 prints a static table, "
                         "there is no sweep to profile")
    if args.experiment:
        if args.profile:
            return _run_profiled(args)
        return _run_experiment(args)
    return _run_single(args)


def _run_run(argv: List[str]) -> int:
    parser = build_run_parser()
    return _finish(parser, parser.parse_args(argv))


# ----------------------------------------------------------------------
# orchestrate verb
# ----------------------------------------------------------------------
def _run_orchestrate(argv: List[str]) -> int:
    parser = build_orchestrate_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.inject_kill is not None and args.inject_kill < 1:
        parser.error("--inject-kill must be >= 1")

    from repro.experiments.orchestrator import Orchestrator, worker_flags

    experiment = registry.get(args.experiment)
    # Spec builders reuse the drivers' own CLI validation (bad
    # --demands/--ratios/... exit here, before any worker launches).
    specs = experiment.specs(args)
    orchestrator = Orchestrator(
        args.experiment, specs, args.out,
        worker_flags=worker_flags(args.experiment, args),
        workers=args.workers,
        shards=args.shards,
        retries=args.retries,
        stall_timeout_s=args.stall_timeout,
        poll_interval_s=args.poll_interval,
        backoff_base_s=args.backoff,
        keep_partial=args.keep_partial,
        inject_kill_cells=args.inject_kill,
    )
    report = orchestrator.run()
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# store tools: merge + aggregate verbs
# ----------------------------------------------------------------------
def _run_merge(argv: List[str]) -> int:
    from repro.experiments.aggregate import MergeConflictError, StoreMerger

    args = build_merge_parser().parse_args(argv)
    try:
        merged = StoreMerger().merge(args.stores)
        # write() can conflict too: it absorbs same-sweep files already
        # at the destination and refuses on divergence.
        path = merged.write(args.out)
    except MergeConflictError as exc:
        print(f"error: merge conflict: {exc}", file=sys.stderr)
        return 1
    print(f"[merge] {merged.summary()} -> {path}")
    if merged.complete and not args.keep_partial:
        # The canonical file supersedes the shard checkpoints that fed
        # it; leaving them around invites a later merge/aggregate to
        # trip over stale data.
        removed = 0
        for store in args.stores:
            candidate = os.path.abspath(store)
            if (candidate.endswith(".partial")
                    and candidate != os.path.abspath(str(path))
                    and os.path.exists(candidate)):
                os.unlink(candidate)
                removed += 1
        if removed:
            print(f"[merge] removed {removed} superseded .partial "
                  f"input(s) (--keep-partial retains them)")
    if args.require_complete and not merged.complete:
        print(f"error: merged store is incomplete "
              f"({len(merged.missing_indices)} cell(s) missing)",
              file=sys.stderr)
        return 1
    return 0


def _run_aggregate(argv: List[str]) -> int:
    from repro.experiments.aggregate import render_aggregate, scan_store_root

    args = build_aggregate_parser().parse_args(argv)
    if not os.path.isdir(args.root):
        # A typo'd path must not pass as an empty-but-clean campaign.
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2
    sweeps, conflicts = scan_store_root(args.root)
    print(render_aggregate(sweeps, conflicts))
    if conflicts:
        print(f"error: {len(conflicts)} sweep(s) have conflicting store "
              "files; see the CONFLICT sections above", file=sys.stderr)
        return 1
    return 0


#: Verbs dispatched before the legacy parser (``p2pmpirun run ...``,
#: ``p2pmpirun orchestrate ...``, ``p2pmpirun merge ...``, ...).
TOOL_VERBS = {"run": _run_run, "orchestrate": _run_orchestrate,
              "merge": _run_merge, "aggregate": _run_aggregate}


def _rewrite_legacy_experiment(argv: List[str]) -> List[str]:
    """``--experiment X`` -> ``run X`` (the pre-verb CLI, deprecated).

    Only the exact flag spellings are rewritten; a trailing
    ``--experiment`` with no value falls through to the legacy parser,
    whose own "expected one argument" error is the right one.
    """
    for i, arg in enumerate(argv):
        if arg == "--experiment":
            if i + 1 >= len(argv):
                break
            name, rest = argv[i + 1], argv[:i] + argv[i + 2:]
        elif arg.startswith("--experiment="):
            name, rest = arg.split("=", 1)[1], argv[:i] + argv[i + 1:]
        else:
            continue
        print(f"note: 'p2pmpirun --experiment {name}' is deprecated; "
              f"use 'p2pmpirun run {name}'", file=sys.stderr)
        return ["run", name] + rest
    return argv


def _dispatch(verb: str, argv: List[str]) -> int:
    try:
        return TOOL_VERBS[verb](argv)
    except BrokenPipeError:
        # The stdout reader (head, grep -q) went away mid-report;
        # park stdout on devnull so the interpreter's exit flush
        # does not raise again, and exit like a SIGPIPE'd tool.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in TOOL_VERBS:
        return _dispatch(argv[0], argv[1:])
    argv = _rewrite_legacy_experiment(argv)
    if argv and argv[0] in TOOL_VERBS:
        return _dispatch(argv[0], argv[1:])
    parser = build_parser()
    return _finish(parser, parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
