"""``p2pmpirun`` — command-line front end onto the simulated grid.

Mirrors the paper's invocation::

    p2pmpirun -n 100 -r 1 -a concentrate hostname

and adds experiment subcommands::

    p2pmpirun --experiment fig2   # concentrate co-allocation sweep
    p2pmpirun --experiment fig3   # spread co-allocation sweep
    p2pmpirun --experiment fig4   # EP + IS timing sweeps
    p2pmpirun --experiment table1 # resource inventory
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import CGLikeBenchmark, EPBenchmark, HostnameApp, ISBenchmark
from repro.cluster import build_grid5000_cluster
from repro.experiments.applications import (
    IS_PROCESS_COUNTS,
    run_application_experiment,
)
from repro.experiments.coallocation import run_coallocation_experiment
from repro.experiments.report import format_series_table, format_site_table
from repro.grid5000.builder import build_topology, paper_site_legend
from repro.grid5000.resources import CLUSTERS
from repro.middleware.jobs import JobRequest

__all__ = ["main", "build_parser", "make_app"]

PROGRAMS = ("hostname", "ep", "is", "cg")


def make_app(name: str, nas_class: str = "B"):
    """Application model for a program name (``None`` for hostname)."""
    if name == "hostname":
        return HostnameApp()
    if name == "ep":
        return EPBenchmark(nas_class)
    if name == "is":
        return ISBenchmark(nas_class)
    if name == "cg":
        return CGLikeBenchmark(nas_class)
    raise ValueError(f"unknown program {name!r} (choose from {PROGRAMS})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2pmpirun",
        description="Run a job on the simulated P2P-MPI Grid'5000 testbed.",
    )
    parser.add_argument("-n", type=int, default=None,
                        help="number of MPI processes (mandatory for runs)")
    parser.add_argument("-r", type=int, default=1,
                        help="replication degree (default 1)")
    parser.add_argument("-a", "--alloc", default="spread",
                        help="allocation strategy: spread | concentrate | block")
    parser.add_argument("--block", type=int, default=2,
                        help="block size when -a block")
    parser.add_argument("--class", dest="nas_class", default="B",
                        help="NAS class for ep/is/cg (default B)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--experiment",
                        choices=("fig2", "fig3", "fig4", "table1",
                                 "ablations"),
                        help="regenerate a paper figure/table (or the "
                             "ablation studies) instead of running a job")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII charts for figure sweeps")
    parser.add_argument("prog", nargs="?", default="hostname",
                        choices=PROGRAMS, help="program to execute")
    return parser


def _run_single(args: argparse.Namespace) -> int:
    if args.n is None:
        print("error: -n is mandatory (as in the paper's p2pmpirun)",
              file=sys.stderr)
        return 2
    cluster = build_grid5000_cluster(seed=args.seed)
    kwargs = {"block": args.block} if args.alloc == "block" else {}
    request = JobRequest(n=args.n, r=args.r, strategy=args.alloc,
                         strategy_kwargs=kwargs,
                         app=make_app(args.prog, args.nas_class))
    result = cluster.submit_and_run(request)
    print(result.summary())
    if result.plan is not None:
        print("hosts by site:", dict(sorted(result.allocation.hosts_by_site().items())))
        print("cores by site:", dict(sorted(result.allocation.cores_by_site().items())))
        print(f"reservation: {result.timings.reservation_s * 1000:.1f} ms, "
              f"makespan: {result.timings.makespan_s:.2f} s")
    return 0 if result.ok else 1


def _run_experiment(args: argparse.Namespace) -> int:
    if args.experiment == "table1":
        print(f"{'Site':<10}{'Cluster':<12}{'CPU':<20}"
              f"{'#Nodes':>8}{'#CPUs':>8}{'#Cores':>8}")
        for c in CLUSTERS:
            print(f"{c.site:<10}{c.name:<12}{c.cpu_model:<20}"
                  f"{c.nodes:>8}{c.cpus:>8}{c.cores:>8}")
        topo = build_topology()
        print("\nLegend (RTT to nancy):")
        for site, rtt, hosts, cores in paper_site_legend(topo):
            print(f"  {site:<10} {rtt:>7.3f} ms  {hosts:>3} hosts  {cores:>4} cores")
        return 0
    if args.experiment in ("fig2", "fig3"):
        strategy = "concentrate" if args.experiment == "fig2" else "spread"
        series = run_coallocation_experiment(
            seed=args.seed, strategies=(strategy,))[strategy]
        print(format_site_table(series, value="hosts"))
        print()
        print(format_site_table(series, value="cores"))
        if args.plot:
            from repro.experiments.figures import ascii_plot
            from repro.experiments.report import legend_order

            sites = legend_order(
                sorted({s for pt in series.points for s in pt.cores_by_site}))
            print()
            print(ascii_plot(
                series.demands,
                {site: series.cores_series(site) for site in sites},
                title=f"{strategy}: allocated cores per site",
                y_label="cores",
            ))
        return 0
    if args.experiment == "ablations":
        from repro.experiments.ablations import (
            latency_noise_ablation,
            replication_ablation,
        )

        print("Latency noise vs ranking quality (Kendall tau):")
        for p in latency_noise_ablation(seed=args.seed):
            print(f"  sigma={p.noise_sigma_ms:5.2f} ms  tau={p.tau:.4f}")
        print("\nReplication degree vs survival (5% host failures):")
        for p in replication_ablation(seed=args.seed or 1):
            print(f"  r={p.r}  P(survive)={p.survival:.4f}")
        return 0
    # fig4
    cluster = build_grid5000_cluster(seed=args.seed)
    ep = run_application_experiment(EPBenchmark(args.nas_class),
                                    cluster=cluster)
    print(format_series_table(ep, title="EP"))
    print()
    isb = run_application_experiment(ISBenchmark(args.nas_class),
                                     process_counts=IS_PROCESS_COUNTS,
                                     cluster=cluster)
    print(format_series_table(isb, title="IS"))
    if args.plot:
        from repro.experiments.figures import ascii_plot

        for label, series in (("EP", ep), ("IS", isb)):
            print()
            print(ascii_plot(
                series["spread"].ns,
                {name: s.times for name, s in series.items()},
                title=f"{label} class {args.nas_class} total time",
                y_label="s",
            ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment:
        return _run_experiment(args)
    return _run_single(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
