"""repro — reproduction of P2P-MPI co-allocation strategies (IPDPS/HPGC 2008).

The package implements, on top of a deterministic discrete-event
simulator, the full P2P-MPI middleware stack described by Genaud &
Rattanapoka: supernode/MPD overlay, reservation service, the *spread*
and *concentrate* co-allocation strategies, replica-aware rank
assignment, an MPJ-like communication library, and models of the NAS
EP/IS benchmarks used in the paper's evaluation on Grid'5000.

Quickstart
----------
>>> from repro import build_grid5000_cluster, JobRequest
>>> cluster = build_grid5000_cluster(seed=42)
>>> result = cluster.submit_and_run(JobRequest(n=100, strategy="concentrate"))
>>> result.allocation.hosts_by_site()["nancy"] > 0
True
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "P2PMPICluster",
    "build_grid5000_cluster",
    "JobRequest",
    "JobResult",
]

_LAZY = {
    "P2PMPICluster": ("repro.cluster", "P2PMPICluster"),
    "build_grid5000_cluster": ("repro.cluster", "build_grid5000_cluster"),
    "JobRequest": ("repro.middleware.jobs", "JobRequest"),
    "JobResult": ("repro.middleware.jobs", "JobResult"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
