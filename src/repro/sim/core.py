"""Event loop for the deterministic discrete-event simulator.

The design follows the classic event-list architecture: a binary heap of
``(time, priority, sequence, event)`` entries.  The *sequence* component
makes the order of simultaneous events deterministic (FIFO within a
priority class), which in turn makes every experiment in this repository
bit-for-bit reproducible for a given seed.

Two priority classes exist:

``URGENT``
    Used by process interrupts so that an interrupt scheduled "now"
    preempts ordinary events scheduled at the same instant.
``NORMAL``
    Everything else.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "Infinity",
]

#: Event priority that preempts same-time NORMAL events (interrupts).
URGENT = 0
#: Default event priority.
NORMAL = 1

#: Sentinel simulation horizon meaning "run until the queue drains".
Infinity = float("inf")


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, dead simulator...)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early.

    User code normally calls :meth:`Simulator.stop` rather than raising
    this directly.
    """


class Simulator:
    """Discrete-event simulator with a deterministic event queue.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry` attached
        to this simulator.  All stochastic models used in experiments
        draw from named child streams of this seed.
    trace:
        Optional callable ``(time, event) -> None`` invoked for every
        processed event; used by :class:`~repro.sim.monitor.Monitor`
        based debugging helpers.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> log = []
    >>> def proc(sim):
    ...     yield sim.timeout(2.5)
    ...     log.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> log
    [2.5]
    """

    def __init__(self, seed: int = 0, trace: Optional[Callable] = None) -> None:
        self._now: float = 0.0
        self._queue: list = []
        self._seq = count()
        self._stopped = False
        self._trace = trace
        self.rng = RngRegistry(seed)
        #: Number of events processed so far (diagnostic).
        self.events_processed: int = 0
        self.active_process = None  # set by Process while it runs

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert a triggered event into the queue ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def event(self, name: Optional[str] = None):
        """Return a fresh, untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None):
        """Return an event that succeeds ``delay`` time units from now."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value=value)

    def process(self, generator: Generator):
        """Start a new :class:`~repro.sim.process.Process` immediately."""
        from repro.sim.process import Process

        return Process(self, generator)

    def any_of(self, events: Iterable):
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable):
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or :data:`Infinity`."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heappop(self._queue)
        self._now = when
        self.events_processed += 1
        if self._trace is not None:
            self._trace(when, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "defused", False):
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the queue drained earlier, mirroring SimPy
        semantics so that periodic monitors read a consistent end time.
        """
        self._stopped = False
        horizon = Infinity if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        try:
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
                if self._stopped:
                    return
        except StopSimulation:
            return
        if horizon is not Infinity and horizon > self._now:
            self._now = horizon

    def run_until_complete(self, event, limit: float = Infinity) -> Any:
        """Run until ``event`` is processed and return its value.

        Raises
        ------
        SimulationError
            If the queue drains or ``limit`` passes before the event
            triggers, or re-raises the event's failure exception.
        """
        while not event.triggered:
            if not self._queue or self._queue[0][0] > limit:
                raise SimulationError(
                    f"simulation ended at t={self._now} before {event!r} triggered"
                )
            self.step()
        # Drain same-time callbacks so the event is fully processed.
        while not event.processed and self._queue and self._queue[0][0] <= self._now:
            self.step()
        if event._ok:
            return event._value
        event.defused = True
        exc = event._value
        raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def stop(self) -> None:
        """Halt :meth:`run` after the current event finishes processing."""
        self._stopped = True
