"""Mailboxes and counted resources for simulated processes.

These are the coordination primitives protocol code is written against:

* :class:`Store` — unbounded/bounded FIFO mailbox (``put``/``get``);
  every MPD, RS and MPI endpoint owns one as its inbox.
* :class:`FilterStore` — ``get(predicate)`` for tag/source matching,
  used by the MPI point-to-point layer.
* :class:`PriorityStore` — pops the smallest item first.
* :class:`Resource` — counted resource with FIFO queueing, used for
  per-host core slots and per-link flow caps.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, List, Optional

from repro.sim.core import SimulationError, Simulator
from repro.sim.events import Event

__all__ = ["Store", "FilterStore", "PriorityStore", "Resource"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim, name=f"put:{store.name}")
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Event returned by :meth:`Store.get`."""

    def __init__(self, store: "Store", predicate: Optional[Callable] = None) -> None:
        super().__init__(store.sim, name=f"get:{store.name}")
        self.predicate = predicate
        store._do_get(self)


class Store:
    """FIFO mailbox with optional capacity.

    ``put`` events succeed immediately while below capacity, otherwise
    they queue; ``get`` events succeed immediately when an item is
    available, otherwise they queue.  Matching is strictly FIFO which
    keeps message delivery order deterministic.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = "store") -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()

    def __len__(self) -> int:
        return len(self.items)

    # -- public API --------------------------------------------------------
    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def discard(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Remove and return every queued item matching ``predicate``.

        A synchronous maintenance primitive (no event involved): the
        replicated-MPI layer uses it to purge stale duplicate messages
        the moment a logical delivery supersedes them, and the migration
        protocol uses it to move a port's queued traffic between host
        inboxes.  Freed capacity admits queued putters.
        """
        removed: List[Any] = []
        kept: deque = deque()
        for item in self.items:
            (removed if predicate(item) else kept).append(item)
        if removed:
            self.items = kept
            self._match()
        return removed

    # -- internals -----------------------------------------------------------
    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._match()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._match()

    def _pop_for(self, event: StoreGet) -> Any:
        """Remove and return the item satisfying ``event`` or raise KeyError."""
        return self.items.popleft()

    def _satisfiable(self, event: StoreGet) -> bool:
        return bool(self.items)

    def _match(self) -> None:
        # Serve getters in FIFO order while possible.
        progress = True
        while progress:
            progress = False
            if self._getters and self._satisfiable(self._getters[0]):
                getter = self._getters.popleft()
                getter.succeed(self._pop_for(getter))
                progress = True
            # Admit queued putters into freed capacity.
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed()
                progress = True


class FilterStore(Store):
    """Store whose ``get`` accepts a predicate over items.

    Queued getters are scanned in FIFO order but a getter is only served
    when *some* item satisfies its predicate; other getters are not
    blocked behind it (like SimPy's FilterStore).
    """

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, predicate=predicate or (lambda item: True))

    def _satisfiable(self, event: StoreGet) -> bool:
        return any(event.predicate(item) for item in self.items)

    def _pop_for(self, event: StoreGet) -> Any:
        for idx, item in enumerate(self.items):
            if event.predicate(item):
                del self.items[idx]
                return item
        raise KeyError("no matching item")  # pragma: no cover - guarded

    def _match(self) -> None:
        progress = True
        while progress:
            progress = False
            for getter in list(self._getters):
                if self._satisfiable(getter):
                    self._getters.remove(getter)
                    getter.succeed(self._pop_for(getter))
                    progress = True
                    break
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed()
                progress = True

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._match()


class PriorityStore(Store):
    """Store that always yields its smallest item (heap ordered).

    Items must be mutually comparable; use ``(priority, payload)``
    tuples or dataclasses with ordering.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = "pstore") -> None:
        super().__init__(sim, capacity, name)
        self._heap: List = []
        self._tie = count()

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, event: StorePut) -> None:
        if len(self._heap) < self.capacity:
            heappush(self._heap, (event.item, next(self._tie)))
            event.succeed()
            self._match()
        else:
            self._putters.append(event)

    def _satisfiable(self, event: StoreGet) -> bool:
        return bool(self._heap)

    def _pop_for(self, event: StoreGet) -> Any:
        item, _ = heappop(self._heap)
        return item

    def _match(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._getters and self._heap:
                getter = self._getters.popleft()
                getter.succeed(self._pop_for(getter))
                progress = True
            while self._putters and len(self._heap) < self.capacity:
                putter = self._putters.popleft()
                heappush(self._heap, (putter.item, next(self._tie)))
                putter.succeed()
                progress = True


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=f"req:{resource.name}")
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw a still-pending request from the wait queue."""
        if not self.triggered:
            try:
                self.resource._waiters.remove(self)
            except ValueError:  # pragma: no cover - already granted
                pass


class Resource:
    """Counted resource with FIFO grant order.

    >>> sim = Simulator()
    >>> cores = Resource(sim, capacity=2, name="cores")
    """

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def _do_request(self, event: ResourceRequest) -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)

    def release(self, _request: Optional[ResourceRequest] = None) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self.in_use -= 1
