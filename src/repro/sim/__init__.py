"""Deterministic discrete-event simulation kernel.

This package is the substrate on which every other ``repro`` subsystem
runs: the P2P overlay, the reservation middleware, the MPJ-like
communication library and the application models are all simulated
processes scheduled by :class:`~repro.sim.core.Simulator`.

The kernel is intentionally SimPy-like (generator-based processes that
``yield`` events) because that idiom maps naturally onto protocol code:
an MPD daemon is a generator that waits on its mailbox, a ping probe is
a generator that sleeps and samples, an MPI collective is a generator
that waits on partner sends.  Unlike SimPy we guarantee *bit-for-bit
determinism* given a seed: the event queue breaks time ties by insertion
sequence and all randomness flows through :mod:`repro.sim.rng` named
streams.

Public API
----------
:class:`Simulator`
    The event loop; owns the clock and the queue.
:class:`Event`, :class:`Timeout`, :class:`Process`
    Waitable primitives.
:class:`AnyOf`, :class:`AllOf`
    Condition events over several waitables.
:class:`Interrupt`
    Exception injected into an interrupted process.
:class:`Store`, :class:`FilterStore`, :class:`PriorityStore`
    FIFO / predicate / priority mailboxes.
:class:`Resource`
    Counted resource with FIFO queueing.
:class:`RngRegistry`
    Named deterministic random streams.
:class:`Monitor`
    Time-series / counter recorder used by experiments.
"""

from repro.sim.core import Simulator, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import FilterStore, PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.monitor import Monitor, TraceRecord

__all__ = [
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "Store",
    "FilterStore",
    "PriorityStore",
    "Resource",
    "RngRegistry",
    "Monitor",
    "TraceRecord",
]
