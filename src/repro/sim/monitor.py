"""Measurement collection for simulation experiments.

A :class:`Monitor` is a lightweight append-only recorder of
``(time, key, value)`` samples plus named counters.  Experiment drivers
attach one monitor per run and the report layer turns it into the
paper-style series (hosts per site, cores per site, execution times).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = ["TraceRecord", "Monitor"]


@dataclass(frozen=True)
class TraceRecord:
    """One recorded sample."""

    time: float
    key: str
    value: Any
    tags: Tuple[Tuple[str, Any], ...] = ()

    def tag(self, name: str, default: Any = None) -> Any:
        for key, val in self.tags:
            if key == name:
                return val
        return default


@dataclass
class Monitor:
    """Sample and counter recorder.

    Examples
    --------
    >>> mon = Monitor()
    >>> mon.record(0.0, "alloc.host", "grelon-1", site="nancy")
    >>> mon.count("alloc.cores", 4)
    >>> mon.counters["alloc.cores"]
    4
    """

    records: List[TraceRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def record(self, time: float, key: str, value: Any, **tags: Any) -> None:
        self.records.append(TraceRecord(time, key, value, tuple(sorted(tags.items()))))

    def count(self, key: str, increment: float = 1) -> None:
        self.counters[key] += increment

    # -- queries -------------------------------------------------------------
    def select(self, key: str, **tags: Any) -> List[TraceRecord]:
        """Records matching ``key`` and every given tag value."""
        out = []
        for rec in self.records:
            if rec.key != key:
                continue
            if all(rec.tag(name) == want for name, want in tags.items()):
                out.append(rec)
        return out

    def values(self, key: str, **tags: Any) -> List[Any]:
        return [rec.value for rec in self.select(key, **tags)]

    def series(self, key: str, **tags: Any) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) arrays for a numeric-valued key."""
        recs = self.select(key, **tags)
        times = np.array([r.time for r in recs], dtype=float)
        vals = np.array([r.value for r in recs], dtype=float)
        return times, vals

    def group_count(self, key: str, tag: str) -> Dict[Any, int]:
        """Histogram of a tag's values over records of ``key``."""
        out: Dict[Any, int] = defaultdict(int)
        for rec in self.select(key):
            out[rec.tag(tag)] += 1
        return dict(out)

    def group_sum(self, key: str, tag: str) -> Dict[Any, float]:
        """Sum of record values grouped by a tag."""
        out: Dict[Any, float] = defaultdict(float)
        for rec in self.select(key):
            out[rec.tag(tag)] += float(rec.value)
        return dict(out)

    def merge(self, other: "Monitor") -> "Monitor":
        """Return a new monitor containing both runs' data."""
        merged = Monitor(records=list(self.records) + list(other.records))
        for key, val in self.counters.items():
            merged.counters[key] += val
        for key, val in other.counters.items():
            merged.counters[key] += val
        return merged

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
