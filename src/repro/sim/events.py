"""Waitable event primitives for the simulation kernel.

An :class:`Event` moves through three states:

``pending``  -> ``triggered`` (scheduled, value set) -> ``processed``
(callbacks ran).  Processes wait on events by ``yield``-ing them; the
:class:`~repro.sim.process.Process` driver registers itself as a
callback and resumes the generator with the event's value (or throws
the event's exception).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim.core import NORMAL, SimulationError, Simulator

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AnyOf", "AllOf"]

#: Sentinel for "no value yet".
PENDING = object()


class Event:
    """A one-shot waitable occurrence.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in ``repr`` and traces.
    """

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: When True, a failure with no waiter does not crash the run.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = NORMAL) -> "Event":
        """Schedule this event to succeed with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0,
             priority: int = NORMAL) -> "Event":
        """Schedule this event to fail with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay=delay, priority=priority)
        return self

    def trigger(self, other: "Event") -> "Event":
        """Mirror the outcome of an already-triggered ``other`` event."""
        if not other.triggered:
            raise SimulationError(f"cannot mirror untriggered {other!r}")
        if other._ok:
            return self.succeed(other._value)
        self.defused = False
        return self.fail(other._value)

    # -- misc -------------------------------------------------------------
    def add_callback(self, callback) -> None:
        """Register ``callback(event)``; runs immediately via the queue if
        the event is already processed."""
        if self.callbacks is None:
            # Already processed: deliver on a fresh urgent event so the
            # callback still runs from inside the event loop.
            proxy = Event(self.sim, name=f"replay:{self.name}")
            proxy.callbacks.append(lambda _e: callback(self))
            proxy._ok = True
            proxy._value = self._value
            self.sim.schedule(proxy)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback) -> None:
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that succeeds ``delay`` time units after creation."""

    def __init__(self, sim: Simulator, delay: float, value: Any = None,
                 name: Optional[str] = None) -> None:
        super().__init__(sim, name=name or f"timeout({delay:g})")
        self.delay = delay
        self.succeed(value=value, delay=delay)


class Condition(Event):
    """Composite event over several child events.

    Succeeds when ``evaluate(children, n_done)`` returns True; fails as
    soon as any child fails.  The success value is a dict mapping each
    *triggered* child event to its value, in child order.
    """

    def __init__(self, sim: Simulator, evaluate, events: List[Event],
                 name: Optional[str] = None) -> None:
        super().__init__(sim, name=name)
        self._evaluate = evaluate
        self._events = events
        self._done = 0
        self._completed: List[Event] = []
        for event in events:
            if event.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not events:
            self.succeed({})
            return
        for event in events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> dict:
        # Only children whose callbacks have run count as condition
        # results; a Timeout is "triggered" from creation but has not
        # *occurred* until the clock reaches it.
        return {e: e._value for e in self._events if e in self._completed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._completed.append(event)
        self._done += 1
        if self._evaluate(self._events, self._done):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Succeeds when at least one child event has succeeded."""

    def __init__(self, sim: Simulator, events: List[Event]) -> None:
        super().__init__(sim, lambda evs, n: n >= 1, events, name="AnyOf")


class AllOf(Condition):
    """Succeeds when every child event has succeeded."""

    def __init__(self, sim: Simulator, events: List[Event]) -> None:
        super().__init__(sim, lambda evs, n: n == len(evs), events, name="AllOf")
