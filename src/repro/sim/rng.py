"""Named deterministic random streams.

Every stochastic model in the repository (latency noise, host speed
jitter, churn inter-arrival times, workload shuffling) draws from a
stream obtained as ``registry.stream("net.latency.ping")``.  Streams
are derived from the master seed and a stable 64-bit hash of the name,
so that:

* two runs with the same seed are bit-for-bit identical;
* adding a *new* consumer of randomness does not perturb existing
  streams (no shared global sequence);
* results are independent of dictionary iteration or import order.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["stable_hash64", "RngRegistry"]


def stable_hash64(text: str) -> int:
    """Platform-stable 64-bit hash of ``text`` (first 8 bytes of SHA-256).

    Python's built-in ``hash`` is salted per process and must never be
    used for stream derivation.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two registries with equal seeds produce identical
        streams for identical names.

    Examples
    --------
    >>> a = RngRegistry(7).stream("x").random()
    >>> b = RngRegistry(7).stream("x").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(stable_hash64(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. one per repetition)."""
        return RngRegistry(self.seed ^ stable_hash64(f"fork:{salt}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
