"""Generator-based simulated processes.

A :class:`Process` drives a Python generator: each value the generator
``yield``-s must be an :class:`~repro.sim.events.Event`; the process
suspends until that event is processed and is then resumed with the
event's value (or the event's exception is thrown into it).

Processes are themselves events — they succeed with the generator's
return value — so processes can wait on each other, be combined with
:class:`~repro.sim.events.AnyOf` / ``AllOf``, and be interrupted.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import URGENT, SimulationError, Simulator
from repro.sim.events import Event

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary object passed by the interrupter, conventionally a
        short string or the failing host object.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt({self.cause!r})"


class Process(Event):
    """A running generator inside the simulation.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to drive.  It is started at the next event-loop
        iteration (not synchronously), so a process body observes a
        fully constructed ``Process`` object.
    """

    def __init__(self, sim: Simulator, generator: Generator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume once with a successful initial event.
        boot = Event(sim, name=f"init:{self.name}")
        boot.callbacks.append(self._resume)
        boot._ok = True
        boot._value = None
        sim.schedule(boot, priority=URGENT)

    # -- state -----------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on, if any."""
        return self._target

    # -- control ----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        The event the process was waiting on stays pending; the process
        may re-wait it after handling the interrupt.  Interrupting a
        finished process is a silent no-op (races between completion and
        failure injection are expected in churn experiments).
        """
        if self.triggered:
            return
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        hit = Event(self.sim, name=f"interrupt:{self.name}")
        hit.callbacks.append(self._deliver_interrupt)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit.defused = True
        self.sim.schedule(hit, priority=URGENT)

    def _deliver_interrupt(self, hit: Event) -> None:
        if self.triggered:  # completed in the meantime
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        self._step(throw=hit._value)

    # -- driver ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(send=event._value)
        else:
            event.defused = True
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        sim = self.sim
        prev, sim.active_process = sim.active_process, self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            sim.active_process = prev
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim.active_process = prev
            self.fail(exc)
            return
        sim.active_process = prev
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.processed:
            # Already processed: schedule an immediate replay.
            target.add_callback(self._resume)
            self._target = target
        else:
            target.add_callback(self._resume)
            self._target = target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
