"""The MPD's cached host list with latency values (§4.1).

"Each MPD maintains a local cache of the supernode host list, called
cached list ... To each host in the cache list is associated a network
latency value."  The booking step sorts this cache by ascending
latency (§4.2 step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.net.latency import LatencyEstimate
from repro.net.topology import Host

__all__ = ["CacheEntry", "PeerCache"]


@dataclass
class CacheEntry:
    """One cached peer."""

    host: Host
    latency_ms: Optional[float] = None
    n_samples: int = 0
    last_update: float = 0.0
    dead: bool = False

    @property
    def measured(self) -> bool:
        return self.latency_ms is not None


class PeerCache:
    """Insertion-ordered peer cache with latency bookkeeping."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._entries: Dict[str, CacheEntry] = {}

    def __len__(self) -> int:
        return sum(1 for e in self._entries.values() if not e.dead)

    def __contains__(self, host_name: str) -> bool:
        entry = self._entries.get(host_name)
        return entry is not None and not entry.dead

    # -- updates ------------------------------------------------------------
    def add(self, host: Host) -> CacheEntry:
        """Insert or revive a peer; keeps existing measurements."""
        entry = self._entries.get(host.name)
        if entry is None:
            entry = CacheEntry(host=host)
            self._entries[host.name] = entry
        entry.dead = False
        return entry

    def merge(self, hosts: Iterable[Host]) -> int:
        """Add many peers; returns the number of new entries."""
        added = 0
        for host in hosts:
            if host.name not in self._entries:
                added += 1
            self.add(host)
        return added

    def set_latency(self, host_name: str, estimate: LatencyEstimate,
                    now: float) -> None:
        entry = self._entries[host_name]
        entry.latency_ms = estimate.value_ms
        entry.n_samples += estimate.n_samples
        entry.last_update = now

    def fold_latency(self, host_name: str, sample_ms: float, now: float,
                     ewma_alpha: Optional[float] = None) -> float:
        """Fold one new probe into the cached value.

        With ``ewma_alpha`` the cache keeps an exponential moving
        average across ping rounds (the paper's future-work smoothing);
        without it the newest sample replaces the old value (the
        published behaviour: the cache holds the last measurement).
        """
        entry = self._entries[host_name]
        if entry.latency_ms is None or ewma_alpha is None:
            entry.latency_ms = sample_ms
        else:
            entry.latency_ms += ewma_alpha * (sample_ms - entry.latency_ms)
        entry.n_samples += 1
        entry.last_update = now
        return entry.latency_ms

    def mark_dead(self, host_name: str) -> None:
        entry = self._entries.get(host_name)
        if entry is not None:
            entry.dead = True

    def drop_dead(self) -> List[str]:
        """Remove dead entries entirely; returns their names."""
        dead = [name for name, e in self._entries.items() if e.dead]
        for name in dead:
            del self._entries[name]
        return dead

    # -- queries -----------------------------------------------------------
    def entry(self, host_name: str) -> CacheEntry:
        return self._entries[host_name]

    def live_entries(self) -> List[CacheEntry]:
        return [e for e in self._entries.values() if not e.dead]

    def unmeasured(self) -> List[CacheEntry]:
        return [e for e in self.live_entries() if not e.measured]

    def sorted_by_latency(self) -> List[CacheEntry]:
        """Live, measured entries by ascending latency (booking order).

        Ties (extremely unlikely with continuous latencies) break by
        host name for determinism.
        """
        measured = [e for e in self.live_entries() if e.measured]
        return sorted(measured, key=lambda e: (e.latency_ms, e.host.name))

    def hosts(self) -> List[Host]:
        return [e.host for e in self.live_entries()]
