"""Well-known service ports and message kinds of the overlay protocols.

Message *kinds* (string tags on :class:`repro.net.transport.Message`):

Supernode protocol (port ``supernode``):
    ``REGISTER`` -> ``REGISTER_ACK`` (payload: peer list)
    ``ALIVE`` (periodic heartbeat)
    ``GET_PEERS`` -> ``PEERS``

Reservation protocol (port ``rs``), §4.2 steps 3-5:
    ``RESERVE`` -> ``RESERVE_OK`` (payload: P) | ``RESERVE_NOK``
    ``CANCEL``

Job execution (port ``mpd``), §4.2 steps 6-8:
    ``START`` -> ``STARTED`` | ``START_REFUSED``
    ``DONE`` (process completion back to submitter)
    ``ABORT``
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SUPERNODE_PORT", "MPD_PORT", "RS_PORT", "Ports",
           "SIZE_CONTROL", "SIZE_PEERLIST_ENTRY"]

SUPERNODE_PORT = "supernode"
MPD_PORT = "mpd"
RS_PORT = "rs"

#: Wire size of a small control message (headers + a few fields).
SIZE_CONTROL = 256
#: Wire size per peer entry in a PEERS payload.
SIZE_PEERLIST_ENTRY = 48


@dataclass(frozen=True)
class Ports:
    """Reply-port naming helpers (unique per request)."""

    @staticmethod
    def rs_reply(key: str) -> str:
        return f"rs-reply:{key}"

    @staticmethod
    def start_reply(job_id: str) -> str:
        return f"start-reply:{job_id}"

    @staticmethod
    def done(job_id: str) -> str:
        return f"done:{job_id}"

    @staticmethod
    def supernode_reply(host: str) -> str:
        return f"sn-reply:{host}"

    @staticmethod
    def mpi(job_id: str, rank: int, replica: int) -> str:
        return f"mpi:{job_id}:{rank}:{replica}"
