"""The supernode: bootstrap entry point and peer registry (§3.2).

The supernode maintains the *host list*: "Each list element simply is
the host IP and its services ports plus a 'last seen' time stamp."
Peers register on boot and send periodic alive signals; stale peers are
pruned lazily whenever the list is read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.net.transport import Message, Network
from repro.overlay.messages import (
    SIZE_CONTROL,
    SIZE_PEERLIST_ENTRY,
    SUPERNODE_PORT,
)

__all__ = ["PeerRecord", "Supernode"]


@dataclass
class PeerRecord:
    """One host-list entry.

    ``seq`` is the highest per-origin gossip sequence applied so far
    (see :mod:`repro.overlay.gossip`); updates carrying an older or
    equal ``seq`` are reordered/duplicated deliveries and are dropped
    rather than rolling ``last_seen`` backwards.
    """

    host_name: str
    last_seen: float
    seq: int = 0

    def stale(self, now: float, horizon: float) -> bool:
        return (now - self.last_seen) > horizon


class Supernode:
    """Registry service bound to one host.

    Parameters
    ----------
    network:
        Transport used for replies.
    host_name:
        Host the supernode runs on (its inbox must be registered).
    stale_after_s:
        A peer that has not been seen for this long is dropped from
        the host list on the next read.
    """

    def __init__(self, network: Network, host_name: str,
                 stale_after_s: float = 300.0) -> None:
        self.network = network
        self.host_name = host_name
        self.stale_after_s = stale_after_s
        self.records: Dict[str, PeerRecord] = {}
        #: Diagnostics counters.
        self.registrations = 0
        self.alive_signals = 0
        self.peer_queries = 0
        self.stale_updates = 0

    # -- registry ------------------------------------------------------------
    def _touch(self, peer: str, now: float, seq: int = 0) -> bool:
        """Apply one membership update; False if dropped as stale.

        A ``seq`` of 0 means the sender predates sequence stamping
        (or the message kind carries none) — always applied, matching
        the pre-seq behaviour.
        """
        rec = self.records.get(peer)
        if rec is None:
            self.records[peer] = PeerRecord(peer, now, seq)
            return True
        if seq and seq <= rec.seq:
            self.stale_updates += 1
            return False
        rec.last_seen = now
        if seq:
            rec.seq = seq
        return True

    def prune(self, now: float) -> List[str]:
        """Drop stale records; returns the dropped names."""
        dead = [
            name for name, rec in self.records.items()
            if rec.stale(now, self.stale_after_s)
        ]
        for name in dead:
            del self.records[name]
        return dead

    def peer_list(self, now: float) -> List[str]:
        """Current live host list, registration-order deterministic."""
        self.prune(now)
        return list(self.records)

    def drop(self, peer: str) -> None:
        """Explicitly remove a peer (used when an MPD reports a death)."""
        self.records.pop(peer, None)

    # -- service process -------------------------------------------------------
    def service(self) -> Generator:
        """Simulated process answering supernode-port traffic forever."""
        sim = self.network.sim
        while True:
            msg: Message = yield self.network.receive(self.host_name, SUPERNODE_PORT)
            now = sim.now
            if msg.kind == "REGISTER":
                self.registrations += 1
                self._touch(msg.src, now, msg.payload.get("seq", 0))
                peers = self.peer_list(now)
                self.network.send(
                    self.host_name, msg.src,
                    port=msg.payload["reply_port"], kind="REGISTER_ACK",
                    payload={"peers": peers},
                    size_bytes=SIZE_CONTROL + SIZE_PEERLIST_ENTRY * len(peers),
                )
            elif msg.kind == "ALIVE":
                self.alive_signals += 1
                self._touch(msg.src, now, msg.payload.get("seq", 0))
            elif msg.kind == "GET_PEERS":
                self.peer_queries += 1
                self._touch(msg.src, now)
                peers = self.peer_list(now)
                self.network.send(
                    self.host_name, msg.src,
                    port=msg.payload["reply_port"], kind="PEERS",
                    payload={"peers": peers},
                    size_bytes=SIZE_CONTROL + SIZE_PEERLIST_ENTRY * len(peers),
                )
            elif msg.kind == "REPORT_DEAD":
                for name in msg.payload["peers"]:
                    self.drop(name)
            # Unknown kinds are ignored (forward compatibility).
