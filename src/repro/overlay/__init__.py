"""P2P overlay: supernode registry, MPD membership, latency caches.

This is the JXTA-replacement infrastructure §3.2 describes: a
*supernode* is the bootstrap entry point maintaining the host list;
each peer's *MPD* joins on ``mpiboot``, keeps a cached copy of the host
list, measures application-level latency to cached peers, and sends
periodic alive signals.
"""

from repro.overlay.messages import (
    MPD_PORT,
    RS_PORT,
    SUPERNODE_PORT,
    Ports,
)
from repro.overlay.supernode import Supernode, PeerRecord
from repro.overlay.cache import CacheEntry, PeerCache
from repro.overlay.peer import PeerDaemon
from repro.overlay.churn import (
    ChurnInjector,
    FailureEvent,
    JobSurvival,
    SurvivalLedger,
)

__all__ = [
    "MPD_PORT",
    "RS_PORT",
    "SUPERNODE_PORT",
    "Ports",
    "Supernode",
    "PeerRecord",
    "CacheEntry",
    "PeerCache",
    "PeerDaemon",
    "ChurnInjector",
    "FailureEvent",
    "JobSurvival",
    "SurvivalLedger",
]
