"""Sequence-numbered gossip primitives for peer-state propagation.

The overlay's membership truth lives at the supernode (§3.2), but both
the supernode's ALIVE stream and the control plane's replicated peer
views (:mod:`repro.middleware.controlplane`) face the same distributed
problem: state updates about one origin can arrive out of order or more
than once, and a receiver must converge on the *newest* state without
coordination.  The classic answer — used here — is per-origin sequence
numbers with last-writer-wins merge:

* every origin stamps each update it emits with a monotonically
  increasing ``seq``;
* a receiver keeps, per origin, the highest ``seq`` it has applied and
  drops anything at or below it (duplicate or stale);
* any gossip topology (direct, relayed, anti-entropy exchange) then
  converges every view to the origin's latest state, in any delivery
  order.

Everything here is plain deterministic data handling: no wall clock, no
randomness, no I/O — timestamps are whatever (virtual) clock the caller
stamps in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["PeerDigest", "GossipEnvelope", "GossipView"]


@dataclass(frozen=True)
class PeerDigest:
    """One origin's self-reported state at sequence ``seq``.

    ``status`` is free-form ("online", "suspect", "offline"...);
    ``load`` is the origin's busy-slot count, and ``last_seen`` the
    clock value the *stamping* node observed — both travel opaquely.
    """

    name: str
    seq: int
    status: str = "online"
    load: int = 0
    last_seen: float = 0.0


@dataclass(frozen=True)
class GossipEnvelope:
    """A batch of digests relayed by ``origin`` (its own or forwarded).

    ``seq`` is the *envelope* sequence of the relay, letting receivers
    drop whole duplicate envelopes cheaply before per-digest merging.
    """

    origin: str
    seq: int
    entries: Tuple[PeerDigest, ...] = ()


class GossipView:
    """A materialised peer view converging via seq-deduped merges.

    One instance per consumer (a site relay, a tenant's local cache).
    :meth:`apply` folds an envelope in and reports how many digests
    actually advanced the view — the rest were duplicates or stale,
    which is the property the control-plane tests pin.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.peers: Dict[str, PeerDigest] = {}
        #: Highest envelope seq applied per relay origin.
        self.envelope_seq: Dict[str, int] = {}
        #: Diagnostics: digests applied / dropped as stale-or-duplicate.
        self.applied = 0
        self.stale = 0

    def __len__(self) -> int:
        return len(self.peers)

    def get(self, name: str) -> Optional[PeerDigest]:
        return self.peers.get(name)

    def apply_digest(self, digest: PeerDigest) -> bool:
        """Merge one digest; True if it advanced the view."""
        have = self.peers.get(digest.name)
        if have is not None and digest.seq <= have.seq:
            self.stale += 1
            return False
        self.peers[digest.name] = digest
        self.applied += 1
        return True

    def apply(self, envelope: GossipEnvelope) -> int:
        """Merge an envelope; returns the number of digests applied.

        A whole envelope whose ``seq`` is not newer than the last one
        seen from the same relay is dropped outright (retransmission).
        """
        last = self.envelope_seq.get(envelope.origin, 0)
        if envelope.seq <= last:
            self.stale += len(envelope.entries)
            return 0
        self.envelope_seq[envelope.origin] = envelope.seq
        return sum(1 for digest in envelope.entries
                   if self.apply_digest(digest))

    def digest(self, names: Optional[Iterable[str]] = None
               ) -> Tuple[PeerDigest, ...]:
        """The view's current digests, name-sorted (deterministic)."""
        if names is None:
            selected: List[PeerDigest] = list(self.peers.values())
        else:
            selected = [self.peers[n] for n in names if n in self.peers]
        return tuple(sorted(selected, key=lambda d: d.name))

    def online(self) -> List[str]:
        """Names currently reported online, sorted."""
        return sorted(n for n, d in self.peers.items()
                      if d.status == "online")
