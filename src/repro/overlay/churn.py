"""Failure/churn injection.

Grid failures are "far more frequent than on supercomputers" (§3.2) —
this module schedules host crashes (and optional revivals) so the
fault-tolerance layer and the reservation timeouts can be exercised
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence

import numpy as np

from repro.net.transport import Network
from repro.sim.core import Simulator

__all__ = ["FailureEvent", "ChurnInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled state change."""

    time: float
    host_name: str
    down: bool  # True = crash, False = revive


class ChurnInjector:
    """Applies a deterministic schedule of host crashes/revivals.

    Parameters
    ----------
    sim, network:
        Substrate; crashes are applied via ``network.set_down``.
    on_change:
        Optional hook ``(host_name, down) -> None`` so higher layers
        (MPD tables, gatekeeper) can react.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        on_change: Optional[Callable[[str, bool], None]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.on_change = on_change
        self.applied: List[FailureEvent] = []

    # -- schedule construction ---------------------------------------------
    @staticmethod
    def poisson_schedule(
        hosts: Sequence[str],
        rate_per_host_s: float,
        horizon_s: float,
        rng: np.random.Generator,
        revive_after_s: Optional[float] = None,
    ) -> List[FailureEvent]:
        """Independent exponential time-to-failure per host."""
        events: List[FailureEvent] = []
        for name in hosts:
            t = float(rng.exponential(1.0 / rate_per_host_s))
            if t < horizon_s:
                events.append(FailureEvent(t, name, True))
                if revive_after_s is not None and t + revive_after_s < horizon_s:
                    events.append(FailureEvent(t + revive_after_s, name, False))
        events.sort(key=lambda e: (e.time, e.host_name))
        return events

    @staticmethod
    def kill_at(times_hosts: Sequence[tuple]) -> List[FailureEvent]:
        """Explicit schedule: iterable of ``(time, host_name)``."""
        return sorted(
            (FailureEvent(t, h, True) for t, h in times_hosts),
            key=lambda e: (e.time, e.host_name),
        )

    # -- execution ------------------------------------------------------------
    def run(self, schedule: Sequence[FailureEvent]) -> Generator:
        """Process body applying the schedule in order."""
        last = 0.0
        for event in schedule:
            if event.time < last:
                raise ValueError("schedule must be time-sorted")
            if event.time > self.sim.now:
                yield self.sim.timeout(event.time - self.sim.now)
            last = event.time
            self.network.set_down(event.host_name, event.down)
            self.applied.append(event)
            if self.on_change is not None:
                self.on_change(event.host_name, event.down)

    def start(self, schedule: Sequence[FailureEvent]):
        """Spawn the injector as a simulation process."""
        return self.sim.process(self.run(schedule))
