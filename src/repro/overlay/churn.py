"""Failure/churn injection.

Grid failures are "far more frequent than on supercomputers" (§3.2) —
this module schedules host crashes (and optional revivals) so the
fault-tolerance layer and the reservation timeouts can be exercised
deterministically.

Two schedule families exist:

* :meth:`ChurnInjector.first_failure_schedule` — at most one failure
  per host, drawn as an exponential time-to-first-failure.  Sweeping
  its ``rate`` is really a sweep of *P(fail before horizon)*; use it
  for one-shot survival probes (the §3.2 replication ablation).
* :meth:`ChurnInjector.sustained_schedule` — an ongoing Poisson
  failure process per host over the whole horizon, optionally with a
  fixed repair downtime (alternating renewal process).  This is the
  mode whose ``rate`` is an honest events-per-second axis, and the one
  the churn-under-load campaign sweeps.

A :class:`SurvivalLedger` can be attached to an injector to record
what actually happened: every applied crash/revival, plus (fed by the
experiment driver) the per-job outcome — which replicas died, which
jobs completed degraded and which failed outright.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.net.transport import Network
from repro.sim.core import Simulator

__all__ = ["FailureEvent", "ChurnInjector", "JobSurvival", "SurvivalLedger"]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled state change."""

    time: float
    host_name: str
    down: bool  # True = crash, False = revive


#: Statuses of jobs that actually launched (their replicas were exposed
#: to churn); LAUNCH_FAILED/INFEASIBLE jobs never started any copy.
_LAUNCHED_STATUSES = ("success", "degraded", "ranks_lost")


@dataclass(frozen=True)
class JobSurvival:
    """Per-job outcome entry of a :class:`SurvivalLedger`."""

    job_id: str
    submitter: str
    strategy: str
    status: str
    copies_planned: int
    copies_done: int
    ranks_lost: int
    hosts_used: int
    submitted_at: float
    finished_at: float
    #: Copy moves observed while the job ran (cooperative migrations /
    #: crash resurrections); informational, never part of copies_done.
    copies_migrated: int = 0
    copies_rejoined: int = 0

    @property
    def copies_lost(self) -> int:
        return self.copies_planned - self.copies_done

    @property
    def completion_s(self) -> float:
        return self.finished_at - self.submitted_at

    @property
    def completed(self) -> bool:
        """Did the job deliver a result (possibly with replicas lost)?"""
        return self.status in ("success", "degraded")

    @property
    def launched(self) -> bool:
        return self.status in _LAUNCHED_STATUSES


class SurvivalLedger:
    """What churn did to a round: applied events + per-job outcomes.

    The injector appends every crash/revival it applies; the experiment
    driver appends one :class:`JobSurvival` per finished submission.
    The derived metrics answer the §3.2 questions directly:
    *availability* (jobs that delivered a result / jobs submitted) and
    *replica survival* (process copies that completed / copies planned,
    over jobs that actually launched).
    """

    def __init__(self) -> None:
        self.crashes: List[FailureEvent] = []
        self.revivals: List[FailureEvent] = []
        self.jobs: List[JobSurvival] = []

    # -- recording ---------------------------------------------------------
    def record_event(self, event: FailureEvent) -> None:
        (self.crashes if event.down else self.revivals).append(event)

    def record_job(self, submitter: str, result) -> JobSurvival:
        """Derive and append the ledger entry for one JobResult.

        Migration-aware: only genuine completion payloads (``event`` is
        ``"done"`` or absent) count as done copies, so a rank that
        moved hosts mid-run and then completed is counted exactly once
        — MIGRATED/REJOINED notices can neither inflate ``copies_done``
        nor hide a rank as lost.  The moves themselves are tallied
        separately from ``result.migrations``.
        """
        plan = result.plan
        done = {key for key, payload in result.completions.items()
                if (payload or {}).get("event", "done") == "done"}
        moves = getattr(result, "migrations", [])
        entry = JobSurvival(
            job_id=result.job_id,
            submitter=submitter,
            strategy=result.request.strategy,
            status=result.status.value,
            copies_planned=(0 if plan is None else plan.total_processes),
            copies_done=len(done),
            ranks_lost=(0 if plan is None else
                        plan.n - len({r for r, _c in done})),
            hosts_used=(0 if plan is None else len(plan.used_hosts())),
            submitted_at=result.timings.submitted_at,
            finished_at=result.timings.finished_at,
            copies_migrated=sum(1 for m in moves
                                if m.get("event") == "migrated"),
            copies_rejoined=sum(1 for m in moves
                                if m.get("event") == "rejoined"),
        )
        self.jobs.append(entry)
        return entry

    # -- derived metrics ---------------------------------------------------
    @property
    def jobs_submitted(self) -> int:
        return len(self.jobs)

    @property
    def jobs_completed(self) -> int:
        return sum(1 for j in self.jobs if j.completed)

    @property
    def jobs_degraded(self) -> int:
        return sum(1 for j in self.jobs if j.status == "degraded")

    @property
    def jobs_failed(self) -> int:
        return sum(1 for j in self.jobs if not j.completed)

    def availability(self) -> Optional[float]:
        """Fraction of submitted jobs that delivered a result."""
        if not self.jobs:
            return None
        return self.jobs_completed / self.jobs_submitted

    def replica_survival(self) -> Optional[float]:
        """Completed copies / planned copies over launched jobs."""
        planned = sum(j.copies_planned for j in self.jobs if j.launched)
        if planned == 0:
            return None
        done = sum(j.copies_done for j in self.jobs if j.launched)
        return done / planned

    def statuses(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self.jobs:
            out[job.status] = out.get(job.status, 0) + 1
        return dict(sorted(out.items()))

    def mean_completion_s(self) -> Optional[float]:
        """Mean submitted-to-finished time over completed jobs."""
        times = [j.completion_s for j in self.jobs if j.completed]
        if not times:
            return None
        return sum(times) / len(times)

    def summary(self) -> Dict[str, object]:
        """JSON-able round summary (floats rounded: store-stable)."""
        availability = self.availability()
        survival = self.replica_survival()
        mean_completion = self.mean_completion_s()
        return {
            "jobs": self.jobs_submitted,
            "completed": self.jobs_completed,
            "degraded": self.jobs_degraded,
            "failed": self.jobs_failed,
            "statuses": self.statuses(),
            "availability": (None if availability is None
                             else round(availability, 6)),
            "copies_planned": sum(j.copies_planned for j in self.jobs
                                  if j.launched),
            "copies_done": sum(j.copies_done for j in self.jobs
                               if j.launched),
            "replica_survival": (None if survival is None
                                 else round(survival, 6)),
            "mean_completion_s": (None if mean_completion is None
                                  else round(mean_completion, 6)),
            "migrations": sum(j.copies_migrated for j in self.jobs),
            "rejoins": sum(j.copies_rejoined for j in self.jobs),
            "crashes": len(self.crashes),
            "revivals": len(self.revivals),
        }


class ChurnInjector:
    """Applies a deterministic schedule of host crashes/revivals.

    Parameters
    ----------
    sim, network:
        Substrate; crashes are applied via ``network.set_down``.
    on_change:
        Optional hook ``(host_name, down) -> None`` so higher layers
        (MPD tables, gatekeeper) can react.
    ledger:
        Optional :class:`SurvivalLedger` recording every applied event
        (may also be attached later via the attribute).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        on_change: Optional[Callable[[str, bool], None]] = None,
        ledger: Optional[SurvivalLedger] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.on_change = on_change
        self.ledger = ledger
        self.applied: List[FailureEvent] = []

    # -- schedule construction ---------------------------------------------
    @staticmethod
    def first_failure_schedule(
        hosts: Sequence[str],
        rate_per_host_s: float,
        horizon_s: float,
        rng: np.random.Generator,
        revive_after_s: Optional[float] = None,
    ) -> List[FailureEvent]:
        """Independent exponential time-to-*first*-failure per host.

        Each host crashes **at most once**: the draw is a single
        exponential sample, so the effective knob is the probability
        ``1 - exp(-rate * horizon)`` of failing within the horizon, not
        a sustained event rate.  For an honest rate axis (ongoing
        failures over the horizon) use :meth:`sustained_schedule`.
        """
        events: List[FailureEvent] = []
        for name in hosts:
            t = float(rng.exponential(1.0 / rate_per_host_s))
            if t < horizon_s:
                events.append(FailureEvent(t, name, True))
                if revive_after_s is not None and t + revive_after_s < horizon_s:
                    events.append(FailureEvent(t + revive_after_s, name, False))
        events.sort(key=lambda e: (e.time, e.host_name))
        return events

    @staticmethod
    def poisson_schedule(
        hosts: Sequence[str],
        rate_per_host_s: float,
        horizon_s: float,
        rng: np.random.Generator,
        revive_after_s: Optional[float] = None,
    ) -> List[FailureEvent]:
        """Deprecated name for :meth:`first_failure_schedule`.

        The name over-promised: despite the exponential draw this never
        was a Poisson *process* — each host fails at most once, so any
        "rate" sweep over it is secretly a probability sweep.
        """
        warnings.warn(
            "ChurnInjector.poisson_schedule draws one failure per host and "
            "is deprecated: use first_failure_schedule (same behaviour) or "
            "sustained_schedule (a true ongoing failure process)",
            DeprecationWarning, stacklevel=2)
        return ChurnInjector.first_failure_schedule(
            hosts, rate_per_host_s, horizon_s, rng,
            revive_after_s=revive_after_s)

    @staticmethod
    def sustained_schedule(
        hosts: Sequence[str],
        rate_per_host_s: float,
        horizon_s: float,
        rng: np.random.Generator,
        downtime_s: Optional[float] = None,
    ) -> List[FailureEvent]:
        """Ongoing failures over the whole horizon (the sustained mode).

        Each host runs an independent alternating renewal process: up
        intervals are exponential with the given rate, down intervals
        last exactly ``downtime_s`` before the host revives and becomes
        eligible to fail again.  With ``downtime_s=None`` a crashed
        host never revives, so the first crash is also the last (the
        remaining draws are consumed by no one — the per-host sequence
        simply stops).

        Events are generated host by host in the order given (one rng
        consumption order), then time-sorted; a fixed seed therefore
        yields a byte-stable schedule regardless of later re-sorting.
        """
        if rate_per_host_s <= 0:
            raise ValueError("rate_per_host_s must be > 0")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0")
        if downtime_s is not None and downtime_s <= 0:
            raise ValueError("downtime_s must be > 0 (or None)")
        events: List[FailureEvent] = []
        for name in hosts:
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rate_per_host_s))
                if t >= horizon_s:
                    break
                events.append(FailureEvent(t, name, True))
                if downtime_s is None:
                    break  # permanent death: no revival, no further draws
                t += downtime_s
                if t >= horizon_s:
                    break
                events.append(FailureEvent(t, name, False))
        events.sort(key=lambda e: (e.time, e.host_name))
        return events

    @staticmethod
    def kill_at(times_hosts: Sequence[tuple]) -> List[FailureEvent]:
        """Explicit schedule: iterable of ``(time, host_name)``."""
        return sorted(
            (FailureEvent(t, h, True) for t, h in times_hosts),
            key=lambda e: (e.time, e.host_name),
        )

    # -- execution ------------------------------------------------------------
    def run(self, schedule: Sequence[FailureEvent]) -> Generator:
        """Process body applying the schedule in order."""
        last = 0.0
        for event in schedule:
            if event.time < last:
                raise ValueError("schedule must be time-sorted")
            if event.time > self.sim.now:
                yield self.sim.timeout(event.time - self.sim.now)
            last = event.time
            self.network.set_down(event.host_name, event.down)
            self.applied.append(event)
            if self.ledger is not None:
                self.ledger.record_event(event)
            if self.on_change is not None:
                self.on_change(event.host_name, event.down)

    def start(self, schedule: Sequence[FailureEvent]):
        """Spawn the injector as a simulation process."""
        return self.sim.process(self.run(schedule))
