"""Peer membership daemon: the overlay half of the MPD (§3.2).

``mpiboot`` starts an MPD whose overlay duties are:

* join the overlay by registering with a known supernode;
* send periodic alive signals;
* maintain the cached host list and its latency values;
* answer latency probes (ping responder).

The job-coordination half (reservation, allocation, launch) lives in
:mod:`repro.middleware.mpd`, which composes this class.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.net.latency import LatencyModel
from repro.net.ping import PingService
from repro.net.topology import Host, Topology
from repro.net.transport import Network
from repro.overlay.cache import PeerCache
from repro.overlay.messages import SIZE_CONTROL, SUPERNODE_PORT, Ports
from repro.sim.core import Simulator

__all__ = ["PeerDaemon"]


class PeerDaemon:
    """Overlay membership state machine for one host.

    Parameters
    ----------
    sim, network, topology:
        Simulation substrate.
    host:
        The local host.
    supernode_host:
        Well-known supernode location (boot-strap entry point).
    latency_model:
        Shared model from which ping estimates are drawn.
    alive_period_s:
        Heartbeat period.
    ping_samples:
        Probes averaged per latency estimate.
    ewma_alpha:
        Optional smoothing factor for repeated estimates (future-work
        knob; ``None`` = plain mean, the paper's behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        host: Host,
        supernode_host: str,
        latency_model: LatencyModel,
        alive_period_s: float = 60.0,
        ping_samples: int = 3,
        ewma_alpha: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.topology = topology
        self.host = host
        self.supernode_host = supernode_host
        self.latency_model = latency_model
        self.alive_period_s = alive_period_s
        self.ping_samples = ping_samples
        self.ewma_alpha = ewma_alpha
        self.cache = PeerCache(owner=host.name)
        self.ping = PingService(network, latency_model, host)
        self.joined = False
        self._procs: List = []
        #: Bumped on every (re-)join; stale alive loops notice and exit.
        self._alive_generation = 0
        #: Per-origin gossip sequence: every membership update this peer
        #: emits (REGISTER, ALIVE) carries a fresh monotonically rising
        #: ``seq`` so receivers can drop reordered/duplicated state (see
        #: :mod:`repro.overlay.gossip`).
        self._state_seq = 0

    def next_seq(self) -> int:
        """Stamp the next outgoing state update."""
        self._state_seq += 1
        return self._state_seq

    # -- lifecycle ---------------------------------------------------------
    def boot(self) -> Generator:
        """Join the overlay: register and seed the cache (``mpiboot``)."""
        yield from self._register()
        # Background services.
        self._procs.append(self.sim.process(self.ping.responder()))
        self._alive_generation += 1
        self._procs.append(
            self.sim.process(self._alive_loop(self._alive_generation)))
        return len(self.cache)

    def rejoin(self) -> Generator:
        """Re-join after a revival: a crashed host lost its supernode
        registration (missed alive signals, REPORT_DEAD), so it must
        register again and restart the alive loop.  The ping responder
        and service loops survived the outage (they only ever block on
        receives, and a down host receives nothing), so only the
        membership half is redone.
        """
        yield from self._register()
        self._alive_generation += 1
        self._procs.append(
            self.sim.process(self._alive_loop(self._alive_generation)))
        return len(self.cache)

    def _register(self) -> Generator:
        reply_port = Ports.supernode_reply(self.host.name)
        self.network.send(
            self.host.name, self.supernode_host, port=SUPERNODE_PORT,
            kind="REGISTER",
            payload={"reply_port": reply_port, "seq": self.next_seq()},
            size_bytes=SIZE_CONTROL,
        )
        msg = yield self.network.receive(self.host.name, reply_port, "REGISTER_ACK")
        self._merge_names(msg.payload["peers"])
        self.joined = True

    def _alive_loop(self, generation: int) -> Generator:
        while True:
            yield self.sim.timeout(self.alive_period_s)
            if generation != self._alive_generation:
                return  # superseded by a rejoin's fresh loop
            if self.network.is_down(self.host.name):
                return
            self.network.send(
                self.host.name, self.supernode_host, port=SUPERNODE_PORT,
                kind="ALIVE", payload={"seq": self.next_seq()},
                size_bytes=SIZE_CONTROL,
            )

    # -- cache maintenance -----------------------------------------------------
    def _merge_names(self, names: List[str]) -> int:
        hosts = [self.topology.host(n) for n in names if n != self.host.name]
        return self.cache.merge(hosts)

    def refresh_cache(self) -> Generator:
        """Ask the supernode for recently registered peers (§4.2 step 2)."""
        reply_port = Ports.supernode_reply(self.host.name)
        self.network.send(
            self.host.name, self.supernode_host, port=SUPERNODE_PORT,
            kind="GET_PEERS", payload={"reply_port": reply_port},
            size_bytes=SIZE_CONTROL,
        )
        msg = yield self.network.receive(self.host.name, reply_port, "PEERS")
        return self._merge_names(msg.payload["peers"])

    def measure_latencies(self, only_unmeasured: bool = True) -> int:
        """Estimate RTT to cached peers (analytic fast path).

        Returns the number of peers measured.  The local host itself is
        cached implicitly by the middleware with its LAN latency, so it
        participates in its own allocations like any peer.
        """
        entries = (
            self.cache.unmeasured() if only_unmeasured else self.cache.live_entries()
        )
        for entry in entries:
            est = self.ping.estimate(
                entry.host, samples=self.ping_samples, ewma_alpha=self.ewma_alpha
            )
            self.cache.set_latency(entry.host.name, est, self.sim.now)
        return len(entries)

    def probe_latency(self, target: Host) -> Generator:
        """Message-level probe (used by protocol tests); ms or None."""
        rtt = yield from self.ping.probe(target)
        return rtt

    def periodic_ping(self, period_s: float = 30.0) -> Generator:
        """§4.1: "each neighbor in the cache is periodically ping'ed to
        assess network latency to it".

        Each round draws one probe per live cached peer and folds it
        into the cache (EWMA-smoothed when ``ewma_alpha`` is set).
        Runs until the local host dies or a rejoin supersedes it (the
        restarted ``mpiboot`` spawns a fresh loop).
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        generation = self._alive_generation
        while True:
            yield self.sim.timeout(period_s)
            if generation != self._alive_generation:
                return  # superseded by a rejoin's fresh loop
            if self.network.is_down(self.host.name):
                return
            now = self.sim.now
            for entry in self.cache.live_entries():
                est = self.ping.estimate(entry.host, samples=1)
                self.cache.fold_latency(entry.host.name, est.value_ms, now,
                                        ewma_alpha=self.ewma_alpha)

    def report_dead(self, names: List[str]) -> None:
        """Tell the supernode about peers that failed to answer."""
        for name in names:
            self.cache.mark_dead(name)
        self.cache.drop_dead()
        if names:
            self.network.send(
                self.host.name, self.supernode_host, port=SUPERNODE_PORT,
                kind="REPORT_DEAD", payload={"peers": list(names)},
                size_bytes=SIZE_CONTROL,
            )
