"""``topo_block``: fill whole clusters in collective-group units.

Bender et al.'s MC allocation assigns jobs to *contiguous blocks* of
the machine so that communicating groups never straddle a slow
boundary.  The grid analogue of a contiguous block is a (site,
cluster) — homogeneous hosts behind one switch — and the natural block
unit is the MPI communicator's dominant collective group size ``g``
(:func:`~repro.alloc.commaware.dominant_group_size`: the power-of-two
stage granularity of recursive-doubling collectives, ~``sqrt(n)``).

The strategy walks clusters in submitter-latency order (order of first
appearance in ``slist``) and gives each cluster as many *whole* groups
of ``g`` processes as its remaining capacity and the remaining demand
allow, concentrating within the cluster.  The sub-``g`` remainder is
then placed concentrate-style over the full latency order.  Every
cluster therefore carries a multiple of ``g`` processes (plus at most
one remainder tail), so collective groups fall cleanly inside cluster
boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.base import (AllocationError, ReservedHost,
                              register_strategy)
from repro.alloc.commaware import CommAwareStrategy, dominant_group_size
from repro.alloc.mixed import BlockStrategy
from repro.net.contention import IncrementalPlanScore
from repro.net.topology import Topology

__all__ = ["TopoBlockStrategy"]


@register_strategy
class TopoBlockStrategy(CommAwareStrategy):
    """Cluster-granular block fill in units of the collective group.

    Parameters
    ----------
    group:
        Block unit; ``None`` (default) derives it from ``n`` via
        :func:`~repro.alloc.commaware.dominant_group_size`.
    """

    name = "topo_block"

    def __init__(self, group: Optional[int] = None,
                 topology: Optional[Topology] = None) -> None:
        if group is not None and group < 1:
            raise ValueError("group must be >= 1")
        super().__init__(topology=topology)
        self.group = group
        #: Census of the last plan built by :meth:`distribute_over`,
        #: maintained incrementally across both fill passes (``None``
        #: until then, or when no topology is bound).
        self.plan_score: Optional[IncrementalPlanScore] = None

    def group_size(self, n: int) -> int:
        return self.group if self.group is not None else dominant_group_size(n)

    # -- capacity-only fallback ----------------------------------------
    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        """Without hosts there are no cluster boundaries: plain block."""
        return BlockStrategy(block=self.group_size(n)).distribute(
            capacities, n, r)

    # -- the real entry point ------------------------------------------
    def distribute_over(self, slist: Sequence[ReservedHost],
                        capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        g = self.group_size(n)
        score = (IncrementalPlanScore(self.topology)
                 if self.topology is not None else None)
        self.plan_score = score
        u = [0] * len(capacities)
        d = 0

        # Pass 1: whole g-sized blocks, cluster by cluster in latency
        # order, concentrating within each cluster.
        for indices in self._clusters(slist, capacities):
            cluster_cap = sum(capacities[i] for i in indices)
            blocks = min(cluster_cap // g, (total - d) // g)
            need = blocks * g
            for idx in indices:
                take = min(capacities[idx] - u[idx], need)
                u[idx] += take
                need -= take
                d += take
                if take and score is not None:
                    score.add(slist[idx].host, take)
                if need == 0:
                    break
            if d == total:
                break

        # Pass 2: the sub-g remainder (and any demand the block pass
        # could not fit) concentrates over the plain latency order.
        if d < total:
            for idx, cap in enumerate(capacities):
                take = min(cap - u[idx], total - d)
                u[idx] += take
                d += take
                if take and score is not None:
                    score.add(slist[idx].host, take)
                if d == total:
                    break
        if d < total:
            raise AllocationError(
                f"topo_block(g={g}): capacity exhausted at d={d} < {total}")
        return u

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _clusters(slist: Sequence[ReservedHost],
                  capacities: Sequence[int]) -> List[List[int]]:
        """Usable slist indices grouped by (site, cluster), in order of
        the cluster's first (lowest-latency) appearance."""
        order: List[Tuple[str, str]] = []
        groups: Dict[Tuple[str, str], List[int]] = {}
        for idx, reserved in enumerate(slist):
            if capacities[idx] <= 0:
                continue
            key = (reserved.host.site, reserved.host.cluster)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(idx)
        return [groups[key] for key in order]
