"""Adaptive and site-affine strategies (the paper's future work).

The conclusion asks for "mixed strategies, or more complex strategies
which still do not require the user to be knowledgeable about the
platform characteristics".  Two answers:

* :class:`SiteAffineStrategy` — *concentrate within the nearest site,
  spread beyond it*: packs hosts while the allocation stays inside the
  submitter's site (locality is free there), then switches to
  round-robin so remote memory pressure stays low.  A direct hybrid of
  the two published strategies.

* :class:`AutoStrategy` — picks spread or concentrate *for the user*
  from an application profile: the communication-to-computation ratio
  and the memory-contention exponent the app models already expose.
  Communication-bound apps (IS-like) get concentrate; compute-bound
  apps (EP-like) get spread.  This encodes exactly the §5.2 findings.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alloc.base import (
    AllocationError,
    Strategy,
    register_strategy,
)
from repro.alloc.concentrate import ConcentrateStrategy
from repro.alloc.spread import SpreadStrategy

__all__ = ["SiteAffineStrategy", "AutoStrategy", "choose_strategy_for_app"]


@register_strategy
class SiteAffineStrategy(Strategy):
    """Concentrate on the first ``local_hosts`` entries, spread after.

    ``local_hosts`` is the number of slist entries considered "local"
    (the middleware passes the submitter-site host count; standalone
    users give any prefix length).
    """

    name = "site-affine"

    def __init__(self, local_hosts: int = 0) -> None:
        if local_hosts < 0:
            raise ValueError("local_hosts must be >= 0")
        self.local_hosts = local_hosts

    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        cut = min(self.local_hosts, len(capacities))
        local, remote = list(capacities[:cut]), list(capacities[cut:])
        # Pack the local prefix first.
        u_local = [0] * cut
        d = 0
        for i, cap in enumerate(local):
            take = min(cap, total - d)
            u_local[i] = take
            d += take
            if d == total:
                break
        if d == total:
            return u_local + [0] * len(remote)
        # Spread the remainder beyond the site boundary.
        u_remote = SpreadStrategy().distribute(remote, 1, total - d) \
            if remote else []
        if sum(u_local) + sum(u_remote) != total:
            raise AllocationError(
                f"site-affine: capacity exhausted at "
                f"{sum(u_local) + sum(u_remote)} < {total}"
            )
        return u_local + u_remote


#: Communication-to-computation threshold above which an application is
#: considered communication-bound (IS ~ >>1, EP ~ <<1).
COMM_BOUND_THRESHOLD = 0.5


def choose_strategy_for_app(comm_compute_ratio: float,
                            beta: float) -> str:
    """§5.2 distilled into a rule.

    * communication-bound (ratio above threshold): locality wins —
      **concentrate**;
    * compute-bound with real memory contention (EP-like): per-host
      exclusivity wins — **spread**;
    * compute-bound and contention-free: either works; spread maximises
      aggregate memory, the paper's stated spread rationale.
    """
    if comm_compute_ratio > COMM_BOUND_THRESHOLD:
        return "concentrate"
    return "spread"


@register_strategy
class AutoStrategy(Strategy):
    """Delegates to spread or concentrate based on an app profile.

    Parameters
    ----------
    comm_compute_ratio:
        Estimated communication/computation time ratio of the target
        application at the requested scale.
    beta:
        The application's memory-contention exponent.
    """

    name = "auto"

    def __init__(self, comm_compute_ratio: float = 0.0,
                 beta: float = 0.0) -> None:
        if comm_compute_ratio < 0 or beta < 0:
            raise ValueError("profile values must be >= 0")
        self.comm_compute_ratio = comm_compute_ratio
        self.beta = beta
        self.chosen = choose_strategy_for_app(comm_compute_ratio, beta)
        self._delegate: Strategy = (
            ConcentrateStrategy() if self.chosen == "concentrate"
            else SpreadStrategy()
        )

    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        return self._delegate.distribute(capacities, n, r)
