"""MPI rank assignment over a strategy's ``u_i`` distribution (§4.3).

The paper's algorithm, verbatim semantics:

.. code-block:: text

    1: rank := 0
    2: for host i in slist do
    3:   if u_i = 0 then cancel reservation on host i
    4:   l := 0
    5:   while l < u_i do
    6:     assign rank `rank` to host i
    7:     rank := rank + 1 ; l := l + 1
    8:     if rank >= n then rank := 0

Because every ``u_i <= c_i <= n``, a host receives at most ``n``
*consecutive* (mod n) rank values and therefore never two copies of the
same rank — this is criterion (b) of §4.3 and is property-tested in
``tests/alloc/test_ranks_properties.py``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.alloc.base import (
    AllocationError,
    AllocationPlan,
    Placement,
    ReservedHost,
    Strategy,
)
from repro.alloc.feasibility import capacities as capacity_vector
from repro.alloc.feasibility import check_feasible

__all__ = ["assign_ranks", "build_plan"]


def assign_ranks(
    slist: Sequence[ReservedHost],
    usage: Sequence[int],
    n: int,
    r: int,
) -> List[Placement]:
    """Number the mapped process slots with MPI ranks, cyclically.

    Returns the placements in assignment order.  Raises
    :class:`AllocationError` if ``sum(usage) != n*r`` or any
    ``usage[i] > n`` (which could collide replicas).
    """
    if len(slist) != len(usage):
        raise AllocationError("slist and usage length mismatch")
    total = sum(usage)
    if total != n * r:
        raise AllocationError(f"sum(u)={total} != n*r={n * r}")
    replica_counter: Dict[int, int] = defaultdict(int)
    placements: List[Placement] = []
    rank = 0
    for reserved, used in zip(slist, usage):
        if used > n:
            raise AllocationError(
                f"{reserved.host.name}: u={used} > n={n} would collide replicas"
            )
        for _ in range(used):
            replica = replica_counter[rank]
            replica_counter[rank] += 1
            placements.append(Placement(rank=rank, replica=replica, host=reserved.host))
            rank += 1
            if rank >= n:
                rank = 0
    return placements


def build_plan(
    strategy: Strategy,
    slist: Sequence[ReservedHost],
    n: int,
    r: int = 1,
) -> AllocationPlan:
    """Full §4.2-step-6 + §4.3 pipeline: feasibility, distribute, rank.

    The returned plan is validated (never trust a strategy) and lists
    the ``u_i = 0`` hosts whose reservations must be cancelled.
    """
    slist = list(slist)
    check_feasible(slist, n, r)
    caps = capacity_vector(slist, n)
    usage = strategy.distribute_over(slist, caps, n, r)
    if len(usage) != len(slist):
        raise AllocationError(
            f"{strategy.name}: returned {len(usage)} usages for {len(slist)} hosts"
        )
    placements = assign_ranks(slist, usage, n, r)
    cancelled = [res for res, used in zip(slist, usage) if used == 0]
    plan = AllocationPlan(
        n=n,
        r=r,
        strategy=strategy.name,
        placements=placements,
        usage=list(usage),
        slist=slist,
        cancelled=cancelled,
    )
    plan.validate()
    return plan
