"""Allocation data model and strategy registry.

Terminology follows the paper exactly:

* ``rlist`` — hosts whose RS answered OK, sorted by ascending measured
  latency (built by the middleware).
* ``slist`` — the first ``min(|rlist|, n*r)`` entries of ``rlist``;
  the selected subset a strategy maps processes onto.
* ``c_i`` — capacity of host *i*: ``min(P_i, n)``.
* ``u_i`` — number of processes a strategy maps onto host *i*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Type

from repro.net.topology import Host

__all__ = [
    "AllocationError",
    "InfeasibleAllocation",
    "ReservedHost",
    "Placement",
    "AllocationPlan",
    "Strategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
]


class AllocationError(RuntimeError):
    """Base class for allocation failures."""


class InfeasibleAllocation(AllocationError):
    """Raised when the feasibility conditions of §4.2 step 6 fail."""


@dataclass(frozen=True)
class ReservedHost:
    """One entry of ``slist``: a booked host and what we know about it.

    Attributes
    ----------
    host:
        The physical host.
    p_limit:
        The host's ``P`` setting (max processes of one application its
        owner accepts), returned in the RS's OK message.
    latency_ms:
        The submitting MPD's measured latency estimate used for the
        sort; kept for reporting.
    """

    host: Host
    p_limit: int
    latency_ms: float = 0.0

    def capacity(self, n: int) -> int:
        """``c_i = min(P_i, n)`` (§4.2, feasibility condition (b))."""
        return min(self.p_limit, n)


@dataclass(frozen=True)
class Placement:
    """One MPI process copy pinned to a host.

    ``rank`` is the MPI rank (0..n-1); ``replica`` numbers the copies of
    that rank (0..r-1) in assignment order.
    """

    rank: int
    replica: int
    host: Host


@dataclass
class AllocationPlan:
    """The outcome of strategy + rank assignment for one job.

    Attributes
    ----------
    n, r:
        Requested processes and replication degree.
    strategy:
        Strategy name that produced the plan.
    placements:
        All ``n*r`` process copies in assignment order.
    usage:
        ``u_i`` per slist host (same order as ``slist``).
    slist:
        The selected hosts, in latency order.
    cancelled:
        Hosts of ``slist`` with ``u_i = 0`` whose reservations the MPD
        cancels (§4.3 rank-assignment algorithm, line 4).
    """

    n: int
    r: int
    strategy: str
    placements: List[Placement]
    usage: List[int]
    slist: List[ReservedHost]
    cancelled: List[ReservedHost] = field(default_factory=list)

    # -- paper-figure aggregations ---------------------------------------
    def used_hosts(self) -> List[Host]:
        """Distinct hosts actually running processes, latency order."""
        seen = set()
        out = []
        for reserved, used in zip(self.slist, self.usage):
            if used > 0 and reserved.host.name not in seen:
                seen.add(reserved.host.name)
                out.append(reserved.host)
        return out

    def hosts_by_site(self) -> Dict[str, int]:
        """Figure 2/3 left panels: allocated hosts per site."""
        out: Dict[str, int] = defaultdict(int)
        for host in self.used_hosts():
            out[host.site] += 1
        return dict(out)

    def cores_by_site(self) -> Dict[str, int]:
        """Figure 2/3 right panels: allocated cores (processes) per site."""
        out: Dict[str, int] = defaultdict(int)
        for reserved, used in zip(self.slist, self.usage):
            if used:
                out[reserved.host.site] += used
        return dict(out)

    def ranks_on_host(self, host_name: str) -> List[int]:
        return [p.rank for p in self.placements if p.host.name == host_name]

    def replicas_of_rank(self, rank: int) -> List[Placement]:
        return [p for p in self.placements if p.rank == rank]

    def processes_per_host(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for p in self.placements:
            out[p.host.name] += 1
        return dict(out)

    @property
    def total_processes(self) -> int:
        return len(self.placements)

    def validate(self) -> None:
        """Assert the §4.3 invariants; raises AllocationError on breach.

        * exactly ``n*r`` placements, each rank exactly ``r`` times;
        * no host carries two copies of the same rank (criterion (b));
        * ``u_i`` never exceeds the host capacity ``c_i``.
        """
        if len(self.placements) != self.n * self.r:
            raise AllocationError(
                f"expected {self.n * self.r} placements, got {len(self.placements)}"
            )
        per_rank: Dict[int, int] = defaultdict(int)
        per_host_rank: Dict[Tuple[str, int], int] = defaultdict(int)
        for p in self.placements:
            per_rank[p.rank] += 1
            per_host_rank[(p.host.name, p.rank)] += 1
        for rank in range(self.n):
            if per_rank[rank] != self.r:
                raise AllocationError(
                    f"rank {rank} has {per_rank[rank]} copies, expected {self.r}"
                )
        for (host, rank), count in per_host_rank.items():
            if count > 1:
                raise AllocationError(
                    f"replica collision: rank {rank} twice on {host}"
                )
        for reserved, used in zip(self.slist, self.usage):
            cap = reserved.capacity(self.n)
            if used > cap:
                raise AllocationError(
                    f"{reserved.host.name}: u={used} exceeds c={cap}"
                )

    def summary(self) -> str:
        sites = self.cores_by_site()
        parts = ", ".join(f"{s}:{c}" for s, c in sorted(sites.items()))
        return (f"{self.strategy}: n={self.n} r={self.r} on "
                f"{len(self.used_hosts())} hosts ({parts})")


class Strategy(ABC):
    """An allocation strategy maps ``n*r`` processes onto ``slist``.

    Subclasses implement :meth:`distribute` returning the ``u_i`` list;
    rank assignment is shared (:func:`repro.alloc.ranks.assign_ranks`).

    Communication-aware strategies additionally override
    :meth:`distribute_over` (which sees the actual hosts, not just the
    capacity vector) and set :attr:`needs_topology` so the middleware
    binds its :class:`~repro.net.topology.Topology` before planning.
    The published paper strategies never look past capacities, so their
    behaviour is untouched by this hook.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    #: True when placement quality depends on the inter-host network;
    #: the middleware then calls :meth:`bind_topology` before planning.
    needs_topology: bool = False

    #: The bound network view (set by :meth:`bind_topology`); the
    #: middleware checks it so an already-bound strategy is not rebound.
    topology = None

    @abstractmethod
    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        """Return ``u`` with ``sum(u) == n*r`` and ``u_i <= c_i``.

        ``capacities`` is the ``c_i`` vector for ``slist`` (latency
        order).  Implementations may assume feasibility was checked.
        """

    def distribute_over(self, slist: Sequence["ReservedHost"],
                        capacities: Sequence[int], n: int, r: int) -> List[int]:
        """Like :meth:`distribute` but with the hosts in view.

        ``build_plan`` always calls this entry point; the default
        ignores ``slist`` and delegates, so capacity-only strategies
        need not care.
        """
        return self.distribute(capacities, n, r)

    def bind_topology(self, topology) -> None:
        """Attach the network view (stored; capacity-only strategies
        simply never read it)."""
        self.topology = topology

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: Dict[str, Type[Strategy]] = {}


def register_strategy(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator adding a strategy to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"strategy {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a registered strategy by name (``-a`` CLI flag)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown strategy {name!r} (known: {known})") from None
    return cls(**kwargs)


def available_strategies() -> List[str]:
    return sorted(_REGISTRY)
