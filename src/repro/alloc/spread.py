"""The *spread* strategy (§4.3).

    "Spread tends to map processes on hosts so as to maximize the total
    amount of available memory while maintaining locality as a
    secondary objective.  The strategy is to assign the MPI processes
    to all selected hosts (the |slist| closest hosts regarding latency)
    in a round-robin fashion."

The :meth:`distribute` body is a direct transliteration of the paper's
pseudo-code (variables ``d``, ``u_i``, ``cont`` kept):

.. code-block:: text

    1: d := 0
    2: forall i, u_i := 0
    3: cont := true
    4: while cont do
    5:   i := 0
    6:   while (i < |slist|) and cont do
    7:     if (u_i < c_i) then
    8:       u_i := u_i + 1 ; d := d + 1
    9:     end if
    10:    if (d = n x r) then cont := false
    11:    i := i + 1
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alloc.base import AllocationError, Strategy, register_strategy

__all__ = ["SpreadStrategy"]


@register_strategy
class SpreadStrategy(Strategy):
    """Round-robin, one process per pass, capacity-bounded."""

    name = "spread"

    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        d = 0
        u = [0] * len(capacities)
        cont = True
        # Guard against an infeasible call that would loop forever: one
        # full pass with no progress means capacity is exhausted.
        while cont:
            progressed = False
            i = 0
            while i < len(capacities) and cont:
                if u[i] < capacities[i]:
                    u[i] += 1
                    d += 1
                    progressed = True
                if d == total:
                    cont = False
                i += 1
            if cont and not progressed:
                raise AllocationError(
                    f"spread: capacity exhausted at d={d} < n*r={total}"
                )
        return u
