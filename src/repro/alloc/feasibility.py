"""Feasibility conditions for an allocation (§4.2, step 6).

An allocation over the selected list ``slist`` is feasible iff

(a) ``|slist| >= r`` — at least ``r`` hosts so that no two replicas of
    a process must share a host;
(b) ``sum_i c_i >= n * r`` with ``c_i = min(P_i, n)`` — enough total
    capacity, where a single host is never allowed to hold more than
    ``n`` processes (it would otherwise necessarily hold two copies of
    some rank).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.alloc.base import InfeasibleAllocation, ReservedHost

__all__ = ["capacities", "is_feasible", "check_feasible"]


def capacities(slist: Sequence[ReservedHost], n: int) -> List[int]:
    """The ``c_i = min(P_i, n)`` vector for ``slist``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return [reserved.capacity(n) for reserved in slist]


def is_feasible(slist: Sequence[ReservedHost], n: int, r: int) -> Tuple[bool, str]:
    """Evaluate conditions (a) and (b); returns (ok, reason)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if r < 1:
        raise ValueError("r must be >= 1")
    if len(slist) < r:
        return False, (
            f"condition (a) violated: |slist|={len(slist)} < r={r}"
        )
    total = sum(capacities(slist, n))
    if total < n * r:
        return False, (
            f"condition (b) violated: sum(c_i)={total} < n*r={n * r}"
        )
    return True, "feasible"


def check_feasible(slist: Sequence[ReservedHost], n: int, r: int) -> None:
    """Raise :class:`InfeasibleAllocation` when infeasible."""
    ok, reason = is_feasible(slist, n, r)
    if not ok:
        raise InfeasibleAllocation(reason)
