"""Shared machinery of the communication-aware strategy family.

The paper's strategies (§4.3) see only the capacity vector of
``slist``; placement relative to the *network between the selected
hosts* is ignored.  Bender et al., "Communication-Aware Processor
Allocation for Supercomputers", show that optimising pairwise
communication cost can dominate both published strategies.  The family
implemented on top of this module —

* :class:`~repro.alloc.bandwidth_spread.BandwidthSpreadStrategy`
  (``bandwidth_spread``),
* :class:`~repro.alloc.diameter_concentrate.DiameterConcentrateStrategy`
  (``diameter_concentrate``),
* :class:`~repro.alloc.topo_block.TopoBlockStrategy` (``topo_block``)

— scores host sets by pairwise RTT and bottleneck bandwidth.  When run
through the middleware the real :class:`~repro.net.topology.Topology`
is bound before planning (the MPD knows its own network view); used
standalone the strategies fall back to what ``slist`` alone reveals:
the measured RTT of every host *to the submitter* plus site labels,
which yields the hub approximation ``rtt(a, b) = rtt(a) + rtt(b)``
and a coarse site-local/remote bandwidth split.

Determinism contract: every greedy choice breaks ties by slist
position (ascending submitter latency, the middleware's canonical
order), so equal metrics can never make two runs diverge.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.alloc.base import ReservedHost, Strategy
from repro.net.contention import WAN_CONTENTION_FACTOR, ContentionModel
from repro.net.topology import (DEFAULT_LAN_BW_BPS, DEFAULT_LAN_RTT_MS,
                                Host, Topology)

__all__ = ["CommAwareStrategy", "WAN_CONTENTION_FACTOR",
           "contended_pair_bw_bps", "dominant_group_size"]

#: Fallback cross-site bandwidth when no topology is bound (bit/s).
#: Deliberately below the LAN default so the greedy orderings prefer
#: site-local pairs, which is the only robust unbound signal.
FALLBACK_WAN_BW_BPS = DEFAULT_LAN_BW_BPS / 10.0


def contended_pair_bw_bps(topology: Topology, a: Host, b: Host,
                          plan_hosts: Optional[Sequence[Host]] = None
                          ) -> float:
    """Placement score: bandwidth a host pair can expect under load.

    Intra-site pairs keep the switched LAN rate to themselves;
    inter-site pairs divide the site backbone with the rest of the
    job's traffic.  With ``plan_hosts`` (the placement's full host
    multiset, one entry per process copy) the divisor is the *plan's
    own* concurrent crossing-pair count on that backbone
    (:class:`~repro.net.contention.ContentionModel`) — the calibrated
    model the fig4 crossover suite validates.

    Without a plan — a strategy scoring candidates mid-construction
    has no placement to count flows from — the **deprecated** fixed
    :data:`~repro.net.contention.WAN_CONTENTION_FACTOR` fallback
    applies.  Any factor above the backbone/LAN ratio still ranks
    LAN > fast WAN > bordeaux WAN (the §5.2 IS ordering), which is all
    a before-the-plan score can honestly claim.
    """
    if plan_hosts is not None:
        return ContentionModel(topology).pair_bw_bps(plan_hosts, a, b)
    if a.name == b.name:
        return float("inf")
    if a.site == b.site:
        return topology.lan_bw_bps
    return topology.backbone_bandwidth_bps(a, b) / WAN_CONTENTION_FACTOR


def dominant_group_size(n: int) -> int:
    """Dominant collective group size for an ``n``-process communicator.

    Recursive-doubling/halving collectives (the MPJ runtime's allreduce
    and alltoall building block) work in power-of-two stages; the stage
    granularity that dominates traffic volume sits near ``sqrt(n)``.
    We use the largest power of two not exceeding ``sqrt(n)`` (at least
    1), e.g. 8 for ``n=100``, 16 for ``n=512``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    group = 1
    while (group * 2) ** 2 <= n:
        group *= 2
    return group


class CommAwareStrategy(Strategy):
    """Base for strategies scoring placements by inter-host metrics.

    Subclasses call :meth:`pair_rtt_ms` / :meth:`pair_bw_bps` and never
    touch the topology directly, so one bound/unbound fallback rule
    serves the whole family.
    """

    needs_topology = True

    def __init__(self, topology: Optional[Topology] = None) -> None:
        self.topology = topology

    # -- pairwise metrics ----------------------------------------------
    def pair_rtt_ms(self, a: ReservedHost, b: ReservedHost) -> float:
        """Round-trip time between two reserved hosts, ms."""
        if a.host.name == b.host.name:
            return 0.0
        if self.topology is not None:
            return self.topology.base_rtt_ms(a.host, b.host)
        if a.host.site == b.host.site:
            return DEFAULT_LAN_RTT_MS
        # Hub approximation through the submitter (the only vantage
        # point slist latencies were measured from).
        return a.latency_ms + b.latency_ms

    def pair_bw_bps(self, a: ReservedHost, b: ReservedHost) -> float:
        """Expected under-load bandwidth between two reserved hosts.

        Strategies call this *while building* a plan, so no placement
        exists yet to count crossing pairs from: the score rides the
        deprecated fixed-divisor fallback of
        :func:`contended_pair_bw_bps`.  Completed plans are re-scored
        plan-dependently by the experiment packs.
        """
        if a.host.name == b.host.name:
            return float("inf")
        if self.topology is not None:
            return contended_pair_bw_bps(self.topology, a.host, b.host)
        return (DEFAULT_LAN_BW_BPS if a.host.site == b.host.site
                else FALLBACK_WAN_BW_BPS)

    # -- helpers shared by the family ----------------------------------
    @staticmethod
    def active_indices(capacities: Sequence[int]) -> List[int]:
        """Slist positions that can hold at least one process."""
        return [i for i, cap in enumerate(capacities) if cap > 0]
