"""The *concentrate* strategy (§4.3).

    "Concentrate tends to maximize locality between processes by using
    as many cores as hosts offer.  The strategy is to assign the
    maximum MPI processes to the capacity of each host (c_i)."

Direct transliteration of the paper's pseudo-code:

.. code-block:: text

    1: d := 0
    2: forall i, u_i := 0
    3: cont := true
    4: while cont do
    5:   i := 0
    6:   while (i < |slist|) and cont do
    7:     u_i := min(c_i, (n x r) - d)
    8:     d := d + u_i
    9:     if (d = n x r) then cont := false
    10:    i := i + 1

Note the outer ``while`` is vestigial for concentrate — a single pass
either places everything or exhausts capacity — but we keep the shape
(and the same exhaustion guard as spread) for fidelity.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alloc.base import AllocationError, Strategy, register_strategy

__all__ = ["ConcentrateStrategy"]


@register_strategy
class ConcentrateStrategy(Strategy):
    """Fill each lowest-latency host to capacity before moving on."""

    name = "concentrate"

    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        d = 0
        u = [0] * len(capacities)
        i = 0
        while i < len(capacities) and d < total:
            u[i] = min(capacities[i], total - d)
            d += u[i]
            i += 1
        if d < total:
            raise AllocationError(
                f"concentrate: capacity exhausted at d={d} < n*r={total}"
            )
        return u
