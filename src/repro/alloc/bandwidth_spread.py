"""``bandwidth_spread``: spread over a bandwidth-coherent host set.

Plain *spread* round-robins over **all** selected hosts, so one
600-process run happily straddles the 1 Gb/s bordeaux link while
10 Gb/s paths sit idle.  ``bandwidth_spread`` keeps spread's one-
process-per-pass balance but first chooses *which* hosts to spread
over, greedily maximising the minimum pairwise bandwidth of the
selection:

1. seed the selection with ``slist[0]`` (the lowest-latency host);
2. repeatedly add the host whose worst link into the current selection
   is widest (max-min bandwidth), breaking ties by slist position;
3. stop as soon as the selection satisfies §4.2 feasibility —
   ``|selection| >= r`` and ``sum c_i >= n*r`` — because every further
   host can only narrow the worst link;
4. round-robin one process per pass over the selection, in selection
   order.

Hosts outside the selection get ``u_i = 0`` and their reservations are
cancelled by the ordinary §4.3 rank-assignment path.

With a bound topology the strategy maintains an
:class:`~repro.net.contention.IncrementalPlanScore` alongside the
selection (exposed as ``plan_score`` after planning), and the opt-in
``plan_scored=True`` mode ranks candidates by the *live*
plan-dependent contended bandwidth instead of the fixed-divisor
fallback — each candidate is tried with an O(1) add, scored against
the selection, and undone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.alloc.base import (AllocationError, ReservedHost,
                              register_strategy)
from repro.alloc.commaware import CommAwareStrategy
from repro.alloc.spread import SpreadStrategy
from repro.net.contention import IncrementalPlanScore
from repro.net.topology import Topology

__all__ = ["BandwidthSpreadStrategy"]


@register_strategy
class BandwidthSpreadStrategy(CommAwareStrategy):
    """Greedy max-min-bandwidth selection, then spread round-robin."""

    name = "bandwidth_spread"

    def __init__(self, topology: Optional[Topology] = None,
                 plan_scored: bool = False) -> None:
        super().__init__(topology=topology)
        #: Opt-in: rank candidates by the live plan-dependent share
        #: (see module docstring).  Off by default — the fixed-divisor
        #: ordering is what the published campaigns ran.
        self.plan_scored = plan_scored
        #: Census of the last plan built by :meth:`distribute_over`
        #: (``None`` until then, or when no topology is bound).
        self.plan_score: Optional[IncrementalPlanScore] = None

    # -- capacity-only fallback ----------------------------------------
    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        """Without hosts in view there is nothing to score: pure spread."""
        return SpreadStrategy().distribute(capacities, n, r)

    # -- the real entry point ------------------------------------------
    def distribute_over(self, slist: Sequence[ReservedHost],
                        capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        candidates = self.active_indices(capacities)
        if not candidates:
            raise AllocationError(
                f"bandwidth_spread: no usable host for n*r={total}")

        score = (IncrementalPlanScore(self.topology)
                 if self.topology is not None else None)
        self.plan_score = score
        selected = [candidates[0]]
        remaining = candidates[1:]
        capacity = capacities[selected[0]]
        if score is not None:
            score.add(slist[selected[0]].host)
        if self.plan_scored and score is not None:
            # Live plan-dependent ranking: try each candidate with an
            # O(1) add, score its worst contended link into the
            # selection under the would-be census, undo.
            while remaining and (capacity < total or len(selected) < r):
                best = None
                best_bw = -1.0
                for idx in remaining:
                    cand = slist[idx].host
                    score.add(cand)
                    worst = min(score.pair_bw_bps(cand, slist[j].host)
                                for j in selected)
                    score.remove(cand)
                    # Strict > keeps the lowest slist index on equal
                    # bandwidth: determinism under ties.
                    if worst > best_bw:
                        best, best_bw = idx, worst
                selected.append(best)
                remaining.remove(best)
                capacity += capacities[best]
                score.add(slist[best].host)
        else:
            # Prim-style: cache each remaining host's worst link into
            # the selection and fold in only the newly added host per
            # round — O(k^2) pair lookups instead of O(k^3), identical
            # output.
            worst_into = {idx: self.pair_bw_bps(slist[idx],
                                                slist[selected[0]])
                          for idx in remaining}
            while remaining and (capacity < total or len(selected) < r):
                best = None
                best_bw = -1.0
                for idx in remaining:
                    # Strict > keeps the lowest slist index on equal
                    # bandwidth: determinism under ties.
                    if worst_into[idx] > best_bw:
                        best, best_bw = idx, worst_into[idx]
                selected.append(best)
                remaining.remove(best)
                capacity += capacities[best]
                if score is not None:
                    score.add(slist[best].host)
                for idx in remaining:
                    worst_into[idx] = min(worst_into[idx],
                                          self.pair_bw_bps(slist[idx],
                                                           slist[best]))
        if capacity < total or len(selected) < r:
            raise AllocationError(
                f"bandwidth_spread: capacity exhausted at {capacity} "
                f"< n*r={total} over {len(selected)} hosts")

        # Spread's pass loop, walked in selection order.
        u = [0] * len(capacities)
        d = 0
        while d < total:
            progressed = False
            for idx in selected:
                if u[idx] < capacities[idx]:
                    u[idx] += 1
                    d += 1
                    progressed = True
                if d == total:
                    break
            if d < total and not progressed:  # pragma: no cover - guarded above
                raise AllocationError(
                    f"bandwidth_spread: capacity exhausted at d={d} < {total}")
        if score is not None:
            # Promote the one-copy-per-host selection census to the
            # full process census, so plan_score.snapshot() equals
            # ContentionModel.plan of the placement's copy multiset.
            for idx in selected:
                if u[idx] > 1:
                    score.add(slist[idx].host, u[idx] - 1)
                elif u[idx] == 0:  # pragma: no cover - selection always used
                    score.remove(slist[idx].host)
        return u
