"""``diameter_concentrate``: concentrate under a latency-diameter bound.

*Concentrate* fills hosts in submitter-latency order, which bounds the
distance of every host to the **submitter** but not between the chosen
hosts themselves — 250 processes from nancy land on nancy + lyon, and
lyon-rennes style pairs appear as demand grows.  For collective-heavy
codes the cost driver is the *diameter* of the allocation (the slowest
link a collective must cross), so this strategy packs hosts while
keeping every pairwise RTT at or below a bound ``D``:

1. walk ``slist`` in latency order, admitting a host iff its RTT to
   every already-admitted host is ``<= D``;
2. if the admitted subset fails §4.2 feasibility ((a) ``>= r`` hosts,
   (b) ``sum c_i >= n*r``), relax ``D`` to the next distinct pairwise
   RTT present among the candidates and retry — the *only* time the
   bound moves, per the paper's feasibility-first contract;
3. concentrate (fill to capacity, latency order) within the subset.

Because relaxation eventually reaches the full-slist diameter, the
strategy succeeds whenever plain concentrate would, and the §4.2
global feasibility check has already guaranteed that.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.alloc.base import (AllocationError, ReservedHost,
                              register_strategy)
from repro.alloc.commaware import CommAwareStrategy
from repro.alloc.concentrate import ConcentrateStrategy
from repro.net.contention import IncrementalPlanScore
from repro.net.topology import Topology

__all__ = ["DEFAULT_DIAMETER_MS", "DiameterConcentrateStrategy"]

#: Default bound: generous enough for one WAN hop from the submitter
#: (every paper site is < 18 ms from nancy) while rejecting the long
#: overlap-corrected site-to-site detours (lyon-sophia and friends).
DEFAULT_DIAMETER_MS = 12.0


@register_strategy
class DiameterConcentrateStrategy(CommAwareStrategy):
    """Concentrate constrained to a pairwise-RTT diameter bound."""

    name = "diameter_concentrate"

    def __init__(self, diameter_ms: float = DEFAULT_DIAMETER_MS,
                 topology: Optional[Topology] = None) -> None:
        if diameter_ms < 0:
            raise ValueError("diameter_ms must be >= 0")
        super().__init__(topology=topology)
        self.diameter_ms = diameter_ms
        #: The bound actually used by the last distribution (== the
        #: configured one unless feasibility forced a relaxation).
        self.effective_diameter_ms = diameter_ms
        #: Census of the last plan built by :meth:`distribute_over`,
        #: maintained incrementally during the fill (``None`` until
        #: then, or when no topology is bound).
        self.plan_score: Optional[IncrementalPlanScore] = None

    # -- capacity-only fallback ----------------------------------------
    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        """Without hosts in view the bound is unevaluable: concentrate."""
        return ConcentrateStrategy().distribute(capacities, n, r)

    # -- the real entry point ------------------------------------------
    def distribute_over(self, slist: Sequence[ReservedHost],
                        capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        candidates = self.active_indices(capacities)
        if not candidates:
            raise AllocationError(
                f"diameter_concentrate: no usable host for n*r={total}")

        # The relaxation ladder costs O(k^2) pair lookups; build it
        # lazily — the configured bound is feasible in the common case.
        bounds: Optional[List[float]] = None
        bound = self.diameter_ms
        while True:
            subset = self._admit(slist, candidates, bound)
            if (len(subset) >= r
                    and sum(capacities[i] for i in subset) >= total):
                break
            if bounds is None:
                bounds = self._relaxation_ladder(slist, candidates)
            tighter = [b for b in bounds if b > bound]
            if not tighter:
                raise AllocationError(
                    f"diameter_concentrate: infeasible even on the full "
                    f"slist ({len(subset)} hosts, "
                    f"{sum(capacities[i] for i in subset)} < n*r={total})")
            bound = tighter[0]
        self.effective_diameter_ms = bound

        score = (IncrementalPlanScore(self.topology)
                 if self.topology is not None else None)
        self.plan_score = score
        u = [0] * len(capacities)
        d = 0
        for idx in subset:
            take = min(capacities[idx], total - d)
            u[idx] = take
            d += take
            if take and score is not None:
                score.add(slist[idx].host, take)
            if d == total:
                break
        return u

    # -- helpers --------------------------------------------------------
    def _admit(self, slist: Sequence[ReservedHost],
               candidates: Sequence[int], bound: float) -> List[int]:
        """Latency-order greedy subset with pairwise RTT <= bound."""
        subset: List[int] = []
        for idx in candidates:
            if all(self.pair_rtt_ms(slist[idx], slist[j]) <= bound
                   for j in subset):
                subset.append(idx)
        return subset

    def _relaxation_ladder(self, slist: Sequence[ReservedHost],
                           candidates: Sequence[int]) -> List[float]:
        """Distinct pairwise RTTs, ascending: the candidate bounds."""
        values = set()
        for pos, i in enumerate(candidates):
            for j in candidates[pos + 1:]:
                values.add(self.pair_rtt_ms(slist[i], slist[j]))
        return sorted(values)
