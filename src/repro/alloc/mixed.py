"""Mixed strategies (the paper's future-work item).

The conclusion calls for "mixed strategies, or more complex strategies
which still do not require the user to be knowledgeable about the
platform characteristics".  We provide the natural parameterised family
bridging the two published strategies:

* :class:`BlockStrategy` with ``block=1`` **is** spread;
* ``block >= max(c_i)`` **is** concentrate;
* intermediate blocks trade memory pressure against locality, e.g.
  ``block=2`` pairs processes on dual-core hosts while halving the
  per-host memory footprint versus concentrate on quad-cores.

``tests/alloc/test_mixed.py`` asserts both degenerate equivalences for
arbitrary capacity vectors (hypothesis).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alloc.base import AllocationError, Strategy, register_strategy

__all__ = ["BlockStrategy", "make_block_strategy"]


@register_strategy
class BlockStrategy(Strategy):
    """Round-robin in blocks of ``block`` processes per host per pass."""

    name = "block"

    def __init__(self, block: int = 2) -> None:
        if block < 1:
            raise ValueError("block must be >= 1")
        self.block = block

    def distribute(self, capacities: Sequence[int], n: int, r: int) -> List[int]:
        total = n * r
        d = 0
        u = [0] * len(capacities)
        while d < total:
            progressed = False
            for i, cap in enumerate(capacities):
                take = min(self.block, cap - u[i], total - d)
                if take > 0:
                    u[i] += take
                    d += take
                    progressed = True
                if d == total:
                    break
            if d < total and not progressed:
                raise AllocationError(
                    f"block({self.block}): capacity exhausted at d={d} < {total}"
                )
        return u


def make_block_strategy(block: int) -> BlockStrategy:
    """Convenience factory (``-a block:<k>`` CLI syntax)."""
    return BlockStrategy(block=block)
