"""Co-allocation core: the paper's contribution.

Implements §4.3 of the paper:

* :mod:`~repro.alloc.base` — data model (:class:`ReservedHost`,
  :class:`Placement`, :class:`AllocationPlan`) and the strategy
  registry.
* :mod:`~repro.alloc.feasibility` — capacity rule ``c_i = min(P_i, n)``
  and feasibility conditions (a) ``|slist| >= r`` and
  (b) ``sum(c_i) >= n*r``.
* :mod:`~repro.alloc.spread` / :mod:`~repro.alloc.concentrate` — the two
  published strategies, transliterated from the paper's pseudo-code.
* :mod:`~repro.alloc.ranks` — cyclic MPI-rank assignment guaranteeing
  replica separation (criterion (b) of §4.3).
* :mod:`~repro.alloc.mixed` — the "mixed strategies" the conclusion
  lists as future work (parameterised block allocation).
* :mod:`~repro.alloc.commaware` + :mod:`~repro.alloc.bandwidth_spread`
  / :mod:`~repro.alloc.diameter_concentrate` /
  :mod:`~repro.alloc.topo_block` — the communication-aware family in
  the spirit of Bender et al.: placements scored by pairwise bandwidth
  and latency between the *selected* hosts, not just their distance to
  the submitter.
"""

from repro.alloc.base import (
    AllocationError,
    AllocationPlan,
    InfeasibleAllocation,
    Placement,
    ReservedHost,
    Strategy,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.alloc.feasibility import capacities, check_feasible, is_feasible
from repro.alloc.spread import SpreadStrategy
from repro.alloc.concentrate import ConcentrateStrategy
from repro.alloc.mixed import BlockStrategy, make_block_strategy
from repro.alloc.adaptive import (
    AutoStrategy,
    SiteAffineStrategy,
    choose_strategy_for_app,
)
from repro.alloc.commaware import CommAwareStrategy, dominant_group_size
from repro.alloc.diffusive import (
    DiffusivePolicy,
    DiffusiveStrategy,
    diffusive_moves,
    neighbor_map,
)
from repro.alloc.bandwidth_spread import BandwidthSpreadStrategy
from repro.alloc.diameter_concentrate import DiameterConcentrateStrategy
from repro.alloc.topo_block import TopoBlockStrategy
from repro.alloc.ranks import assign_ranks, build_plan

__all__ = [
    "AllocationError",
    "AllocationPlan",
    "InfeasibleAllocation",
    "Placement",
    "ReservedHost",
    "Strategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "capacities",
    "check_feasible",
    "is_feasible",
    "SpreadStrategy",
    "ConcentrateStrategy",
    "BlockStrategy",
    "make_block_strategy",
    "AutoStrategy",
    "SiteAffineStrategy",
    "choose_strategy_for_app",
    "CommAwareStrategy",
    "dominant_group_size",
    "DiffusivePolicy",
    "DiffusiveStrategy",
    "diffusive_moves",
    "neighbor_map",
    "BandwidthSpreadStrategy",
    "DiameterConcentrateStrategy",
    "TopoBlockStrategy",
    "assign_ranks",
    "build_plan",
]
