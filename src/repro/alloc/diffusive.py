"""Diffusive rebalancing: neighbor maps, move selection, strategy.

The placement strategies in this package decide where a job *starts*;
under churn that decision rots as hosts die, rejoin and pick up other
work.  The diffusive scheme (after "Diffusive Load Balancing of
Loosely-Synchronous Parallel Programs over Peer-to-Peer Networks")
instead keeps trading work between *neighboring* hosts: each tick,
every overloaded host may push one running copy to its least-loaded
near neighbor when the load gap exceeds a threshold.  Locality comes
from the neighbor map (k nearest hosts by RTT via
:meth:`~repro.net.topology.Topology.path_metrics`), so rebalancing
never needs a global view — exactly the property that makes the scheme
viable on a P2P overlay.

This module holds the *pure* decision functions (deterministic, easily
property-tested) plus the :class:`DiffusiveStrategy` placement entry in
the registry; the sim-side controller that executes the moves lives in
:mod:`repro.ft.migration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.alloc.base import register_strategy
from repro.alloc.spread import SpreadStrategy
from repro.net.topology import Topology

__all__ = [
    "DiffusivePolicy",
    "DiffusiveStrategy",
    "diffusive_moves",
    "neighbor_map",
]


@dataclass(frozen=True)
class DiffusivePolicy:
    """Tuning knobs for the diffusive controller.

    Attributes
    ----------
    period_s:
        Controller tick interval.
    neighbor_k:
        Neighborhood size (k nearest hosts by RTT).
    threshold:
        Minimum copies-per-core load gap before a move is worth its
        checkpoint-transfer cost.
    max_moves_per_tick:
        Global cap on migrations per tick (damping; an undamped
        diffusion oscillates on small grids).
    """

    period_s: float = 30.0
    neighbor_k: int = 3
    threshold: float = 0.75
    max_moves_per_tick: int = 2


def neighbor_map(
    topology: Topology,
    host_names: Iterable[str],
    k: int,
) -> Dict[str, List[str]]:
    """k-nearest-neighbor map over ``host_names`` by path RTT.

    Deterministic: ties break on host name.  Hosts unknown to the
    topology raise ``KeyError`` — a neighbor map over phantom hosts is
    a bug upstream, not something to paper over.
    """
    hosts = {name: topology.host(name) for name in host_names}
    out: Dict[str, List[str]] = {}
    for name in sorted(hosts):
        ranked: List[Tuple[float, str]] = []
        for other in sorted(hosts):
            if other == name:
                continue
            pm = topology.path_metrics(hosts[name], hosts[other])
            ranked.append((pm.rtt_ms, other))
        ranked.sort()
        out[name] = [other for _rtt, other in ranked[: max(0, k)]]
    return out


def diffusive_moves(
    loads: Mapping[str, float],
    neighbors: Mapping[str, Sequence[str]],
    threshold: float,
    max_moves: int,
) -> List[Tuple[str, str]]:
    """One tick of diffusion: ``[(src_host, dst_host), ...]``.

    ``loads`` maps host name to its normalized load (copies per core).
    Hosts are visited hottest-first; each may emit at most one move, to
    its least-loaded in-``loads`` neighbor, and only when the gap is at
    least ``threshold``.  Chosen destinations have their load bumped in
    a working copy so two hot hosts do not dogpile the same sink within
    a tick, and a host that received a copy this tick never turns
    around and sheds one — without that, a pair of near-equal hosts
    ping-pongs the same copy back and forth inside a single tick.
    Fully deterministic (name tie-breaks), which is what keeps the
    campaign reports byte-identical across ``--jobs``.
    """
    moves: List[Tuple[str, str]] = []
    if max_moves <= 0:
        return moves
    working = dict(loads)
    received: set = set()
    for src in sorted(working, key=lambda h: (-working[h], h)):
        if len(moves) >= max_moves:
            break
        if src in received:
            continue
        candidates = [nb for nb in neighbors.get(src, ()) if nb in working]
        if not candidates:
            continue
        dst = min(candidates, key=lambda h: (working[h], h))
        if working[src] - working[dst] < threshold:
            continue
        moves.append((src, dst))
        received.add(dst)
        working[src] -= 1.0
        working[dst] += 1.0
    return moves


@register_strategy
class DiffusiveStrategy(SpreadStrategy):
    """Initial placement for migration-enabled jobs.

    The *initial* distribution is exactly spread's round-robin — the
    diffusive scheme corrects placement continuously at run time, so
    spending effort on a clever start is wasted.  The distinct registry
    name lets a submitter opt a job into rebalancing, and
    ``needs_topology`` makes the middleware bind its network view so
    the controller inherits route knowledge from the plan.
    """

    name = "diffusive"
    needs_topology = True
