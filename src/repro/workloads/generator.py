"""Deterministic synthetic job streams.

A :class:`WorkloadSpec` turns a seed into a reproducible list of
:class:`TimedJob` submissions: exponential inter-arrival times, a
categorical mix of job shapes, and a submitter chosen per job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.middleware.jobs import JobRequest

__all__ = ["JobMix", "WorkloadSpec", "TimedJob", "generate_stream"]


@dataclass(frozen=True)
class JobMix:
    """One job shape with a sampling weight.

    ``app`` is an optional application model attached to every job of
    this shape (its modelled duration is what makes jobs *overlap* in
    time, creating real gatekeeper contention).
    """

    n: int
    r: int = 1
    strategy: str = "spread"
    weight: float = 1.0
    app: object = None

    def __post_init__(self) -> None:
        if self.n < 1 or self.r < 1:
            raise ValueError("n and r must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class TimedJob:
    """A submission with its arrival time and origin."""

    at_s: float
    submitter: str
    request: JobRequest


@dataclass(frozen=True)
class WorkloadSpec:
    """Stream parameters.

    Attributes
    ----------
    arrival_rate_per_s:
        Mean job arrival rate (Poisson process).
    horizon_s:
        Generation stops at this simulated time.
    mixes:
        Candidate job shapes with weights.
    submitters:
        Hosts jobs originate from (uniform choice).
    max_jobs:
        Hard cap regardless of horizon.
    """

    arrival_rate_per_s: float
    horizon_s: float
    mixes: Tuple[JobMix, ...]
    submitters: Tuple[str, ...]
    max_jobs: int = 1000

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not self.mixes:
            raise ValueError("need at least one job mix")
        if not self.submitters:
            raise ValueError("need at least one submitter")


def generate_stream(spec: WorkloadSpec,
                    rng: np.random.Generator) -> List[TimedJob]:
    """Sample a deterministic job stream from ``spec``."""
    weights = np.array([m.weight for m in spec.mixes], dtype=float)
    weights /= weights.sum()
    jobs: List[TimedJob] = []
    t = 0.0
    while len(jobs) < spec.max_jobs:
        t += float(rng.exponential(1.0 / spec.arrival_rate_per_s))
        if t >= spec.horizon_s:
            break
        mix = spec.mixes[int(rng.choice(len(spec.mixes), p=weights))]
        submitter = spec.submitters[int(rng.integers(len(spec.submitters)))]
        jobs.append(TimedJob(
            at_s=t,
            submitter=submitter,
            request=JobRequest(n=mix.n, r=mix.r, strategy=mix.strategy,
                               app=mix.app, tag=f"wl-{len(jobs)}"),
        ))
    return jobs
