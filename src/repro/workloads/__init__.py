"""Synthetic multi-user workload generation and queueing experiments.

The paper evaluates one job at a time; a real P2P grid serves a *stream*
of submissions from many users.  This package generates deterministic
job streams (Poisson arrivals, configurable size/strategy mixes) and
replays them against a cluster, measuring what a middleware operator
would: acceptance rate, booking retries, reservation latency and host
utilisation.
"""

from repro.workloads.generator import JobMix, WorkloadSpec, generate_stream
from repro.workloads.replay import ReplayStats, replay_stream

__all__ = [
    "JobMix",
    "WorkloadSpec",
    "generate_stream",
    "ReplayStats",
    "replay_stream",
]
