"""Replay a job stream against a cluster and collect operator metrics."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster import P2PMPICluster
from repro.middleware.jobs import JobResult
from repro.sim.resources import Resource
from repro.workloads.generator import TimedJob

__all__ = ["ReplayStats", "replay_stream"]


@dataclass
class ReplayStats:
    """Aggregated outcome of one stream replay."""

    outcomes: List[Tuple[TimedJob, JobResult]] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def accepted(self) -> int:
        return sum(1 for _job, res in self.outcomes if res.ok)

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.n_jobs if self.n_jobs else 1.0

    def status_histogram(self) -> Dict[str, int]:
        return dict(Counter(res.status.value for _j, res in self.outcomes))

    def reservation_times(self) -> np.ndarray:
        return np.array([res.timings.reservation_s
                         for _j, res in self.outcomes if res.ok])

    def mean_reservation_s(self) -> float:
        times = self.reservation_times()
        return float(times.mean()) if times.size else 0.0

    def total_retries(self) -> int:
        return sum(max(0, res.attempts - 1) for _j, res in self.outcomes)

    def cores_served_by_site(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for _job, res in self.outcomes:
            if res.plan is not None and res.ok:
                for site, cores in res.plan.cores_by_site().items():
                    out[site] += cores
        return dict(out)

    def summary(self) -> str:
        hist = ", ".join(f"{k}:{v}" for k, v in
                         sorted(self.status_histogram().items()))
        return (f"{self.n_jobs} jobs, acceptance "
                f"{self.acceptance_rate * 100:.1f}% [{hist}], "
                f"mean reservation {self.mean_reservation_s() * 1e3:.1f} ms, "
                f"{self.total_retries()} retries")


def replay_stream(cluster: P2PMPICluster,
                  jobs: Sequence[TimedJob]) -> ReplayStats:
    """Replay submissions at their arrival times.

    One MPD serialises its own submissions (the real daemon handles
    one ``p2pmpirun`` negotiation at a time), so same-submitter jobs
    queue behind each other while different submitters race freely —
    the contention the gatekeeper and retry machinery must absorb.
    """
    if not cluster._booted:
        cluster.boot()
    sim = cluster.sim
    locks: Dict[str, Resource] = {}
    stats = ReplayStats()
    procs = []

    def one_job(job: TimedJob):
        if job.at_s > sim.now:
            yield sim.timeout(job.at_s - sim.now)
        lock = locks.setdefault(
            job.submitter, Resource(sim, capacity=1,
                                    name=f"submit:{job.submitter}"))
        grant = lock.request()
        yield grant
        try:
            result = yield from cluster.mpds[job.submitter].submit_job(
                job.request)
        finally:
            lock.release(grant)
        stats.outcomes.append((job, result))
        return result

    for job in jobs:
        procs.append(sim.process(one_job(job)))
    if procs:
        sim.run_until_complete(sim.all_of(procs))
    stats.outcomes.sort(key=lambda pair: pair[0].at_s)
    return stats
