"""NAS EP (Embarrassingly Parallel) model — Figure 4 left.

EP generates ``2^(24+class_exp)`` Gaussian pairs split evenly across
ranks, then performs a handful of tiny final collectives: "EP only
makes four final collective communication (MPI_Allreduce of one
double) so that the computing to communication ratio is very high".

Calibration (see DESIGN.md §5): one pair costs ``PAIR_COST_S`` on the
reference CPU; the 2008 Java runtime's throughput makes this much
larger than a native implementation's.  The memory-contention exponent
``BETA`` is small — random-number generation is register/cache friendly
— which is why the paper sees spread only "slightly faster" than
concentrate.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.apps.base import AppEnv, Application
from repro.mpi.costmodel import GroupLayout
from repro.mpi.datatypes import DOUBLE, SUM
from repro.net.topology import Host

__all__ = ["EPBenchmark", "EP_CLASS_PAIRS"]

#: Total random pairs per NAS class.
EP_CLASS_PAIRS: Dict[str, int] = {
    "S": 2 ** 24,
    "W": 2 ** 25,
    "A": 2 ** 28,
    "B": 2 ** 30,
    "C": 2 ** 32,
}

#: Seconds per pair on the reference CPU (Java runtime, 2008 era).
PAIR_COST_S = 1.8e-7
#: Memory-contention exponent for co-located EP processes.
BETA = 0.15
#: Number of final allreduce calls (paper: "four final collective
#: communication (MPI_Allreduce of one double)").
N_ALLREDUCE = 4


class EPBenchmark(Application):
    """NAS EP with the paper's class-B default."""

    name = "ep"

    def __init__(self, nas_class: str = "B",
                 pair_cost_s: float = PAIR_COST_S,
                 beta: float = BETA) -> None:
        if nas_class not in EP_CLASS_PAIRS:
            raise ValueError(f"unknown NAS class {nas_class!r}")
        self.nas_class = nas_class
        self.pairs = EP_CLASS_PAIRS[nas_class]
        self.pair_cost_s = pair_cost_s
        self.beta = beta
        self.name = f"ep.{nas_class}"

    # -- analytic model ---------------------------------------------------------
    def rank_time(self, host: Host, n: int, env: AppEnv,
                  colocated: int) -> float:
        work = self.pairs / n
        return env.machine.compute_time(host, work, self.pair_cost_s,
                                        colocated=colocated, beta=self.beta)

    def comm_time(self, layout: GroupLayout, n: int, env: AppEnv) -> float:
        return N_ALLREDUCE * env.costmodel.allreduce_time(layout, DOUBLE.size)

    # -- message-level program ------------------------------------------------------
    def program(self, comm) -> Generator:
        """Semantically faithful miniature: local sums + 4 allreduces.

        The per-rank compute is *not* simulated here (the message-level
        engine measures communication structure); tests use it to
        validate the collective pattern and result values.
        """
        local_sx = float(comm.rank + 1)
        local_sy = float(comm.rank + 1) ** 2
        sx = yield from comm.allreduce(local_sx, op=SUM, size_bytes=DOUBLE.size)
        sy = yield from comm.allreduce(local_sy, op=SUM, size_bytes=DOUBLE.size)
        c1 = yield from comm.allreduce(1.0, op=SUM, size_bytes=DOUBLE.size)
        c2 = yield from comm.allreduce(1.0, op=SUM, size_bytes=DOUBLE.size)
        return {"sx": sx, "sy": sy, "counts": (c1, c2)}
