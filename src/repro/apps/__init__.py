"""Application models: the workloads of the paper's evaluation.

* :mod:`~repro.apps.machine` — per-host compute rates and the
  memory-contention factor for co-located processes.
* :mod:`~repro.apps.base` — the :class:`Application` interface the
  middleware consumes, plus :class:`AppEnv`.
* :mod:`~repro.apps.hostname` — the §5.1 allocation probe.
* :mod:`~repro.apps.ep` / :mod:`~repro.apps.is_bench` — NAS EP and IS
  models (Figure 4), with both analytic and message-level paths.
* :mod:`~repro.apps.cg` — an extra CG-like iterative app (the paper's
  future-work "wider range of applications").
"""

from repro.apps.machine import MachineModel, contention_factor
from repro.apps.base import Application, AppEnv
from repro.apps.hostname import HostnameApp
from repro.apps.ep import EPBenchmark
from repro.apps.is_bench import ISBenchmark
from repro.apps.cg import CGLikeBenchmark

__all__ = [
    "MachineModel",
    "contention_factor",
    "Application",
    "AppEnv",
    "HostnameApp",
    "EPBenchmark",
    "ISBenchmark",
    "CGLikeBenchmark",
]
