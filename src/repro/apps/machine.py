"""Host compute model with memory contention.

The paper explains both Figure 4 effects with the same mechanism:
processes sharing a host contend for the memory system ("intensive
memory accesses that may represent a bottleneck with concentrate").
We model a host running ``k`` co-located processes of a memory-bound
application as computing at::

    speed_effective = host.speed / (1 + beta * (k - 1))

with ``beta`` an application property (EP ~0.08: mildly memory-bound
random-number generation; IS ~0.35: strongly memory-bound random-access
key counting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Host

__all__ = ["contention_factor", "MachineModel"]


def contention_factor(colocated: int, beta: float) -> float:
    """Slowdown multiplier for ``colocated`` processes sharing a host."""
    if colocated < 1:
        raise ValueError("colocated must be >= 1")
    if beta < 0:
        raise ValueError("beta must be >= 0")
    return 1.0 + beta * (colocated - 1)


@dataclass(frozen=True)
class MachineModel:
    """Turns abstract work units into seconds on a given host.

    ``unit_cost_s`` is the per-work-unit time on the reference CPU
    (nancy's Xeon 5110, ``speed == 1.0``); applications define their
    own unit (EP: one random pair, IS: one key per iteration) and
    calibrated unit cost.
    """

    def compute_time(
        self,
        host: Host,
        work_units: float,
        unit_cost_s: float,
        colocated: int = 1,
        beta: float = 0.0,
    ) -> float:
        """Seconds to process ``work_units`` on ``host``."""
        if work_units < 0 or unit_cost_s < 0:
            raise ValueError("work and unit cost must be >= 0")
        base = work_units * unit_cost_s / host.speed
        return base * contention_factor(colocated, beta)
