"""A CG-like iterative solver model (extension workload).

The paper's conclusion calls for "a broad study ... on a wider range of
applications"; CG (conjugate gradient) sits between EP and IS: per
iteration it does a memory-bound sparse mat-vec (halo exchange with two
ring neighbours) plus two latency-bound dot-product allreduces.  It is
the classic case where *neither* published strategy dominates: spread
wins on memory contention, concentrate wins once the ring crosses
sites.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.apps.base import AppEnv, Application
from repro.mpi.costmodel import GroupLayout
from repro.mpi.datatypes import DOUBLE, SUM
from repro.net.topology import Host

__all__ = ["CGLikeBenchmark", "CG_CLASS_ROWS"]

#: Matrix rows per class (loosely NAS CG sizes).
CG_CLASS_ROWS: Dict[str, int] = {
    "S": 1400 * 8,
    "A": 14000 * 16,
    "B": 75000 * 32,
    "C": 150000 * 64,
}

#: Iterations of the solver loop.
ITERATIONS = 25
#: Seconds per row per iteration on the reference CPU.
ROW_COST_S = 1.1e-6
#: Memory-contention exponent (sparse mat-vec is memory bound).
BETA = 0.25
#: Halo exchanged with each ring neighbour per iteration (bytes/row).
HALO_BYTES_PER_ROW = 8


class CGLikeBenchmark(Application):
    """Ring-halo iterative solver model."""

    name = "cg"

    def __init__(self, nas_class: str = "B",
                 row_cost_s: float = ROW_COST_S,
                 beta: float = BETA,
                 iterations: int = ITERATIONS) -> None:
        if nas_class not in CG_CLASS_ROWS:
            raise ValueError(f"unknown class {nas_class!r}")
        self.nas_class = nas_class
        self.rows = CG_CLASS_ROWS[nas_class]
        self.row_cost_s = row_cost_s
        self.beta = beta
        self.iterations = iterations
        self.name = f"cg.{nas_class}"

    # -- analytic model ---------------------------------------------------------
    def rank_time(self, host: Host, n: int, env: AppEnv,
                  colocated: int) -> float:
        work = self.rows / n * self.iterations
        return env.machine.compute_time(host, work, self.row_cost_s,
                                        colocated=colocated, beta=self.beta)

    def comm_time(self, layout: GroupLayout, n: int, env: AppEnv) -> float:
        cm = env.costmodel
        dots = 2 * cm.allreduce_time(layout, DOUBLE.size)
        halo_bytes = max(1, int(self.rows / n * HALO_BYTES_PER_ROW))
        # Ring halo exchange: slowest neighbouring pair bounds the step.
        halo = cm.ring_exchange_time(layout, halo_bytes)
        return self.iterations * (dots + 2 * halo)

    # -- message-level program ------------------------------------------------------
    def program(self, comm) -> Generator:
        """Two iterations of ring halo + dot products, real values."""
        n = comm.size
        halo_bytes = max(1, int(self.rows / n * HALO_BYTES_PER_ROW))
        value = float(comm.rank)
        for _iteration in range(2):
            right = (comm.rank + 1) % n
            left = (comm.rank - 1) % n
            _src, _tag, left_halo = yield from comm.sendrecv(
                right, value, halo_bytes, source=left, tag=7)
            value = (value + left_halo) / 2.0
            total = yield from comm.allreduce(value, op=SUM,
                                              size_bytes=DOUBLE.size)
            norm = yield from comm.allreduce(value * value, op=SUM,
                                             size_bytes=DOUBLE.size)
            value = value / max(norm, 1e-12) * total
        return value
