"""Application interface consumed by the middleware.

The middleware (see :class:`repro.middleware.mpd.MPD`) asks an
application model to predict per-process execution times for a given
allocation plan, then simulates those durations on the allocated hosts.
Applications may additionally provide a message-level SPMD ``program``
for the :class:`repro.mpi.api.MPIWorld` engine; the two paths are
cross-validated in the test suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.alloc.base import AllocationPlan
from repro.apps.machine import MachineModel
from repro.mpi.costmodel import CollectiveCostModel, CostParams, GroupLayout
from repro.net.topology import Host, Topology

__all__ = ["AppEnv", "Application"]


@dataclass
class AppEnv:
    """Everything an application model needs to price an allocation."""

    topology: Topology
    machine: MachineModel = field(default_factory=MachineModel)
    cost_params: CostParams = field(default_factory=CostParams)
    _costmodel: Optional[CollectiveCostModel] = None

    @property
    def costmodel(self) -> CollectiveCostModel:
        if self._costmodel is None:
            self._costmodel = CollectiveCostModel(self.topology, self.cost_params)
        return self._costmodel


class Application(ABC):
    """Base class for workload models.

    Subclasses implement :meth:`rank_time` (per-process compute time)
    and :meth:`comm_time` (synchronised communication cost per run) and
    inherit the replica-slice bookkeeping.
    """

    #: Registry-style identifier (also used in reports).
    name: str = "app"

    # -- the middleware-facing entry point ---------------------------------
    def predicted_rank_times(self, plan: AllocationPlan,
                             env: AppEnv) -> Dict[Tuple[int, int], float]:
        """Map ``(rank, replica) -> seconds`` for a plan.

        The model mirrors a bulk-synchronous run: every process copy
        finishes after the slowest compute leg plus the (synchronising)
        communication phases, so all copies of a replica slice share
        one duration.  Contention counts include *all* process copies
        co-located on a host, whatever their rank or replica.
        """
        if env is None:
            raise ValueError(f"{self.name}: application models need an AppEnv")
        colocated = Counter(p.host.name for p in plan.placements)
        out: Dict[Tuple[int, int], float] = {}
        for replica in range(plan.r):
            slice_hosts = self._replica_hosts(plan, replica)
            duration = self.run_time(slice_hosts, plan.n, env,
                                     colocated=dict(colocated))
            for rank in range(plan.n):
                out[(rank, replica)] = duration
        return out

    def run_time(self, hosts: List[Host], n: int, env: AppEnv,
                 colocated: Optional[Dict[str, int]] = None) -> float:
        """Makespan of one SPMD run of ``n`` ranks on ``hosts``."""
        if len(hosts) != n:
            raise ValueError(f"{self.name}: need one host per rank")
        if colocated is None:
            colocated = dict(Counter(h.name for h in hosts))
        compute = max(
            self.rank_time(host, n, env, colocated.get(host.name, 1))
            for host in hosts
        )
        layout = env.costmodel.layout(hosts)
        # Contention counts must reflect every process copy: colocated
        # widens the NIC divisor, the copy census widens the backbone
        # flow divisor (replicas run their collectives concurrently).
        layout.colocated = np.array([colocated.get(h.name, 1) for h in hosts])
        layout.apply_copy_counts(colocated)
        return compute + self.comm_time(layout, n, env)

    # -- hooks ----------------------------------------------------------------
    @abstractmethod
    def rank_time(self, host: Host, n: int, env: AppEnv,
                  colocated: int) -> float:
        """Compute seconds for one rank of an ``n``-process run."""

    @abstractmethod
    def comm_time(self, layout: GroupLayout, n: int, env: AppEnv) -> float:
        """Total synchronised communication seconds for the run."""

    # -- profiling (feeds the `auto` strategy) -------------------------------
    def comm_compute_ratio(self, hosts: List[Host], n: int,
                           env: AppEnv) -> float:
        """Estimated communication/computation ratio on a candidate
        placement — the profile the ``auto`` strategy consumes."""
        if len(hosts) != n:
            raise ValueError("need one candidate host per rank")
        layout = env.costmodel.layout(hosts)
        comm = self.comm_time(layout, n, env)
        compute = max(self.rank_time(h, n, env, 1) for h in hosts)
        return comm / compute if compute > 0 else float("inf")

    #: Memory-contention exponent exposed for profiling; app models
    #: override (EP ~0.15, IS ~0.25).
    beta: float = 0.0

    # -- optional message-level program ------------------------------------------
    def program(self, comm) -> Generator:
        """SPMD program for the message-level engine (override)."""
        raise NotImplementedError(f"{self.name} has no message-level program")
        yield  # pragma: no cover

    # -- helpers --------------------------------------------------------------------
    @staticmethod
    def _replica_hosts(plan: AllocationPlan, replica: int) -> List[Host]:
        chosen: Dict[int, Host] = {}
        for placement in plan.placements:
            if placement.replica == replica:
                chosen[placement.rank] = placement.host
        return [chosen[rank] for rank in range(plan.n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
