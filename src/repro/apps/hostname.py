"""The §5.1 allocation probe: every process echoes its hostname.

"We run a program whose each process simply echoes the name of the host
it runs on.  Through this experiment, we observe where processes are
mapped depending on the chosen strategy."

The middleware already stamps every DONE message with the executing
hostname, so this model contributes (near-)zero execution time; the
experiment's signal is the allocation plan itself.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppEnv, Application
from repro.mpi.costmodel import GroupLayout
from repro.net.topology import Host

__all__ = ["HostnameApp"]


class HostnameApp(Application):
    """Zero-work probe; optionally a tiny fixed startup cost."""

    name = "hostname"

    def __init__(self, startup_s: float = 0.01) -> None:
        if startup_s < 0:
            raise ValueError("startup_s must be >= 0")
        self.startup_s = startup_s

    def rank_time(self, host: Host, n: int, env: AppEnv,
                  colocated: int) -> float:
        return self.startup_s

    def comm_time(self, layout: GroupLayout, n: int, env: AppEnv) -> float:
        return 0.0

    # -- message-level program -------------------------------------------------
    def program(self, comm) -> Generator:
        """Each rank reports its hostname; rank 0 gathers the list."""
        names = yield from comm.gather(comm.host.name, root=0, size_bytes=64)
        return names
