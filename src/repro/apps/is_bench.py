"""NAS IS (Integer Sort) model — Figure 4 right.

"IS involves a lot of communications since a sequence of one
MPI_Allreduce, MPI_Alltoall and MPI_Alltoallv occurs at each
iteration" with a low compute-to-communication ratio.

Structure per iteration (NPB 3.2):

* local key ranking over ``N/n`` keys (strongly memory bound);
* ``MPI_Allreduce`` on the bucket-size histogram (``NUM_BUCKETS``
  ints);
* ``MPI_Alltoall`` of per-destination counts (one int per rank pair);
* ``MPI_Alltoallv`` redistributing the keys (~``4*N/n^2`` bytes per
  rank pair).

Class B: ``N = 2^25`` keys, 10 timed iterations.

The calibration constants (DESIGN.md §5) encode the 2008 Java/MPJ
runtime: a large fixed per-message cost (``msg_fixed_s`` in the
cluster's :class:`~repro.mpi.costmodel.CostParams`) is what makes the
concentrate curve roughly flat in n — exactly the paper's observation —
while the high ``BETA`` reproduces concentrate's memory-contention
penalty at 32 processes.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.apps.base import AppEnv, Application
from repro.mpi.costmodel import GroupLayout
from repro.mpi.datatypes import INT, SUM
from repro.net.topology import Host

__all__ = ["ISBenchmark", "IS_CLASS_KEYS"]

#: Total keys per NAS class.
IS_CLASS_KEYS: Dict[str, int] = {
    "S": 2 ** 16,
    "W": 2 ** 20,
    "A": 2 ** 23,
    "B": 2 ** 25,
    "C": 2 ** 27,
}

#: Timed iterations (NPB 3.x uses 10 for IS).
ITERATIONS = 10
#: Bucket histogram length exchanged by the per-iteration allreduce.
NUM_BUCKETS = 1024
#: Seconds per key per iteration on the reference CPU.
KEY_COST_S = 3.6e-7
#: Memory-contention exponent (random-access counting is memory bound).
BETA = 0.25


class ISBenchmark(Application):
    """NAS IS with the paper's class-B default."""

    name = "is"

    def __init__(self, nas_class: str = "B",
                 key_cost_s: float = KEY_COST_S,
                 beta: float = BETA,
                 iterations: int = ITERATIONS) -> None:
        if nas_class not in IS_CLASS_KEYS:
            raise ValueError(f"unknown NAS class {nas_class!r}")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.nas_class = nas_class
        self.total_keys = IS_CLASS_KEYS[nas_class]
        self.key_cost_s = key_cost_s
        self.beta = beta
        self.iterations = iterations
        self.name = f"is.{nas_class}"

    # -- analytic model ---------------------------------------------------------
    def rank_time(self, host: Host, n: int, env: AppEnv,
                  colocated: int) -> float:
        work = self.total_keys / n * self.iterations
        return env.machine.compute_time(host, work, self.key_cost_s,
                                        colocated=colocated, beta=self.beta)

    def comm_time(self, layout: GroupLayout, n: int, env: AppEnv) -> float:
        cm = env.costmodel
        allreduce = cm.allreduce_time(layout, NUM_BUCKETS * INT.size)
        counts = cm.alltoall_time(layout, INT.size)
        keys_per_pair = max(1, int(4 * self.total_keys / (n * n)))
        redistribution = cm.alltoallv_time(layout, keys_per_pair)
        return self.iterations * (allreduce + counts + redistribution)

    # -- message-level program ------------------------------------------------------
    def program(self, comm) -> Generator:
        """Miniature IS iteration structure with real values.

        Each rank contributes a fake bucket histogram and exchanges
        per-destination key blocks; used by tests to validate the
        collective sequence and data routing.
        """
        n = comm.size
        checksum = 0
        for _iteration in range(min(self.iterations, 2)):
            histogram = [comm.rank + 1] * 4
            totals = yield from comm.allreduce(histogram[0], op=SUM,
                                               size_bytes=NUM_BUCKETS * INT.size)
            # Each rank announces its per-destination counts; the value
            # is the sender's rank so the received sum is
            # rank-invariant (0 + 1 + ... + n-1) while routing is still
            # exercised by the alltoallv block check below.
            counts = yield from comm.alltoall(
                [comm.rank] * n, size_bytes=INT.size,
            )
            blocks = yield from comm.alltoallv(
                [f"{comm.rank}->{dest}" for dest in range(n)],
                sizes=[max(1, int(4 * self.total_keys / (n * n)))] * n,
            )
            checksum += totals + sum(counts)
            assert blocks[comm.rank] == f"{comm.rank}->{comm.rank}"
        return checksum
