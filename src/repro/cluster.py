"""Top-level facade: a booted P2P-MPI grid ready for submissions.

:class:`P2PMPICluster` wires together the simulator, network, supernode
and one MPD per host, and exposes the ``p2pmpirun`` workflow as plain
method calls.  :func:`build_grid5000_cluster` instantiates the paper's
testbed with requests originating at nancy.

Example
-------
>>> from repro import build_grid5000_cluster, JobRequest
>>> cluster = build_grid5000_cluster(seed=7)
>>> res = cluster.submit_and_run(JobRequest(n=120, strategy="spread"))
>>> res.status.value
'success'
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass
from typing import (Callable, Dict, Generator, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.apps.base import AppEnv
from repro.apps.machine import MachineModel
from repro.grid5000.builder import build_topology
from repro.middleware.config import MiddlewareConfig, OwnerPrefs
from repro.middleware.jobs import JobRequest, JobResult
from repro.middleware.mpd import MPD
from repro.mpi.costmodel import CostParams
from repro.net.latency import LatencyModel
from repro.net.topology import Cluster, Host, Site, Topology
from repro.net.transport import Network
from repro.overlay.churn import ChurnInjector, FailureEvent
from repro.overlay.supernode import Supernode
from repro.sim.core import Simulator
from repro.sim.monitor import Monitor

__all__ = ["P2PMPICluster", "build_grid5000_cluster", "build_latratio_cluster",
           "build_small_cluster", "build_scale_free_cluster",
           "build_small_world_cluster", "build_fat_sites_cluster",
           "ClusterSpec", "FamilyParam", "TopologyFamily",
           "register_family", "get_family", "family_names",
           "register_cluster_kind", "cluster_kinds", "DEFAULT_COST_PARAMS"]

#: Communication cost parameters calibrated for the 2008 Java/MPJ
#: runtime (see DESIGN.md §5 and repro.mpi.costmodel).  WAN backbones
#: pool plan-dependently (DESIGN.md §10): each site link divides by
#: the placement's own concurrent crossing-pair count, validated
#: against the fig4 IS 2x64-vs-1x128 crossover.
DEFAULT_COST_PARAMS = CostParams(
    sw_overhead_s=20e-6,
    msg_fixed_s=3.5e-3,
    msg_fixed_small_s=3.0e-4,
    eager_threshold_bytes=6144,
    ser_per_byte_s=2.0e-8,
    wan_extra_s=5.0e-4,
    nic_share=True,
    wan_contention="plan",
)


class P2PMPICluster:
    """A fully-wired simulated P2P-MPI deployment.

    Parameters
    ----------
    topology:
        The site/host/link description.
    seed:
        Master seed; every stochastic element derives from it.
    config:
        Middleware tuning (one config for all hosts).
    prefs_for:
        ``host -> OwnerPrefs``; defaults to the paper's setting
        (``J=1``, ``P`` = core count).
    supernode_host / default_submitter:
        Well-known service location and where ``p2pmpirun`` runs;
        both default to the first host of the topology's hub site.
    cost_params:
        Communication cost constants for the application models.
    """

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        config: Optional[MiddlewareConfig] = None,
        prefs_for: Optional[Callable[[Host], OwnerPrefs]] = None,
        supernode_host: Optional[str] = None,
        default_submitter: Optional[str] = None,
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        machine: Optional[MachineModel] = None,
    ) -> None:
        self.topology = topology
        self.config = config or MiddlewareConfig()
        self.sim = Simulator(seed=seed)
        self.monitor = Monitor()

        anchor = self._pick_anchor(topology, supernode_host)
        self.supernode_host = anchor
        self.default_submitter = default_submitter or anchor

        self.latency_model = LatencyModel(
            topology,
            self.sim.rng.stream("net.latency"),
            noise_sigma_ms=self.config.noise_sigma_ms,
            load_of=self._busy_processes,
        )
        self.network = Network(self.sim, topology, latency=self.latency_model)
        self.app_env = AppEnv(
            topology=topology,
            machine=machine or MachineModel(),
            cost_params=cost_params,
        )

        prefs_for = prefs_for or (lambda host: OwnerPrefs.for_cores(host.cores))
        self.mpds: Dict[str, MPD] = {}
        for host in topology.all_hosts():
            self.mpds[host.name] = MPD(
                sim=self.sim,
                network=self.network,
                topology=topology,
                host=host,
                supernode_host=anchor,
                latency_model=self.latency_model,
                prefs=prefs_for(host),
                config=self.config,
                app_env=self.app_env,
            )

        self.network.register(anchor)
        self.supernode = Supernode(
            self.network, anchor,
            stale_after_s=4 * self.config.alive_period_s,
        )
        self.sim.process(self.supernode.service())
        self.churn = ChurnInjector(self.sim, self.network,
                                   on_change=self._on_host_change)
        self._booted = False

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pick_anchor(topology: Topology, explicit: Optional[str]) -> str:
        if explicit is not None:
            if explicit not in topology.hosts:
                raise KeyError(f"unknown host {explicit!r}")
            return explicit
        if topology.hub is not None:
            return topology.hosts_in_site(topology.hub)[0].name
        return topology.all_hosts()[0].name

    def _busy_processes(self, host_name: str) -> int:
        mpd = self.mpds.get(host_name)
        return mpd.gatekeeper.busy_processes if mpd is not None else 0

    def _on_host_change(self, host_name: str, down: bool) -> None:
        mpd = self.mpds.get(host_name)
        if mpd is None:
            return
        if down:
            mpd.on_host_down()
            # The supernode is NOT told: it learns through missing
            # alive signals (staleness) or a submitter's REPORT_DEAD —
            # the paper's step-5 timeout path must do the detecting.
        else:
            # Revival: the host re-registers like a restarted mpiboot;
            # the supernode learns of the comeback through that message,
            # never through this (out-of-band) hook.
            mpd.on_host_up()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def boot(self, stagger_s: float = 0.0005) -> "P2PMPICluster":
        """``mpiboot`` every host; returns self when the overlay is up."""
        if self._booted:
            return self

        def staggered(mpd: MPD, delay: float) -> Generator:
            yield self.sim.timeout(delay)
            yield from mpd.boot()

        procs = [
            self.sim.process(staggered(mpd, i * stagger_s))
            for i, mpd in enumerate(self.mpds.values())
        ]
        self.sim.run_until_complete(self.sim.all_of(procs))
        self._booted = True
        return self

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    def mpd(self, host_name: Optional[str] = None) -> MPD:
        return self.mpds[host_name or self.default_submitter]

    def submit_and_run(self, request: JobRequest,
                       submitter: Optional[str] = None) -> JobResult:
        """Run one ``p2pmpirun`` invocation to completion."""
        if not self._booted:
            self.boot()
        mpd = self.mpd(submitter)
        proc = self.sim.process(mpd.submit_job(request))
        result: JobResult = self.sim.run_until_complete(proc)
        self.monitor.record(
            self.sim.now, "job", result.status.value,
            strategy=request.strategy, n=request.n, r=request.r,
            tag=request.tag,
        )
        return result

    def submit_many(self, requests: Sequence[JobRequest],
                    submitter: Optional[str] = None) -> List[JobResult]:
        """Run several submissions back to back (sequentially)."""
        return [self.submit_and_run(req, submitter=submitter)
                for req in requests]

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def kill_hosts(self, host_names: Sequence[str], at_s: Optional[float] = None):
        """Crash hosts now or at an absolute simulation time."""
        when = self.sim.now if at_s is None else at_s
        schedule = [FailureEvent(when, name, True) for name in sorted(host_names)]
        return self.churn.start(schedule)

    def alive_hosts(self) -> List[str]:
        return [name for name in self.mpds if not self.network.is_down(name)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<P2PMPICluster hosts={len(self.mpds)} "
                f"booted={self._booted} t={self.sim.now:.3f}>")


def build_grid5000_cluster(
    seed: int = 0,
    config: Optional[MiddlewareConfig] = None,
    cost_params: CostParams = DEFAULT_COST_PARAMS,
    boot: bool = True,
) -> P2PMPICluster:
    """The paper's testbed: Grid'5000 with submissions from nancy."""
    topology = build_topology()
    cluster = P2PMPICluster(
        topology,
        seed=seed,
        config=config,
        supernode_host="grelon-1.nancy",
        default_submitter="grelon-1.nancy",
        cost_params=cost_params,
    )
    return cluster.boot() if boot else cluster


def build_latratio_cluster(
    seed: int = 0,
    config: Optional[MiddlewareConfig] = None,
    cost_params: CostParams = DEFAULT_COST_PARAMS,
    boot: bool = True,
    latency_ratio: float = 121.6,
) -> P2PMPICluster:
    """The paper's testbed with a tunable intra/inter-site latency ratio.

    ``latency_ratio`` is the ratio of the reference WAN RTT (nancy-lyon,
    the nearest remote site) to the LAN RTT; the paper's own setting is
    10.576 / 0.087 ≈ 121.6.  Smaller ratios flatten the grid towards
    one big LAN (site locality stops mattering); larger ones deepen the
    site hierarchy.  WAN RTTs stay at the measured values — only the
    LAN leg moves — so the allocation-relevant site *ranking* is
    preserved across the whole axis.
    """
    if latency_ratio <= 0:
        raise ValueError("latency_ratio must be > 0")
    from repro.grid5000.sites import SITE_RTT_MS_FROM_NANCY

    lan_rtt_ms = SITE_RTT_MS_FROM_NANCY["lyon"] / latency_ratio
    topology = build_topology(lan_rtt_ms=lan_rtt_ms)
    cluster = P2PMPICluster(
        topology,
        seed=seed,
        config=config,
        supernode_host="grelon-1.nancy",
        default_submitter="grelon-1.nancy",
        cost_params=cost_params,
    )
    return cluster.boot() if boot else cluster


def build_small_cluster(
    seed: int = 0,
    config: Optional[MiddlewareConfig] = None,
    cost_params: CostParams = DEFAULT_COST_PARAMS,
    boot: bool = True,
) -> P2PMPICluster:
    """A 3-site / 10-host / 28-core grid for fast engine runs and tests.

    alpha (hub): 4 hosts x 4 cores, beta: 4 x 2 (10 ms),
    gamma: 2 x 2 (20 ms) — the same shape the protocol tests use.
    """
    sites = [
        Site("alpha", (Cluster("a1", "alpha", "X", 4, 4, 16),)),
        Site("beta", (Cluster("b1", "beta", "X", 4, 4, 8),)),
        Site("gamma", (Cluster("g1", "gamma", "X", 2, 2, 4),)),
    ]
    topology = Topology(
        sites=sites,
        site_rtt_ms={("alpha", "beta"): 10.0, ("alpha", "gamma"): 20.0,
                     ("beta", "gamma"): 25.0},
        hub="alpha",
        lan_rtt_ms=0.1,
    )
    cluster = P2PMPICluster(
        topology,
        seed=seed,
        config=config or MiddlewareConfig(noise_sigma_ms=0.05),
        supernode_host="a1-1.alpha",
        default_submitter="a1-1.alpha",
        cost_params=cost_params,
    )
    return cluster.boot() if boot else cluster


def build_scale_free_cluster(
    seed: int = 0,
    config: Optional[MiddlewareConfig] = None,
    cost_params: CostParams = DEFAULT_COST_PARAMS,
    boot: bool = True,
    sites: int = 20,
    m: int = 2,
    hosts_per_site: int = 2,
    cores_per_host: int = 4,
    topo_seed: int = 0,
) -> P2PMPICluster:
    """A routed Barabási–Albert federation (see repro.net.families)."""
    from repro.net.families import scale_free_topology

    topology = scale_free_topology(
        sites=sites, m=m, hosts_per_site=hosts_per_site,
        cores_per_host=cores_per_host, topo_seed=topo_seed)
    cluster = P2PMPICluster(topology, seed=seed, config=config,
                            cost_params=cost_params)
    return cluster.boot() if boot else cluster


def build_small_world_cluster(
    seed: int = 0,
    config: Optional[MiddlewareConfig] = None,
    cost_params: CostParams = DEFAULT_COST_PARAMS,
    boot: bool = True,
    sites: int = 20,
    k: int = 4,
    rewire_p: float = 0.1,
    hosts_per_site: int = 2,
    cores_per_host: int = 4,
    topo_seed: int = 0,
) -> P2PMPICluster:
    """A routed Watts–Strogatz federation (see repro.net.families)."""
    from repro.net.families import small_world_topology

    topology = small_world_topology(
        sites=sites, k=k, rewire_p=rewire_p,
        hosts_per_site=hosts_per_site, cores_per_host=cores_per_host,
        topo_seed=topo_seed)
    cluster = P2PMPICluster(topology, seed=seed, config=config,
                            cost_params=cost_params)
    return cluster.boot() if boot else cluster


def build_fat_sites_cluster(
    seed: int = 0,
    config: Optional[MiddlewareConfig] = None,
    cost_params: CostParams = DEFAULT_COST_PARAMS,
    boot: bool = True,
    sites: int = 100,
    router_groups: int = 8,
    hosts_per_site: int = 1,
    cores_per_host: int = 4,
    failed: Tuple[str, ...] = (),
    topo_seed: int = 0,
) -> P2PMPICluster:
    """Hundreds of sites dual-homed on a router core, with optional
    ``failed`` router/site exclusion (see repro.net.families)."""
    from repro.net.families import fat_sites_topology

    topology = fat_sites_topology(
        sites=sites, router_groups=router_groups,
        hosts_per_site=hosts_per_site, cores_per_host=cores_per_host,
        failed=tuple(failed), topo_seed=topo_seed)
    cluster = P2PMPICluster(topology, seed=seed, config=config,
                            cost_params=cost_params)
    return cluster.boot() if boot else cluster


# ---------------------------------------------------------------------------
# Topology-family registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FamilyParam:
    """One declared parameter of a :class:`TopologyFamily`."""

    name: str
    default: object = None
    doc: str = ""


@dataclass(frozen=True)
class TopologyFamily:
    """A declarative, seedable cluster recipe (DESIGN.md §14).

    Replaces the ad-hoc ``register_cluster_kind(name, builder)`` pair:
    the family carries its parameter schema, so a
    :class:`ClusterSpec` naming an unknown parameter fails at
    *spec-construction* time — in the driver process, with the family's
    accepted names in the message — instead of as a ``TypeError`` deep
    inside a sweep worker.

    ``builder`` must be a module-level callable (specs cross process
    boundaries) with signature
    ``builder(seed=..., config=..., boot=..., **params)``; ``seed`` is
    the simulation master seed, while topology-shaping randomness goes
    through the family's own ``topo_seed``-style parameters so a
    campaign can pin one generated topology across many cells.

    ``params=None`` marks a legacy registration through the deprecated
    shim: the schema is unknown, so validation is skipped.
    """

    name: str
    builder: Callable[..., P2PMPICluster]
    params: Optional[Tuple[FamilyParam, ...]] = ()
    doc: str = ""

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in (self.params or ()))

    def defaults(self) -> Dict[str, object]:
        return {p.name: p.default for p in (self.params or ())}

    def validate(self, params: Mapping[str, object]) -> None:
        """Reject parameters the family does not declare."""
        if self.params is None:  # legacy shim registration
            return
        unknown = sorted(set(params) - set(self.param_names()))
        if unknown:
            accepted = sorted(self.param_names())
            raise ValueError(
                f"unknown parameter(s) {unknown} for topology family "
                f"{self.name!r} (accepted: {accepted})")

    def build(self, seed: int = 0,
              config: Optional[MiddlewareConfig] = None,
              boot: bool = True, **params: object) -> P2PMPICluster:
        """Validate ``params`` and instantiate the recipe."""
        self.validate(params)
        return self.builder(seed=seed, config=config, boot=boot, **params)


#: Registered topology families.  Registration must happen at import
#: time of a module the sweep workers also import (e.g. the module
#: defining the cell runner): under ``spawn``/``forkserver`` start
#: methods a worker re-imports from scratch, so registrations done only
#: in the parent process would not exist there.
_FAMILIES: Dict[str, TopologyFamily] = {}


def register_family(family: TopologyFamily) -> TopologyFamily:
    """Register (or re-register) a topology family by name."""
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> TopologyFamily:
    family = _FAMILIES.get(name)
    if family is None:
        raise KeyError(f"unknown topology family {name!r} "
                       f"(registered: {family_names()})")
    return family


def family_names() -> List[str]:
    return sorted(_FAMILIES)


def _gen_common(hosts_per_site: int) -> Tuple[FamilyParam, ...]:
    """Parameters every generated family shares."""
    return (
        FamilyParam("hosts_per_site", hosts_per_site,
                    "hosts per generated site"),
        FamilyParam("cores_per_host", 4, "cores per host"),
        FamilyParam("topo_seed", 0, "seed shaping the generated graph "
                    "(independent of the simulation master seed)"),
    )


register_family(TopologyFamily(
    name="grid5000", builder=build_grid5000_cluster,
    doc="the paper's 6-site Grid'5000 testbed (flat, measured RTTs)"))
register_family(TopologyFamily(
    name="grid5000-latratio", builder=build_latratio_cluster,
    params=(FamilyParam("latency_ratio", 121.6,
                        "reference WAN RTT over LAN RTT"),),
    doc="Grid'5000 with a tunable intra/inter-site latency ratio"))
register_family(TopologyFamily(
    name="small", builder=build_small_cluster,
    doc="3-site / 10-host / 28-core grid for fast runs and tests"))
register_family(TopologyFamily(
    name="scale_free", builder=build_scale_free_cluster,
    params=(FamilyParam("sites", 20, "number of sites"),
            FamilyParam("m", 2, "Barabási–Albert attachment count"),
            ) + _gen_common(2),
    doc="routed Barabási–Albert site graph (hub-and-spoke contention)"))
register_family(TopologyFamily(
    name="small_world", builder=build_small_world_cluster,
    params=(FamilyParam("sites", 20, "number of sites"),
            FamilyParam("k", 4, "ring degree"),
            FamilyParam("rewire_p", 0.1, "shortcut rewiring probability"),
            ) + _gen_common(2),
    doc="routed Watts–Strogatz site graph (ring plus shortcuts)"))
register_family(TopologyFamily(
    name="fat_sites", builder=build_fat_sites_cluster,
    params=(FamilyParam("sites", 100, "number of sites"),
            FamilyParam("router_groups", 8, "routers in the core ring"),
            FamilyParam("failed", (), "router/site names to exclude"),
            ) + _gen_common(1),
    doc="hundreds of sites dual-homed on a router core (+ failures)"))


# -- deprecated shims --------------------------------------------------------

_DEPRECATION_NOTED: set = set()


def _note_deprecated(old: str, new: str) -> None:
    """One stderr note per deprecated entry point per process."""
    if old in _DEPRECATION_NOTED:
        return
    _DEPRECATION_NOTED.add(old)
    print(f"repro.cluster: {old} is deprecated; use {new}",
          file=sys.stderr)


def register_cluster_kind(name: str,
                          builder: Callable[..., P2PMPICluster]) -> None:
    """Register a named recipe without a parameter schema.

    .. deprecated::
        Use :func:`register_family` with a :class:`TopologyFamily`
        (declared parameters get validated at spec-construction time;
        this shim registers an unvalidated legacy family).
    """
    _note_deprecated("register_cluster_kind()",
                     "register_family(TopologyFamily(...))")
    register_family(TopologyFamily(name=name, builder=builder, params=None))


def cluster_kinds() -> List[str]:
    """Registered family names.

    .. deprecated::
        Use :func:`family_names`.
    """
    _note_deprecated("cluster_kinds()", "family_names()")
    return family_names()


@dataclass(frozen=True)
class ClusterSpec:
    """A picklable recipe for building a :class:`P2PMPICluster`.

    The experiment engine ships one of these to every sweep cell —
    possibly across process boundaries — so a cell can build its own
    private cluster from ``(kind, config, per-cell seed)`` instead of
    sharing a live (unpicklable) simulator.

    Attributes
    ----------
    kind:
        A :class:`TopologyFamily` name registered through
        :func:`register_family` (``grid5000``, ``grid5000-latratio``,
        ``small``, ``scale_free``, ``small_world`` and ``fat_sites``
        are built in).
    config:
        Optional middleware tuning applied to every host.
    boot:
        Whether :meth:`build` returns a booted overlay (default).
    params:
        Family parameters, as a sorted tuple of ``(name, value)``
        pairs so the spec stays hashable/picklable — e.g.
        ``(("latency_ratio", 10.0),)`` for ``grid5000-latratio``.
        Validated against the family's declared schema here, at
        construction time, so a typo fails in the driver process
        instead of deep inside a sweep worker.
    """

    kind: str = "grid5000"
    config: Optional[MiddlewareConfig] = None
    boot: bool = True
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        family = _FAMILIES.get(self.kind)
        if family is None:
            raise ValueError(f"unknown topology family {self.kind!r} "
                             f"(registered: {family_names()})")
        if tuple(sorted(self.params)) != tuple(self.params):
            raise ValueError("params must be sorted (name, value) pairs")
        family.validate(dict(self.params))

    def build(self, seed: int = 0) -> P2PMPICluster:
        """Instantiate the recipe with ``seed`` as the master seed."""
        family = _FAMILIES.get(self.kind)
        if family is None:
            # Unpickling bypasses __post_init__, so a spec for a family
            # the worker process never registered lands here.
            raise ValueError(
                f"topology family {self.kind!r} is not registered in "
                f"this process (registered: {family_names()}); register "
                f"it at import time of the cell-runner module")
        return family.build(seed=seed, config=self.config, boot=self.boot,
                            **dict(self.params))

    def with_config(self, config: Optional[MiddlewareConfig]) -> "ClusterSpec":
        return dataclasses.replace(self, config=config)

    def with_params(self, **params: object) -> "ClusterSpec":
        """A copy with extra builder arguments merged in (and sorted)."""
        merged = dict(self.params)
        merged.update(params)
        return dataclasses.replace(self, params=tuple(sorted(merged.items())))

    def fingerprint(self) -> Dict[str, object]:
        """Code-relevant identity for result-store content hashing."""
        return {
            "kind": self.kind,
            "config": (None if self.config is None
                       else dataclasses.asdict(self.config)),
            "boot": self.boot,
            "params": [list(pair) for pair in self.params],
        }
