"""Owner preferences and middleware tuning knobs (§4.1).

"Each MPD, as a gatekeeper of the local resource, also manages the
resource owner preferences": the number ``J`` of different applications
accepted simultaneously, the number ``P`` of processes per application,
and allow/deny lists.  The paper's experiments set ``P`` to the node's
core count and use the defaults otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

__all__ = ["OwnerPrefs", "MiddlewareConfig"]


@dataclass(frozen=True)
class OwnerPrefs:
    """One host owner's sharing policy.

    Attributes
    ----------
    j_limit:
        Max number of distinct applications run simultaneously (``J``).
    p_limit:
        Max processes of a single MPI application (``P``).  ``J=1,
        P=2`` is the paper's example "often used for dual-core CPUs".
    denied:
        Submitter host names whose requests are refused ("the denied IP
        list", §4.2 step 4).
    """

    j_limit: int = 1
    p_limit: int = 1
    denied: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.j_limit < 1:
            raise ValueError("J must be >= 1")
        if self.p_limit < 1:
            raise ValueError("P must be >= 1")

    def allows(self, submitter: str) -> bool:
        return submitter not in self.denied

    @staticmethod
    def for_cores(cores: int, j_limit: int = 1,
                  denied: Optional[FrozenSet[str]] = None) -> "OwnerPrefs":
        """The paper's experimental setting: ``P`` = host core count."""
        return OwnerPrefs(j_limit=j_limit, p_limit=cores,
                          denied=denied or frozenset())


@dataclass(frozen=True)
class MiddlewareConfig:
    """Cluster-wide middleware tuning.

    Attributes
    ----------
    overbook_factor / overbook_extra:
        Booking targets ``max(ceil(factor * n*r), n*r + extra)`` hosts
        "to anticipate unavailable hosts" (§4.2 step 2).
    booking_retries / retry_backoff_s:
        §3.2: the MPD "dynamically tries (during a limited time) to
        reserve a suitable set of resources" — an infeasible booking
        round (e.g. lost a race against a concurrent submitter) is
        retried after a backoff, up to this many extra rounds.
    rs_timeout_s:
        How long the submitter's RS waits for RESERVE replies before
        marking silent peers dead (§4.2 step 5).
    start_timeout_s:
        How long the MPD waits for STARTED acks (step 8).
    reservation_ttl_s:
        A booked but unused reservation auto-expires after this long,
        so cancelled/overbooked keys cannot leak ``J`` slots.
    ping_samples:
        Probes averaged per latency estimate.
    noise_sigma_ms:
        Per-probe measurement noise (CPU/TCP load variations, §4.1).
        The default is calibrated so sites ~1 ms apart interleave while
        sites >3 ms apart stay ranked — the paper's §5.1 observation.
    ewma_alpha:
        Optional EWMA smoothing of latency estimates (future-work knob).
    alive_period_s:
        Peer heartbeat period.
    ping_period_s:
        Period of the per-peer background ping loop (§4.1).  ``None``
        (default) models the ping round as happening at submission
        time instead of continuously, which keeps the event count of
        350-peer experiments manageable; set a value to run the
        literal periodic loop.
    app_grace_s:
        Extra wall time granted beyond the predicted app makespan
        before the submitter declares ranks missing.
    """

    overbook_factor: float = 1.2
    overbook_extra: int = 5
    booking_retries: int = 2
    retry_backoff_s: float = 1.0
    rs_timeout_s: float = 2.0
    start_timeout_s: float = 5.0
    reservation_ttl_s: float = 60.0
    ping_samples: int = 3
    noise_sigma_ms: float = 1.2
    ewma_alpha: Optional[float] = None
    alive_period_s: float = 60.0
    ping_period_s: Optional[float] = None
    app_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.overbook_factor < 1.0:
            raise ValueError("overbook_factor must be >= 1.0")
        if self.overbook_extra < 0:
            raise ValueError("overbook_extra must be >= 0")
        if self.rs_timeout_s <= 0 or self.start_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.ping_samples < 1:
            raise ValueError("ping_samples must be >= 1")

    def booking_target(self, needed: int) -> int:
        """How many hosts to try to book for ``needed`` process slots."""
        import math

        return max(math.ceil(self.overbook_factor * needed),
                   needed + self.overbook_extra)
