"""Per-host admission control ("gatekeeper", §3.2/§4.1).

The MPD "acts as a gatekeeper of the resource by controlling how many
processes and applications can be run simultaneously".  The gatekeeper
tracks both *held reservations* and *running applications* against the
owner's ``J`` limit, and validates process counts against ``P`` when an
application actually starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.middleware.config import OwnerPrefs

__all__ = ["AdmissionError", "Gatekeeper"]


class AdmissionError(RuntimeError):
    """Raised when a start violates the owner policy."""


@dataclass
class Gatekeeper:
    """Admission state for one host."""

    host_name: str
    prefs: OwnerPrefs
    #: Reservation keys currently held but not yet started.
    held: Set[str] = field(default_factory=set)
    #: job_id -> local process count for running applications.
    running: Dict[str, int] = field(default_factory=dict)
    #: Total busy process slots (exported as the "load" the latency
    #: probes observe).
    refused: int = 0
    admitted: int = 0

    # -- queries --------------------------------------------------------------
    @property
    def applications_in_flight(self) -> int:
        """Held reservations + running apps, compared against ``J``."""
        return len(self.held) + len(self.running)

    @property
    def busy_processes(self) -> int:
        return sum(self.running.values())

    def can_accept(self, submitter: str) -> bool:
        """§4.2 step 4: J not exceeded and submitter not denied."""
        if not self.prefs.allows(submitter):
            return False
        return self.applications_in_flight < self.prefs.j_limit

    # -- reservation lifecycle ---------------------------------------------------
    def hold(self, key: str) -> None:
        self.admitted += 1
        self.held.add(key)

    def refuse(self) -> None:
        self.refused += 1

    def release_hold(self, key: str) -> bool:
        """Drop a held reservation (cancel/expiry); True if it existed."""
        if key in self.held:
            self.held.discard(key)
            return True
        return False

    # -- application lifecycle -----------------------------------------------------
    def start_application(self, key: str, job_id: str, n_processes: int) -> None:
        """Convert a held reservation into a running application.

        Raises
        ------
        AdmissionError
            If the key is not held or ``n_processes`` exceeds ``P``.
        """
        if key not in self.held:
            raise AdmissionError(
                f"{self.host_name}: start without held reservation"
            )
        if n_processes < 1 or n_processes > self.prefs.p_limit:
            raise AdmissionError(
                f"{self.host_name}: {n_processes} processes exceeds P="
                f"{self.prefs.p_limit}"
            )
        if job_id in self.running:
            raise AdmissionError(f"{self.host_name}: job {job_id} already running")
        self.held.discard(key)
        self.running[job_id] = n_processes

    def end_application(self, job_id: str) -> None:
        if job_id not in self.running:
            raise AdmissionError(f"{self.host_name}: job {job_id} not running")
        del self.running[job_id]
