"""Per-host admission control ("gatekeeper", §3.2/§4.1).

The MPD "acts as a gatekeeper of the resource by controlling how many
processes and applications can be run simultaneously".  The gatekeeper
tracks both *held reservations* and *running applications* against the
owner's ``J`` limit, and validates process counts against ``P`` when an
application actually starts.

Admission is **atomic**: :meth:`Gatekeeper.try_admit` checks the owner
policy and pins the ``J`` slot in one indivisible step.  The legacy
:meth:`can_accept` + :meth:`hold` pair is a check-then-act sequence
that is only safe when nothing can interleave between the check and
the act; with concurrent submitters (the asyncio control plane of
:mod:`repro.middleware.controlplane`, or any interleaved RS traffic)
two callers could both pass ``can_accept`` and then both ``hold``,
exceeding ``J``.  The pair survives as deprecated shims for tests and
force-occupancy helpers only — admission paths must use ``try_admit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.middleware.config import OwnerPrefs

__all__ = ["AdmissionError", "Gatekeeper"]


class AdmissionError(RuntimeError):
    """Raised when a start violates the owner policy."""


@dataclass
class Gatekeeper:
    """Admission state for one host."""

    host_name: str
    prefs: OwnerPrefs
    #: Reservation keys currently held but not yet started.
    held: Set[str] = field(default_factory=set)
    #: job_id -> local process count for running applications.
    running: Dict[str, int] = field(default_factory=dict)
    #: Total busy process slots (exported as the "load" the latency
    #: probes observe).
    refused: int = 0
    admitted: int = 0

    # -- queries --------------------------------------------------------------
    @property
    def applications_in_flight(self) -> int:
        """Held reservations + running apps, compared against ``J``."""
        return len(self.held) + len(self.running)

    @property
    def busy_processes(self) -> int:
        return sum(self.running.values())

    def can_accept(self, submitter: str) -> bool:
        """§4.2 step 4: J not exceeded and submitter not denied.

        .. deprecated::
            Read-only policy probe.  Pairing it with :meth:`hold` is a
            check-then-act race under any interleaving; admission paths
            must call :meth:`try_admit` instead.
        """
        if not self.prefs.allows(submitter):
            return False
        return self.applications_in_flight < self.prefs.j_limit

    # -- reservation lifecycle ---------------------------------------------------
    def try_admit(self, key: str, submitter: str) -> bool:
        """Atomically admit reservation ``key`` for ``submitter``.

        The §4.2 step-4 decision as one indivisible operation: the
        owner policy (denied list, ``J`` limit) is re-validated at the
        instant the slot is pinned, so interleaved admissions can never
        exceed ``J`` — the invariant the deprecated ``can_accept`` +
        ``hold`` pair could not keep.

        Re-admitting a key that is already held is idempotent: the slot
        stays pinned once, no counter moves, and ``True`` is returned
        (the reservation this key names is in place either way).

        Returns
        -------
        bool
            ``True`` if the key holds a ``J`` slot after the call,
            ``False`` if the admission was refused (also counted in
            :attr:`refused`).
        """
        if key in self.held:
            return True
        if (not self.prefs.allows(submitter)
                or self.applications_in_flight >= self.prefs.j_limit):
            self.refused += 1
            return False
        self.held.add(key)
        self.admitted += 1
        return True

    def hold(self, key: str) -> bool:
        """Pin a ``J`` slot for ``key`` unconditionally (no policy check).

        .. deprecated::
            The "act" half of the racy check-then-act pair; admission
            paths must use :meth:`try_admit`.  Kept for tests and
            force-occupancy helpers that deliberately bypass policy.

        Re-holding an already-held key is idempotent — the ``held`` set
        always deduplicated, but the ``admitted`` counter used to be
        double-bumped, skewing refusal-rate metrics.  Returns whether
        the key was new.
        """
        if key in self.held:
            return False
        self.held.add(key)
        self.admitted += 1
        return True

    def refuse(self) -> None:
        """Count a refusal decided outside :meth:`try_admit` (shim path)."""
        self.refused += 1

    def release_hold(self, key: str) -> bool:
        """Drop a held reservation (cancel/expiry); True if it existed."""
        if key in self.held:
            self.held.discard(key)
            return True
        return False

    # -- application lifecycle -----------------------------------------------------
    def start_application(self, key: str, job_id: str, n_processes: int) -> None:
        """Convert a held reservation into a running application.

        Raises
        ------
        AdmissionError
            If the key is not held or ``n_processes`` exceeds ``P``.
        """
        if key not in self.held:
            raise AdmissionError(
                f"{self.host_name}: start without held reservation"
            )
        if n_processes < 1 or n_processes > self.prefs.p_limit:
            raise AdmissionError(
                f"{self.host_name}: {n_processes} processes exceeds P="
                f"{self.prefs.p_limit}"
            )
        if job_id in self.running:
            raise AdmissionError(f"{self.host_name}: job {job_id} already running")
        self.held.discard(key)
        self.running[job_id] = n_processes

    def end_application(self, job_id: str) -> None:
        if job_id not in self.running:
            raise AdmissionError(f"{self.host_name}: job {job_id} not running")
        del self.running[job_id]

    # -- rank migration --------------------------------------------------------
    def adopt_process(self, job_id: str) -> None:
        """Account one migrated-in process joining a job already running
        here: the copy shares the job's existing ``J`` slot, only the
        process count (and thus :attr:`busy_processes`) moves.
        """
        if job_id not in self.running:
            raise AdmissionError(f"{self.host_name}: job {job_id} not running")
        self.running[job_id] += 1

    def release_process(self, job_id: str) -> None:
        """Account one process leaving a running job (migration out or
        an adopted copy completing); the application slot closes when
        the local count reaches zero.
        """
        if job_id not in self.running:
            raise AdmissionError(f"{self.host_name}: job {job_id} not running")
        self.running[job_id] -= 1
        if self.running[job_id] <= 0:
            del self.running[job_id]
