"""Asyncio multi-tenant control plane on a virtual-time event loop.

The DES middleware (:mod:`repro.middleware.mpd`) serialises job
submissions: one generator runs at a time, so the gatekeeper's legacy
``can_accept`` + ``hold`` pair never actually raced.  The operating
regime the Grid'5000 platform reports describe — many independent
users submitting concurrently against shared hosts — needs genuinely
interleaved admission, which is exactly what exposes the check-then-act
bug and what :meth:`~repro.middleware.gatekeeper.Gatekeeper.try_admit`
fixes.

This module provides that regime:

* :class:`VirtualTimeLoop` — an asyncio event loop whose clock is
  *virtual*: ``time()`` returns a simulated instant, and whenever no
  callback is ready the loop jumps straight to the earliest scheduled
  timer.  A campaign with thousands of concurrent submitters and hours
  of simulated time runs in milliseconds of wall clock, and — because
  asyncio's ready queue is FIFO and every random draw is seeded — two
  runs of the same coroutine produce byte-identical traces, whether
  executed serially or in an orchestrator worker pool.
* :class:`ControlPlane` — the asyncio service in the spirit of the
  supernode (§3.2): a peer registry fed by heartbeats, gossip-style
  state propagation with per-origin sequence numbers
  (:mod:`repro.overlay.gossip`), job-assignment proposals, and the
  per-tenant admission path that routes every reservation through the
  atomic ``try_admit``.
* :func:`run_multi_tenant` — the open-loop multi-user round: per-tenant
  Poisson arrival processes submit jobs concurrently against one shared
  cluster's gatekeepers, and the fairness ledger (per-tenant slowdown
  spread, admission-latency percentiles, saturation) is returned as a
  plain dict for the ``multiuser2`` campaign driver.

Nothing here touches the wall clock or unseeded randomness; the
determinism contract is spelled out in DESIGN.md §13.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import random
import selectors
from dataclasses import dataclass, field
from typing import Awaitable, Dict, List, Optional, Sequence, TypeVar

from repro.alloc import (
    AllocationError,
    AllocationPlan,
    ReservedHost,
    build_plan,
    get_strategy,
)
from repro.middleware.gatekeeper import AdmissionError, Gatekeeper
from repro.net.topology import Host, Topology
from repro.overlay.gossip import GossipEnvelope, GossipView, PeerDigest
from repro.sim.rng import stable_hash64

__all__ = [
    "VirtualTimeLoop",
    "run_virtual",
    "AssignmentProposal",
    "ControlPlane",
    "TenantStats",
    "run_multi_tenant",
]

T = TypeVar("T")


# ---------------------------------------------------------------------------
# Virtual-time event loop
# ---------------------------------------------------------------------------

class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop running on simulated time.

    ``time()`` returns the virtual clock; whenever the ready queue is
    empty the loop advances the clock to the earliest scheduled timer
    instead of blocking in the selector.  ``await asyncio.sleep(3600)``
    therefore costs nothing in wall time while preserving asyncio's
    exact callback ordering — which is what makes campaign reports
    byte-identical across ``--jobs`` settings.

    If the loop goes fully idle (no ready callbacks, no timers) while
    coroutines are still pending, no event can ever wake them in a
    purely virtual world, so the loop raises rather than hanging —
    the virtual analogue of a deadlock detector.
    """

    def __init__(self) -> None:
        # A bare select()-based selector: no FDs are ever registered in
        # virtual mode, so the portable selector is the predictable one.
        super().__init__(selectors.SelectSelector())
        self._vtime = 0.0

    def time(self) -> float:
        return self._vtime

    def _run_once(self) -> None:
        # Drop cancelled timers first so the jump target is live.
        while self._scheduled and self._scheduled[0]._cancelled:
            handle = heapq.heappop(self._scheduled)
            handle._scheduled = False
        if not self._ready:
            if self._scheduled:
                when = self._scheduled[0]._when
                if when > self._vtime:
                    self._vtime = when
            elif not self._stopping:
                raise RuntimeError(
                    "virtual-time deadlock: tasks pending but no callback "
                    "is ready and no timer is scheduled"
                )
        super()._run_once()


def run_virtual(coro: Awaitable[T]) -> T:
    """Run ``coro`` to completion on a fresh :class:`VirtualTimeLoop`."""
    loop = VirtualTimeLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        asyncio.set_event_loop(None)
        loop.close()


# ---------------------------------------------------------------------------
# Control-plane service
# ---------------------------------------------------------------------------

@dataclass
class AssignmentProposal:
    """A tentative job→hosts mapping awaiting an admission decision."""

    proposal_id: int
    job_id: str
    tenant: str
    hosts: List[str]
    state: str = "proposed"  # proposed | committed | aborted


class ControlPlane:
    """Peer registry + gossip + proposals + atomic tenant admission.

    The service owns a :class:`~repro.overlay.gossip.GossipView` fed by
    peer heartbeats (each stamped with a fresh per-origin sequence
    number) and reaped by a background staleness sweep.  Admission for
    one job walks the online candidates in deterministic latency order,
    sleeping one virtual RTT per host before pinning its ``J`` slot via
    ``Gatekeeper.try_admit`` — so thousands of concurrent submitters
    interleave arbitrarily between any two pins, and the J-limit
    invariant rests *only* on ``try_admit`` being atomic.

    All registry mutation happens under one :class:`asyncio.Lock`
    (created lazily inside the running loop, as required on 3.10).
    """

    def __init__(
        self,
        topology: Topology,
        gatekeepers: Dict[str, Gatekeeper],
        anchor: str,
        stale_after_s: float = 240.0,
    ) -> None:
        self.topology = topology
        self.gatekeepers = gatekeepers
        self.anchor = anchor
        self.stale_after_s = stale_after_s
        self.view = GossipView(owner="controlplane")
        self._lock: Optional[asyncio.Lock] = None
        self._seqs: Dict[str, int] = {}
        self._envelope_seq = 0
        self._proposals: Dict[int, AssignmentProposal] = {}
        self._next_proposal = 0
        self.reaped: List[str] = []
        # Candidate order is fixed at construction: ascending base RTT
        # from the anchor, name-tiebroken — deterministic and identical
        # for every submitter, like a shared latency-sorted peer cache.
        anchor_host = topology.host(anchor)
        self._candidates: List[Host] = sorted(
            (topology.host(n) for n in gatekeepers),
            key=lambda h: (topology.base_rtt_ms(anchor_host, h), h.name),
        )
        self._rtt_s = {
            h.name: topology.base_rtt_ms(anchor_host, h) / 1000.0
            for h in self._candidates
        }

    @property
    def lock(self) -> asyncio.Lock:
        if self._lock is None:
            self._lock = asyncio.Lock()
        return self._lock

    def _next_seq(self, origin: str) -> int:
        self._seqs[origin] = self._seqs.get(origin, 0) + 1
        return self._seqs[origin]

    # -- registry / gossip -------------------------------------------------
    async def register_peer(self, name: str) -> PeerDigest:
        """Admit a peer into the registry (the REGISTER analogue)."""
        async with self.lock:
            digest = PeerDigest(
                name=name, seq=self._next_seq(name), status="online",
                load=0, last_seen=asyncio.get_running_loop().time(),
            )
            self.view.apply_digest(digest)
            return digest

    async def heartbeat(self, name: str) -> PeerDigest:
        """Refresh a peer's liveness and load (the ALIVE analogue)."""
        gk = self.gatekeepers.get(name)
        async with self.lock:
            digest = PeerDigest(
                name=name, seq=self._next_seq(name), status="online",
                load=gk.busy_processes if gk is not None else 0,
                last_seen=asyncio.get_running_loop().time(),
            )
            self.view.apply_digest(digest)
            return digest

    def make_envelope(self) -> GossipEnvelope:
        """Snapshot the view for propagation to another view."""
        self._envelope_seq += 1
        return GossipEnvelope(
            origin=self.view.owner, seq=self._envelope_seq,
            entries=self.view.digest(),
        )

    async def apply_gossip(self, envelope: GossipEnvelope) -> int:
        """Fold a remote envelope into the registry; digests applied."""
        async with self.lock:
            return self.view.apply(envelope)

    async def heartbeat_pump(self, period_s: float) -> None:
        """Background task: every peer heartbeats once per period."""
        while True:
            await asyncio.sleep(period_s)
            for name in sorted(self.gatekeepers):
                await self.heartbeat(name)

    async def reaper(self, period_s: float) -> None:
        """Background task: mark silent peers suspect (staleness sweep)."""
        while True:
            await asyncio.sleep(period_s)
            now = asyncio.get_running_loop().time()
            async with self.lock:
                for digest in self.view.digest():
                    if (digest.status == "online"
                            and now - digest.last_seen > self.stale_after_s):
                        self.view.apply_digest(PeerDigest(
                            name=digest.name, seq=self._next_seq(digest.name),
                            status="suspect", load=digest.load,
                            last_seen=digest.last_seen,
                        ))
                        self.reaped.append(digest.name)

    # -- proposals ---------------------------------------------------------
    def propose(self, job_id: str, tenant: str,
                hosts: Sequence[str]) -> AssignmentProposal:
        self._next_proposal += 1
        prop = AssignmentProposal(
            proposal_id=self._next_proposal, job_id=job_id,
            tenant=tenant, hosts=list(hosts),
        )
        self._proposals[prop.proposal_id] = prop
        return prop

    def decide(self, proposal_id: int, accept: bool) -> AssignmentProposal:
        prop = self._proposals[proposal_id]
        prop.state = "committed" if accept else "aborted"
        return prop

    def proposals(self, state: Optional[str] = None
                  ) -> List[AssignmentProposal]:
        props = sorted(self._proposals.values(),
                       key=lambda p: p.proposal_id)
        if state is None:
            return props
        return [p for p in props if p.state == state]

    # -- admission ---------------------------------------------------------
    async def admit_job(
        self,
        tenant: str,
        job_id: str,
        n: int,
        strategy,
    ) -> Optional[AllocationPlan]:
        """Reserve, allocate and start one job; None if refused.

        The §4.2 flow under concurrency: walk the candidates in latency
        order, pay one virtual RTT per RESERVE, pin each ``J`` slot with
        the *atomic* ``try_admit``, stop once ``n*r`` hosts are booked
        (the paper's broadcast width — the strategy then chooses among
        them and unused bookings are cancelled).  Everything between two
        pins is a suspension point where any other submitter may run.
        """
        key = f"{tenant}/{job_id}"
        online = set(self.view.online())
        reserved: List[ReservedHost] = []
        capacity = 0
        for host in self._candidates:
            if host.name not in online:
                continue
            await asyncio.sleep(self._rtt_s[host.name])
            gk = self.gatekeepers[host.name]
            if not gk.try_admit(key, tenant):
                continue
            reserved.append(ReservedHost(
                host=host, p_limit=gk.prefs.p_limit,
                latency_ms=self.topology.base_rtt_ms(
                    self.topology.host(self.anchor), host),
            ))
            capacity += min(gk.prefs.p_limit, n)
            if len(reserved) >= n:
                break
        prop = self.propose(job_id, tenant, [r.host.name for r in reserved])
        if capacity < n:
            self._release(key, reserved)
            self.decide(prop.proposal_id, accept=False)
            return None
        try:
            plan = build_plan(strategy, reserved, n, 1)
        except AllocationError:
            self._release(key, reserved)
            self.decide(prop.proposal_id, accept=False)
            return None
        for cancelled in plan.cancelled:
            self.gatekeepers[cancelled.host.name].release_hold(key)
        try:
            for res, used in zip(plan.slist, plan.usage):
                if used > 0:
                    self.gatekeepers[res.host.name].start_application(
                        key, job_id, used)
        except AdmissionError:
            # Roll back whatever started plus the still-held remainder.
            for res, used in zip(plan.slist, plan.usage):
                gk = self.gatekeepers[res.host.name]
                if job_id in gk.running:
                    gk.end_application(job_id)
                gk.release_hold(key)
            self.decide(prop.proposal_id, accept=False)
            return None
        self.decide(prop.proposal_id, accept=True)
        return plan

    def _release(self, key: str, reserved: Sequence[ReservedHost]) -> None:
        for res in reserved:
            self.gatekeepers[res.host.name].release_hold(key)

    def finish_job(self, job_id: str, plan: AllocationPlan) -> None:
        for res, used in zip(plan.slist, plan.usage):
            if used > 0:
                self.gatekeepers[res.host.name].end_application(job_id)


# ---------------------------------------------------------------------------
# Open-loop multi-tenant round
# ---------------------------------------------------------------------------

@dataclass
class TenantStats:
    """Fairness ledger for one tenant."""

    tenant: str
    arrivals: int = 0
    admitted: int = 0
    refused: int = 0
    slowdowns: List[float] = field(default_factory=list)
    admit_latency_s: List[float] = field(default_factory=list)

    @property
    def mean_slowdown(self) -> float:
        if not self.slowdowns:
            return 0.0
        return sum(self.slowdowns) / len(self.slowdowns)


def _percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of pre-sorted ``values`` (0 if empty)."""
    if not values:
        return 0.0
    k = max(0, math.ceil(pct / 100.0 * len(values)) - 1)
    return values[min(k, len(values) - 1)]


async def _one_job(
    cp: ControlPlane,
    stats: TenantStats,
    job_id: str,
    n: int,
    work_s: float,
    wan_penalty: float,
    strategy,
) -> None:
    loop = asyncio.get_running_loop()
    arrival = loop.time()
    stats.arrivals += 1
    plan = await cp.admit_job(stats.tenant, job_id, n, strategy)
    if plan is None:
        stats.refused += 1
        return
    stats.admitted += 1
    stats.admit_latency_s.append(loop.time() - arrival)
    # Service-time model: a site-spanning placement pays a WAN penalty
    # per extra site crossed — the fairness lever that separates
    # `spread` from `bandwidth_spread` in the multiuser2 report.
    sites = len({p.host.site for p in plan.placements})
    service = work_s * (1.0 + wan_penalty * (sites - 1))
    await asyncio.sleep(service)
    cp.finish_job(job_id, plan)
    stats.slowdowns.append((loop.time() - arrival) / work_s)


async def _tenant_submitter(
    cp: ControlPlane,
    stats: TenantStats,
    rng: random.Random,
    rate_hz: float,
    jobs: int,
    n: int,
    work_s: float,
    wan_penalty: float,
    strategy,
) -> None:
    """Open-loop Poisson submitter: arrivals never wait for service."""
    pending = []
    for j in range(jobs):
        await asyncio.sleep(rng.expovariate(rate_hz))
        work = work_s * rng.uniform(0.5, 1.5)
        pending.append(asyncio.ensure_future(_one_job(
            cp, stats, f"{stats.tenant}#{j}", n, work, wan_penalty,
            strategy,
        )))
    if pending:
        await asyncio.gather(*pending)


async def _campaign(
    topology: Topology,
    gatekeepers: Dict[str, Gatekeeper],
    anchor: str,
    *,
    tenants: int,
    rate_hz: float,
    jobs_per_tenant: int,
    n: int,
    strategy_name: str,
    seed: int,
    work_s: float,
    wan_penalty: float,
    heartbeat_period_s: float,
) -> Dict[str, object]:
    cp = ControlPlane(topology, gatekeepers, anchor)
    for name in sorted(gatekeepers):
        await cp.register_peer(name)
    background = [
        asyncio.ensure_future(cp.heartbeat_pump(heartbeat_period_s)),
        asyncio.ensure_future(cp.reaper(4 * heartbeat_period_s)),
    ]
    strategy = get_strategy(strategy_name)
    strategy.bind_topology(topology)

    ledgers = [TenantStats(tenant=f"tenant-{i:04d}") for i in range(tenants)]
    tasks = [
        asyncio.ensure_future(_tenant_submitter(
            cp, stats,
            random.Random(stable_hash64(f"mu2:{seed}:{stats.tenant}")),
            rate_hz, jobs_per_tenant, n, work_s, wan_penalty, strategy,
        ))
        for stats in ledgers
    ]
    await asyncio.gather(*tasks)
    makespan = asyncio.get_running_loop().time()
    for task in background:
        task.cancel()
    await asyncio.gather(*background, return_exceptions=True)

    # One gossip exchange exercises envelope-level propagation/dedup.
    replica = GossipView(owner="replica")
    envelope = cp.make_envelope()
    replica.apply(envelope)
    replica.apply(envelope)  # duplicate delivery must be dropped

    slowdowns = sorted(s for st in ledgers for s in st.slowdowns)
    admits = sorted(a for st in ledgers for a in st.admit_latency_s)
    means = [st.mean_slowdown for st in ledgers if st.slowdowns]
    arrivals = sum(st.arrivals for st in ledgers)
    admitted = sum(st.admitted for st in ledgers)
    refused = sum(st.refused for st in ledgers)
    in_flight = {
        name: gk.applications_in_flight for name, gk in gatekeepers.items()
        if gk.applications_in_flight
    }
    return {
        "tenants": tenants,
        "rate_hz": rate_hz,
        "strategy": strategy_name,
        "arrivals": arrivals,
        "admitted": admitted,
        "refused": refused,
        "saturation": round(refused / arrivals, 6) if arrivals else 0.0,
        "slowdown_mean": round(
            sum(slowdowns) / len(slowdowns), 6) if slowdowns else 0.0,
        "slowdown_p95": round(_percentile(slowdowns, 95.0), 6),
        "tenant_slowdown_spread": round(
            max(means) - min(means), 6) if means else 0.0,
        "admit_p50_ms": round(_percentile(admits, 50.0) * 1000, 6),
        "admit_p95_ms": round(_percentile(admits, 95.0) * 1000, 6),
        "admit_p99_ms": round(_percentile(admits, 99.0) * 1000, 6),
        "makespan_s": round(makespan, 6),
        "throughput_hz": round(
            admitted / makespan, 6) if makespan > 0 else 0.0,
        "gossip_applied": cp.view.applied,
        "gossip_stale_dropped": replica.stale,
        "proposals_committed": len(cp.proposals("committed")),
        "proposals_aborted": len(cp.proposals("aborted")),
        "leaked_holds": sum(len(gk.held) for gk in gatekeepers.values()),
        "stuck_in_flight": in_flight,
    }


def run_multi_tenant(
    topology: Topology,
    gatekeepers: Dict[str, Gatekeeper],
    anchor: str,
    *,
    tenants: int,
    rate_hz: float,
    jobs_per_tenant: int = 2,
    n: int = 4,
    strategy_name: str = "spread",
    seed: int = 0,
    work_s: float = 20.0,
    wan_penalty: float = 0.25,
    heartbeat_period_s: float = 30.0,
) -> Dict[str, object]:
    """Run one open-loop multi-tenant round on virtual time.

    Returns the fairness ledger as a plain, deterministically ordered
    dict (all floats rounded) — the payload the ``multiuser2`` campaign
    cells store.
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be > 0")
    return run_virtual(_campaign(
        topology, gatekeepers, anchor,
        tenants=tenants, rate_hz=rate_hz, jobs_per_tenant=jobs_per_tenant,
        n=n, strategy_name=strategy_name, seed=seed, work_s=work_s,
        wan_penalty=wan_penalty, heartbeat_period_s=heartbeat_period_s,
    ))
