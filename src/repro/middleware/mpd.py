"""The MPD daemon: job coordination over the overlay (§4.2, Figure 1).

One MPD runs per host.  It composes the overlay membership daemon
(:class:`~repro.overlay.peer.PeerDaemon`), the co-located Reservation
Service and the gatekeeper.  :meth:`MPD.submit_job` is the submitter
side of Figure 1 (steps 1-6 plus completion tracking);
:meth:`MPD.service` is the remote side (steps 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.alloc.base import InfeasibleAllocation, ReservedHost
from repro.alloc.base import get_strategy
from repro.alloc.ranks import build_plan
from repro.middleware.config import MiddlewareConfig, OwnerPrefs
from repro.middleware.gatekeeper import AdmissionError, Gatekeeper
from repro.middleware.jobs import (
    JobRequest,
    JobResult,
    JobStatus,
    JobTimings,
)
from repro.middleware.keys import KeyFactory
from repro.middleware.reservation import Reservation, ReservationService
from repro.net.latency import LatencyModel
from repro.net.topology import Host, Topology
from repro.net.transport import Message, Network
from repro.overlay.messages import MPD_PORT, RS_PORT, SIZE_CONTROL, Ports
from repro.overlay.peer import PeerDaemon
from repro.sim.core import Simulator
from repro.sim.process import Interrupt

__all__ = ["CopyRuntime", "MPD"]


@dataclass
class CopyRuntime:
    """MPD-side runtime state of one migratable (rank, replica) copy.

    A migratable copy executes in ``quantum_s`` slices; each slice
    boundary is a checkpoint, so :attr:`checkpointed_s` is the durable
    remaining-work figure a crash resurrection restarts from, while
    :attr:`work_remaining_s` is the live figure a *cooperative*
    migration (the copy is frozen on request, not lost) carries over
    exactly.
    """

    job_id: str
    rank: int
    replica: int
    submitter: str
    done_port: str
    work_total_s: float
    work_remaining_s: float
    checkpointed_s: float
    quantum_s: float
    checkpoint_bytes: int
    deadline_factor: float
    migrations: int = 0
    #: ``running`` | ``migrating`` | ``done`` | ``dead``.
    status: str = "running"
    proc: Any = None

    def snapshot(self, durable: bool) -> Dict[str, Any]:
        """Portable checkpoint image (what travels between MPDs)."""
        return {
            "job_id": self.job_id,
            "rank": self.rank,
            "replica": self.replica,
            "submitter": self.submitter,
            "done_port": self.done_port,
            "work_total_s": self.work_total_s,
            "remaining_s": self.checkpointed_s if durable
                           else self.work_remaining_s,
            "quantum_s": self.quantum_s,
            "checkpoint_bytes": self.checkpoint_bytes,
            "deadline_factor": self.deadline_factor,
            "migrations": self.migrations,
        }


class MPD:
    """One host's MPD: membership + gatekeeping + job coordination.

    Parameters
    ----------
    sim, network, topology:
        Simulation substrate.
    host:
        Local host.
    supernode_host:
        Boot-strap entry point.
    latency_model:
        Shared measured-latency model.
    prefs:
        Owner preferences (``J``, ``P``, denied list).
    config:
        Middleware tuning.
    app_env:
        Environment object handed to application models when
        predicting rank durations (see :mod:`repro.apps.base`).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        host: Host,
        supernode_host: str,
        latency_model: LatencyModel,
        prefs: Optional[OwnerPrefs] = None,
        config: Optional[MiddlewareConfig] = None,
        app_env: Any = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.topology = topology
        self.host = host
        self.config = config or MiddlewareConfig()
        self.prefs = prefs or OwnerPrefs.for_cores(host.cores)
        self.app_env = app_env
        self.peer = PeerDaemon(
            sim, network, topology, host, supernode_host, latency_model,
            alive_period_s=self.config.alive_period_s,
            ping_samples=self.config.ping_samples,
            ewma_alpha=self.config.ewma_alpha,
        )
        self.gatekeeper = Gatekeeper(host_name=host.name, prefs=self.prefs)
        self.rs = ReservationService(
            sim, network, host.name, self.gatekeeper,
            ttl_s=self.config.reservation_ttl_s,
        )
        self.keys = KeyFactory(host.name, seed=sim.rng.seed)
        self._job_seq = count(1)
        self._job_procs: Dict[str, List] = {}
        self._submitting = False
        #: Completed job results (submitter side), job_id -> JobResult.
        self.results: Dict[str, JobResult] = {}
        #: Live migratable copies, (job_id, rank, replica) -> CopyRuntime.
        self._copies: Dict[Tuple[str, int, int], CopyRuntime] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def boot(self) -> Generator:
        """``mpiboot``: join overlay, start RS and MPD services."""
        self.network.register(self.host.name)
        yield from self.peer.boot()
        # The local host takes part in its own allocations like any peer.
        self.peer.cache.add(self.host)
        self.sim.process(self.rs.service())
        self.sim.process(self.service())
        if self.config.ping_period_s is not None:
            self.sim.process(
                self.peer.periodic_ping(self.config.ping_period_s))
        return self

    def on_host_down(self) -> None:
        """Failure hook: interrupt everything running locally.

        A crash also loses the middleware's volatile state: reservations
        the RS was holding (booked but not yet started) are gone when
        the node reboots, so the gatekeeper's ``J`` slots they pinned
        are released immediately rather than leaking until TTL expiry.
        Running applications clean their own slots up when their
        processes take the interrupt.
        """
        for procs in self._job_procs.values():
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("host down")
        # Migratable copies die with the host; only checkpoints that
        # already left (a controller's shadow table) can revive them.
        for copy in list(self._copies.values()):
            if copy.proc is not None and copy.proc.is_alive:
                copy.proc.interrupt("host down")
        self._copies.clear()
        for key in [k for k, r in self.rs.reservations.items()
                    if not r.consumed]:
            self.rs.cancel(key)

    def on_host_up(self) -> None:
        """Revival hook: rejoin the overlay with a fresh registration.

        The supernode dropped this host (missed alive signals or a
        submitter's REPORT_DEAD), so future bookings would never see it
        again without a re-register — exactly what a restarted
        ``mpiboot`` does, including the periodic ping loop (which, like
        the alive loop, died with the host).
        """
        def restart() -> Generator:
            yield from self.peer.rejoin()
            if self.config.ping_period_s is not None:
                self.sim.process(
                    self.peer.periodic_ping(self.config.ping_period_s))

        self.sim.process(restart())

    # ------------------------------------------------------------------
    # remote side: steps 7-8
    # ------------------------------------------------------------------
    def service(self) -> Generator:
        """Handle START/ABORT traffic on the MPD port forever."""
        while True:
            msg: Message = yield self.network.receive(self.host.name, MPD_PORT)
            if msg.kind == "START":
                self._handle_start(msg)
            elif msg.kind == "ABORT":
                self._handle_abort(msg)

    def _handle_start(self, msg: Message) -> None:
        payload = msg.payload
        key: str = payload["key"]
        job_id: str = payload["job_id"]
        assignments: List[Tuple[int, int, float]] = payload["assignments"]
        # Step 7: "The remote MPD verifies that the unique key matches
        # the one its RS holds for current reservation."
        if not self.rs.holds_key(key):
            self.network.send(
                self.host.name, msg.src, port=payload["reply_port"],
                kind="START_REFUSED", payload={"job_id": job_id,
                                               "reason": "unknown key"},
                size_bytes=SIZE_CONTROL,
            )
            return
        try:
            self.rs.consume(key)
            self.gatekeeper.start_application(key, job_id, len(assignments))
        except AdmissionError as exc:
            # A refused start must also release the J slot the booking
            # pinned: rs.finish() forgets the (consumed) reservation, so
            # nothing else — not even TTL expiry — would ever free the
            # held key, and the slot would leak for the host's lifetime.
            self.gatekeeper.release_hold(key)
            self.rs.finish(key)
            self.network.send(
                self.host.name, msg.src, port=payload["reply_port"],
                kind="START_REFUSED", payload={"job_id": job_id,
                                               "reason": str(exc)},
                size_bytes=SIZE_CONTROL,
            )
            return
        # Step 8: launch.
        runner = self.sim.process(
            self._run_application(
                job_id=job_id, key=key, assignments=assignments,
                submitter=msg.src, done_port=payload["done_port"],
                app_info=payload.get("app_info"),
            )
        )
        self._job_procs.setdefault(job_id, []).append(runner)
        self.network.send(
            self.host.name, msg.src, port=payload["reply_port"],
            kind="STARTED", payload={"job_id": job_id,
                                     "n_local": len(assignments)},
            size_bytes=SIZE_CONTROL,
        )

    def _handle_abort(self, msg: Message) -> None:
        job_id = msg.payload["job_id"]
        for proc in self._job_procs.get(job_id, []):
            if proc.is_alive:
                proc.interrupt("abort")

    def _run_application(
        self,
        job_id: str,
        key: str,
        assignments: List[Tuple[int, int, float]],
        submitter: str,
        done_port: str,
        app_info: Optional[Dict[str, Any]] = None,
    ) -> Generator:
        """Run the local process copies of one application.

        With ``app_info`` (a migratable application) every copy runs as
        a checkpointing :class:`CopyRuntime`; a copy that migrates away
        ends its local process with ``"migrated"``, so the application
        — and the ``J`` slot it pins — ends once the last copy has
        either finished or left, which is the reservation hand-off.
        """
        if app_info is not None:
            procs = []
            for rank, replica, duration in assignments:
                copy = CopyRuntime(
                    job_id=job_id, rank=rank, replica=replica,
                    submitter=submitter, done_port=done_port,
                    work_total_s=duration, work_remaining_s=duration,
                    checkpointed_s=duration,
                    quantum_s=float(app_info["quantum_s"]),
                    checkpoint_bytes=int(app_info["checkpoint_bytes"]),
                    deadline_factor=float(app_info["deadline_factor"]),
                )
                copy.proc = self.sim.process(self._run_copy(copy))
                self._copies[(job_id, rank, replica)] = copy
                procs.append(copy.proc)
        else:
            procs = [
                self.sim.process(
                    self._run_process(rank, replica, duration, submitter,
                                      done_port)
                )
                for rank, replica, duration in assignments
            ]
        self._job_procs.setdefault(job_id, []).extend(procs)
        aborted = False
        try:
            yield self.sim.all_of(procs)
        except Interrupt:
            aborted = True
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("abort")
        try:
            self.gatekeeper.end_application(job_id)
        except AdmissionError:  # pragma: no cover - double-end race
            pass
        self.rs.finish(key)
        self._job_procs.pop(job_id, None)
        return not aborted

    def _run_process(
        self,
        rank: int,
        replica: int,
        duration: float,
        submitter: str,
        done_port: str,
    ) -> Generator:
        """One MPI process copy: modelled execution, then DONE."""
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
            else:
                yield self.sim.timeout(0.0)
        except Interrupt:
            return False
        self.network.send(
            self.host.name, submitter, port=done_port, kind="DONE",
            payload={"rank": rank, "replica": replica,
                     "hostname": self.host.name,
                     "duration": duration},
            size_bytes=SIZE_CONTROL,
        )
        return True

    # ------------------------------------------------------------------
    # migratable copies (rank migration)
    # ------------------------------------------------------------------
    def _progress_rate(self) -> float:
        """Per-copy progress rate under the current local load.

        Cores are shared equally among running migratable copies: with
        more copies than cores every copy slows down proportionally —
        the load signal diffusive rebalancing exists to flatten.
        """
        active = sum(1 for c in self._copies.values()
                     if c.status == "running")
        return min(1.0, self.host.cores / max(1, active))

    def _run_copy(self, copy: CopyRuntime) -> Generator:
        """One migratable process copy: quantum loop with checkpoints.

        The copy burns its remaining work in ``quantum_s`` slices whose
        wall-clock length depends on the instantaneous local load; each
        completed slice is a checkpoint boundary.  An interrupt with
        cause ``"migrate"`` freezes the copy cooperatively (precise
        remaining work survives); any other interrupt kills it, losing
        progress past the last boundary.
        """
        key3 = (copy.job_id, copy.rank, copy.replica)
        copy.status = "running"
        while copy.work_remaining_s > 1e-9:
            rate = self._progress_rate()
            quantum_work = min(copy.quantum_s, copy.work_remaining_s)
            started = self.sim.now
            try:
                yield self.sim.timeout(quantum_work / rate)
            except Interrupt as exc:
                done_work = (self.sim.now - started) * rate
                copy.work_remaining_s = max(
                    0.0, copy.work_remaining_s - done_work)
                if getattr(exc, "cause", None) == "migrate":
                    copy.status = "migrating"
                    return "migrated"
                copy.status = "dead"
                self._copies.pop(key3, None)
                return False
            copy.work_remaining_s = max(
                0.0, copy.work_remaining_s - quantum_work)
            copy.checkpointed_s = copy.work_remaining_s
        copy.status = "done"
        self._copies.pop(key3, None)
        self.network.send(
            self.host.name, copy.submitter, port=copy.done_port, kind="DONE",
            payload={"rank": copy.rank, "replica": copy.replica,
                     "hostname": self.host.name,
                     "duration": copy.work_total_s,
                     "event": "done",
                     "migrations": copy.migrations},
            size_bytes=SIZE_CONTROL,
        )
        return True

    def running_copies(self) -> List[Tuple[str, int, int]]:
        """Keys of locally running migratable copies (sorted)."""
        return sorted(key3 for key3, copy in self._copies.items()
                      if copy.status == "running")

    def copy_snapshots(self) -> List[Dict[str, Any]]:
        """Durable checkpoint images of all running copies (sorted).

        What a controller mirrors into its shadow table each tick so a
        host crash does not take the last checkpoint down with it.
        """
        return [self._copies[key3].snapshot(durable=True)
                for key3 in self.running_copies()]

    def can_adopt(self, job_id: str, submitter: str) -> bool:
        """Read-only probe: would :meth:`adopt_copy` be admitted here?"""
        if self.network.is_down(self.host.name):
            return False
        if job_id in self.gatekeeper.running:
            return True
        return (self.gatekeeper.prefs.allows(submitter)
                and self.gatekeeper.applications_in_flight
                < self.gatekeeper.prefs.j_limit)

    def migrate_copy_out(self, job_id: str, rank: int,
                         replica: int) -> Generator:
        """Freeze one running copy and hand back its checkpoint image.

        Returns ``None`` if the copy is gone or finishes before the
        freeze lands (the interrupt races a quantum boundary).  On
        success the copy leaves :attr:`_copies`; once the job's last
        local copy has left, ``_run_application`` ends the application
        and releases the ``J`` slot — the source half of the
        reservation hand-off.
        """
        key3 = (job_id, rank, replica)
        copy = self._copies.get(key3)
        if (copy is None or copy.status != "running"
                or copy.proc is None or not copy.proc.is_alive):
            return None
        copy.proc.interrupt("migrate")
        yield copy.proc
        if copy.status != "migrating":
            return None
        self._copies.pop(key3, None)
        return copy.snapshot(durable=False)

    def adopt_copy(self, snap: Dict[str, Any], event: str = "migrated") -> bool:
        """Admit and run a checkpointed copy on this host.

        The destination half of the reservation hand-off: if the copy's
        job already runs here it joins the existing ``J`` slot
        (:meth:`Gatekeeper.adopt_process`); otherwise the copy is
        admitted like a fresh one-process application under a synthetic
        migration key, with a pre-consumed :class:`Reservation` recorded
        so the RS retires it through the normal ``finish`` path.  On
        success a MIGRATED/REJOINED notice goes to the submitter's done
        port so the completion deadline stretches to cover the move.
        """
        job_id = snap["job_id"]
        submitter = snap["submitter"]
        key3 = (job_id, snap["rank"], snap["replica"])
        if self.network.is_down(self.host.name) or key3 in self._copies:
            return False
        if job_id in self.gatekeeper.running:
            mode, mig_key, app_key = "joined", None, job_id
            self.gatekeeper.adopt_process(job_id)
        else:
            tag = f"{snap['rank']}.{snap['replica']}.{snap['migrations']}"
            mig_key = f"mig:{job_id}:{tag}"
            app_key = f"{job_id}/mig:{tag}"
            if not self.gatekeeper.try_admit(mig_key, submitter):
                return False
            try:
                self.gatekeeper.start_application(mig_key, app_key, 1)
            except AdmissionError:
                self.gatekeeper.release_hold(mig_key)
                return False
            self.rs.reservations[mig_key] = Reservation(
                key=mig_key, job_id=job_id, submitter=submitter,
                made_at=self.sim.now,
                expires_at=self.sim.now + self.rs.ttl_s,
                consumed=True,
            )
            mode = "admitted"
        copy = CopyRuntime(
            job_id=job_id, rank=snap["rank"], replica=snap["replica"],
            submitter=submitter, done_port=snap["done_port"],
            work_total_s=snap["work_total_s"],
            work_remaining_s=snap["remaining_s"],
            checkpointed_s=snap["remaining_s"],
            quantum_s=snap["quantum_s"],
            checkpoint_bytes=snap["checkpoint_bytes"],
            deadline_factor=snap["deadline_factor"],
            migrations=snap["migrations"] + 1,
        )
        copy.proc = self.sim.process(self._run_copy(copy))
        self._copies[key3] = copy
        self.sim.process(self._adopted_waiter(copy, mode, mig_key, app_key))
        self.network.send(
            self.host.name, submitter, port=copy.done_port, kind="MIGRATED",
            payload={"rank": copy.rank, "replica": copy.replica,
                     "hostname": self.host.name,
                     "event": event,
                     "remaining_s": copy.work_remaining_s,
                     "deadline_factor": copy.deadline_factor,
                     "migrations": copy.migrations},
            size_bytes=SIZE_CONTROL,
        )
        return True

    def _adopted_waiter(self, copy: CopyRuntime, mode: str,
                        mig_key: Optional[str], app_key: str) -> Generator:
        """Release an adopted copy's local accounting when it leaves
        (completion, onward migration or death)."""
        yield copy.proc
        try:
            if mode == "joined":
                self.gatekeeper.release_process(app_key)
            else:
                self.gatekeeper.end_application(app_key)
        except AdmissionError:
            # The hosting application ended first (its own copies all
            # finished) and took the slot with it.
            pass
        if mig_key is not None:
            self.rs.finish(mig_key)

    # ------------------------------------------------------------------
    # submitter side: steps 1-6 + completion
    # ------------------------------------------------------------------
    def submit_job(self, request: JobRequest) -> Generator:
        """Full submission coroutine; returns a :class:`JobResult`.

        Use ``sim.process(mpd.submit_job(req))`` and run the simulator,
        or the :class:`repro.cluster.P2PMPICluster` facade.
        """
        if self._submitting:
            raise RuntimeError(f"{self.host.name}: concurrent submissions "
                               "are not supported by one MPD")
        self._submitting = True
        dead_seen: List[str] = []
        refusals_seen: List[str] = []
        try:
            attempts = 1 + max(0, self.config.booking_retries)
            for attempt in range(1, attempts + 1):
                result = yield from self._submit_inner(request)
                result.attempts = attempt
                dead_seen.extend(result.dead_peers)
                refusals_seen.extend(result.refusals)
                if result.status is not JobStatus.INFEASIBLE or \
                        attempt == attempts:
                    break
                # Lost a booking race or a churn burst: back off and
                # try a fresh reservation round ("dynamically tries
                # during a limited time", §3.2).
                yield self.sim.timeout(self.config.retry_backoff_s)
        finally:
            self._submitting = False
        result.dead_peers = sorted(set(dead_seen))
        result.refusals = sorted(set(refusals_seen))
        self.results[result.job_id] = result
        return result

    def _submit_inner(self, request: JobRequest) -> Generator:
        sim = self.sim
        timings = JobTimings(submitted_at=sim.now)
        job_id = f"{self.host.name}#{next(self._job_seq)}"
        needed = request.total_processes
        result = JobResult(job_id=job_id, request=request,
                           status=JobStatus.INFEASIBLE, timings=timings)

        # -- Step 2: booking -------------------------------------------------
        # The MPD "periodically contacts its supernode to update its
        # cached list"; we model the freshest state by refreshing at
        # submission time (and unconditionally when the cache is short,
        # which is the paper's explicit trigger).
        yield from self.peer.refresh_cache()
        self.peer.cache.add(self.host)
        # Fresh latency round: the cached values are whatever the last
        # periodic ping measured; we model it as a measurement made
        # close to submission time.
        self.peer.measure_latencies(only_unmeasured=False)
        entries = self.peer.cache.sorted_by_latency()
        target = min(len(entries), self.config.booking_target(needed))
        book = entries[:target]

        key = self.keys.new_key(job_id)
        reply_port = Ports.rs_reply(key.value)

        # -- Step 3: RS-RS brokering ------------------------------------------
        self.rs.broadcast_reserve(
            [e.host.name for e in book], key.value, job_id, reply_port
        )

        # -- Step 5: gather replies, mark dead ---------------------------------
        oks: Dict[str, int] = {}
        refusals: List[str] = []
        pending = {e.host.name for e in book}
        deadline = sim.timeout(self.config.rs_timeout_s)
        while pending:
            recv = self.network.receive(self.host.name, reply_port)
            fired = yield sim.any_of([recv, deadline])
            if recv in fired:
                msg: Message = fired[recv]
                pending.discard(msg.src)
                if msg.kind == "RESERVE_OK":
                    oks[msg.src] = msg.payload["p_limit"]
                else:
                    refusals.append(msg.src)
            if deadline in fired and recv not in fired:
                break
        dead = sorted(pending)
        if dead:
            self.peer.report_dead(dead)
        timings.booked_at = sim.now
        result.dead_peers = dead
        result.refusals = refusals

        rlist = [
            ReservedHost(host=e.host, p_limit=oks[e.host.name],
                         latency_ms=e.latency_ms or 0.0)
            for e in book
            if e.host.name in oks
        ]

        # -- Step 6: selection, feasibility, strategy, ranks ---------------------
        slist = rlist[:needed]
        for extra in rlist[needed:]:
            self._cancel_reservation(extra.host.name, key.value)
        strategy_kwargs = dict(request.strategy_kwargs)
        if (request.strategy == "site-affine"
                and "local_hosts" not in strategy_kwargs):
            # The middleware knows the site boundary: count slist
            # entries co-located with the submitter.
            strategy_kwargs["local_hosts"] = sum(
                1 for reserved in slist
                if reserved.host.site == self.host.site
            )
        try:
            strategy = get_strategy(request.strategy, **strategy_kwargs)
            if strategy.needs_topology and strategy.topology is None:
                # Communication-aware strategies score host pairs; the
                # MPD shares its own network view with them.
                strategy.bind_topology(self.topology)
            plan = build_plan(strategy, slist, request.n, request.r)
        except (InfeasibleAllocation, KeyError) as exc:
            for reserved in slist:
                self._cancel_reservation(reserved.host.name, key.value)
            result.status = JobStatus.INFEASIBLE
            result.failure_reason = str(exc)
            timings.allocated_at = timings.launched_at = timings.finished_at = sim.now
            return result
        result.plan = plan
        timings.allocated_at = sim.now
        for cancelled in plan.cancelled:
            self._cancel_reservation(cancelled.host.name, key.value)

        # -- durations from the application model --------------------------------
        durations: Dict[Tuple[int, int], float] = {}
        if request.app is not None:
            durations = dict(request.app.predicted_rank_times(plan, self.app_env))

        by_host: Dict[str, List[Tuple[int, int, float]]] = {}
        for placement in plan.placements:
            by_host.setdefault(placement.host.name, []).append(
                (placement.rank, placement.replica,
                 float(durations.get((placement.rank, placement.replica), 0.0)))
            )

        # -- launch (steps 7-8 on the remote side) ---------------------------------
        app_info: Optional[Dict[str, Any]] = None
        if request.app is not None and getattr(request.app, "migratable",
                                               False):
            app_info = {
                "quantum_s": float(getattr(request.app, "quantum_s", 5.0)),
                "checkpoint_bytes": int(
                    getattr(request.app, "checkpoint_bytes", 1 << 20)),
                "deadline_factor": float(
                    getattr(request.app, "deadline_factor", 3.0)),
            }
        start_port = Ports.start_reply(job_id)
        done_port = Ports.done(job_id)
        for host_name, assignments in by_host.items():
            self.network.send(
                self.host.name, host_name, port=MPD_PORT, kind="START",
                payload={
                    "job_id": job_id,
                    "key": key.value,
                    "assignments": assignments,
                    "reply_port": start_port,
                    "done_port": done_port,
                    "app_info": app_info,
                },
                size_bytes=SIZE_CONTROL + 24 * len(assignments),
            )
        ack_pending = set(by_host)
        started: List[str] = []
        refused: List[str] = []
        start_deadline = sim.timeout(self.config.start_timeout_s)
        while ack_pending:
            recv = self.network.receive(self.host.name, start_port)
            fired = yield sim.any_of([recv, start_deadline])
            if recv in fired:
                msg = fired[recv]
                ack_pending.discard(msg.src)
                if msg.kind == "STARTED":
                    started.append(msg.src)
                else:
                    refused.append(msg.src)
            if start_deadline in fired and recv not in fired:
                break
        if ack_pending or refused:
            for host_name in started:
                self.network.send(
                    self.host.name, host_name, port=MPD_PORT, kind="ABORT",
                    payload={"job_id": job_id}, size_bytes=SIZE_CONTROL,
                )
            result.status = JobStatus.LAUNCH_FAILED
            result.failure_reason = (
                f"{len(refused)} refusals, {len(ack_pending)} silent hosts at start"
            )
            timings.launched_at = timings.finished_at = sim.now
            return result
        timings.launched_at = sim.now

        # -- completion tracking ----------------------------------------------------
        expected = plan.total_processes
        max_duration = max([d for _h, a in by_host.items() for _r, _c, d in a],
                           default=0.0)
        # Migratable copies can slow under load and pay transfer time on
        # every move, so their deadline is scaled — and re-armed from
        # the surviving work whenever a MIGRATED/REJOINED notice lands.
        deadline_factor = (float(app_info["deadline_factor"])
                           if app_info is not None else 1.0)
        done_deadline = sim.timeout(
            max_duration * deadline_factor + self.config.app_grace_s)
        completions: Dict[Tuple[int, int], Dict[str, Any]] = {}
        while len(completions) < expected:
            recv = self.network.receive(self.host.name, done_port)
            fired = yield sim.any_of([recv, done_deadline])
            if recv in fired:
                msg = fired[recv]
                payload = msg.payload
                if msg.kind == "MIGRATED":
                    result.migrations.append({
                        "rank": payload["rank"],
                        "replica": payload["replica"],
                        "host": payload["hostname"],
                        "event": payload["event"],
                        "remaining_s": payload["remaining_s"],
                        "at": sim.now,
                    })
                    done_deadline = sim.timeout(
                        payload["remaining_s"] * deadline_factor
                        + self.config.app_grace_s)
                else:
                    completions[(payload["rank"], payload["replica"])] = (
                        payload
                    )
            if done_deadline in fired and recv not in fired:
                break
        result.completions = completions
        timings.finished_at = sim.now

        covered = {rank for rank, _replica in completions}
        if len(completions) == expected:
            result.status = JobStatus.SUCCESS
        elif len(covered) == request.n:
            result.status = JobStatus.DEGRADED
            result.failure_reason = (
                f"{expected - len(completions)} replicas lost, all ranks covered"
            )
        else:
            missing = request.n - len(covered)
            result.status = JobStatus.RANKS_LOST
            result.failure_reason = f"{missing} ranks have no surviving replica"
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _cancel_reservation(self, host_name: str, key: str) -> None:
        self.network.send(
            self.host.name, host_name, port=RS_PORT, kind="CANCEL",
            payload={"key": key}, size_bytes=SIZE_CONTROL,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MPD {self.host.name}>"
