"""P2P-MPI middleware: MPD job coordination + Reservation Service.

Implements §4 of the paper: owner preferences (``J``/``P``/denied
lists), the unique-hash-key reservation protocol, overbooking, timeout
dead-marking, feasibility, strategy dispatch, rank distribution and the
key-checked launch.
"""

from repro.middleware.config import MiddlewareConfig, OwnerPrefs
from repro.middleware.keys import ReservationKey, KeyFactory
from repro.middleware.gatekeeper import AdmissionError, Gatekeeper
from repro.middleware.reservation import Reservation, ReservationService
from repro.middleware.jobs import JobRequest, JobResult, JobStatus, JobTimings
from repro.middleware.mpd import MPD

__all__ = [
    "MiddlewareConfig",
    "OwnerPrefs",
    "ReservationKey",
    "KeyFactory",
    "AdmissionError",
    "Gatekeeper",
    "Reservation",
    "ReservationService",
    "JobRequest",
    "JobResult",
    "JobStatus",
    "JobTimings",
    "MPD",
]
