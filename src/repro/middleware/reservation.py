"""The Reservation Service (RS), §3.2/§4.2.

One RS runs beside every MPD.  On the submitter side it performs the
RS→RS brokering (step 3); on the remote side it answers RESERVE
requests against the gatekeeper (step 4) and remembers the hash key so
the MPD can verify START requests (step 7).  Unused reservations expire
after a TTL so overbooked keys cannot starve the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.middleware.gatekeeper import Gatekeeper
from repro.net.transport import Message, Network
from repro.overlay.messages import RS_PORT, SIZE_CONTROL
from repro.sim.core import Simulator

__all__ = ["Reservation", "ReservationService"]


@dataclass
class Reservation:
    """A held booking on the remote side."""

    key: str
    job_id: str
    submitter: str
    made_at: float
    expires_at: float
    consumed: bool = False


class ReservationService:
    """RS for one host.

    Parameters
    ----------
    sim, network:
        Substrate.
    host_name:
        Local host.
    gatekeeper:
        The co-located admission policy.
    ttl_s:
        Reservation time-to-live.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_name: str,
        gatekeeper: Gatekeeper,
        ttl_s: float = 60.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host_name = host_name
        self.gatekeeper = gatekeeper
        self.ttl_s = ttl_s
        self.reservations: Dict[str, Reservation] = {}

    # -- remote side -----------------------------------------------------------
    def _expire(self) -> None:
        now = self.sim.now
        for key in [k for k, r in self.reservations.items()
                    if not r.consumed and r.expires_at <= now]:
            self.reservations.pop(key)
            self.gatekeeper.release_hold(key)

    def handle_reserve(self, msg: Message) -> None:
        """§4.2 step 4: accept or refuse a reservation request.

        Admission goes through the gatekeeper's atomic
        :meth:`~repro.middleware.gatekeeper.Gatekeeper.try_admit` — the
        policy check and the ``J``-slot pin are one indivisible step,
        so interleaved RESERVE traffic (concurrent submitters racing
        for the same host) can never overshoot the owner's limit the
        way the legacy ``can_accept`` + ``hold`` pair could.
        """
        self._expire()
        payload = msg.payload
        key: str = payload["key"]
        submitter: str = payload["submitter"]
        if self.gatekeeper.try_admit(key, submitter):
            self.reservations[key] = Reservation(
                key=key,
                job_id=payload["job_id"],
                submitter=submitter,
                made_at=self.sim.now,
                expires_at=self.sim.now + self.ttl_s,
            )
            self.network.send(
                self.host_name, msg.src, port=payload["reply_port"],
                kind="RESERVE_OK",
                payload={"p_limit": self.gatekeeper.prefs.p_limit},
                size_bytes=SIZE_CONTROL,
            )
        else:
            # try_admit counted the refusal in the gatekeeper ledger.
            self.network.send(
                self.host_name, msg.src, port=payload["reply_port"],
                kind="RESERVE_NOK", payload={"reason": "J exceeded or denied"},
                size_bytes=SIZE_CONTROL,
            )

    def handle_cancel(self, msg: Message) -> None:
        self.cancel(msg.payload["key"])

    def cancel(self, key: str) -> bool:
        res = self.reservations.pop(key, None)
        if res is not None and not res.consumed:
            self.gatekeeper.release_hold(key)
            return True
        return False

    # -- key verification (step 7) ------------------------------------------------
    def holds_key(self, key: str) -> bool:
        self._expire()
        res = self.reservations.get(key)
        return res is not None and not res.consumed

    def consume(self, key: str) -> Reservation:
        """Mark the reservation used by a START; returns it."""
        res = self.reservations[key]
        res.consumed = True
        return res

    def finish(self, key: str) -> None:
        """Forget a consumed reservation once its application ended."""
        self.reservations.pop(key, None)

    # -- service loop ----------------------------------------------------------------
    def service(self) -> Generator:
        """Process handling RS-port traffic forever."""
        while True:
            msg: Message = yield self.network.receive(self.host_name, RS_PORT)
            if msg.kind == "RESERVE":
                self.handle_reserve(msg)
            elif msg.kind == "CANCEL":
                self.handle_cancel(msg)
            # Unknown kinds ignored.

    # -- submitter-side brokering (step 3) ----------------------------------------------
    def broadcast_reserve(
        self,
        targets: List[str],
        key: str,
        job_id: str,
        reply_port: str,
    ) -> None:
        """Send RESERVE to every target RS with the unique hash key."""
        for target in targets:
            self.network.send(
                self.host_name, target, port=RS_PORT, kind="RESERVE",
                payload={
                    "key": key,
                    "job_id": job_id,
                    "submitter": self.host_name,
                    "reply_port": reply_port,
                },
                size_bytes=SIZE_CONTROL,
            )
