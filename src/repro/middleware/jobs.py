"""Job descriptions and results (the ``p2pmpirun`` surface).

A :class:`JobRequest` mirrors the paper's command line::

    p2pmpirun -n <n> -r <r> -a <alloc> prog

``prog`` becomes an optional application model object; without one the
job is a pure allocation probe (the paper's *hostname* experiment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from repro.alloc.base import AllocationPlan

__all__ = ["ApplicationModel", "JobRequest", "JobTimings", "JobStatus",
           "JobResult"]


@runtime_checkable
class ApplicationModel(Protocol):
    """What the middleware needs from an application model.

    Implementations live in :mod:`repro.apps`.
    """

    name: str

    def predicted_rank_times(self, plan: AllocationPlan, env: Any) -> Dict[tuple, float]:
        """Map ``(rank, replica) -> execution seconds`` for a plan."""
        ...


class JobStatus(enum.Enum):
    """Terminal states of a submission."""

    SUCCESS = "success"
    DEGRADED = "degraded"          # finished, but some replicas lost
    INFEASIBLE = "infeasible"      # §4.2 step 6 conditions failed
    LAUNCH_FAILED = "launch_failed"  # START acks missing/refused
    RANKS_LOST = "ranks_lost"      # some rank has no surviving replica


@dataclass(frozen=True)
class JobRequest:
    """One ``p2pmpirun`` invocation.

    Attributes
    ----------
    n:
        Number of MPI processes (mandatory ``-n``).
    r:
        Replication degree (``-r``, default 1 = no replication).
    strategy:
        Allocation strategy name (``-a``): ``spread``, ``concentrate``,
        ``block``...
    strategy_kwargs:
        Extra constructor arguments (e.g. ``{"block": 2}``).
    app:
        Optional application model; ``None`` = hostname probe.
    tag:
        Free-form label for experiment bookkeeping.
    """

    n: int
    r: int = 1
    strategy: str = "spread"
    strategy_kwargs: Dict[str, Any] = field(default_factory=dict)
    app: Optional[ApplicationModel] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.r < 1:
            raise ValueError("r must be >= 1")

    @property
    def total_processes(self) -> int:
        return self.n * self.r


@dataclass
class JobTimings:
    """Wall-clock (simulated) milestones of one submission."""

    submitted_at: float = 0.0
    booked_at: float = 0.0       # RESERVE replies gathered
    allocated_at: float = 0.0    # plan built
    launched_at: float = 0.0     # all STARTED acks in
    finished_at: float = 0.0     # job completion decided

    @property
    def reservation_s(self) -> float:
        return self.booked_at - self.submitted_at

    @property
    def launch_s(self) -> float:
        return self.launched_at - self.submitted_at

    @property
    def makespan_s(self) -> float:
        return self.finished_at - self.launched_at

    @property
    def total_s(self) -> float:
        return self.finished_at - self.submitted_at


@dataclass
class JobResult:
    """Outcome of one submission."""

    job_id: str
    request: JobRequest
    status: JobStatus
    plan: Optional[AllocationPlan] = None
    timings: JobTimings = field(default_factory=JobTimings)
    #: Peers marked dead during booking (no RESERVE reply).
    dead_peers: List[str] = field(default_factory=list)
    #: Hosts that answered RESERVE_NOK.
    refusals: List[str] = field(default_factory=list)
    #: (rank, replica) -> DONE payload for completed process copies.
    completions: Dict[tuple, Dict[str, Any]] = field(default_factory=dict)
    failure_reason: str = ""
    #: Booking rounds used (1 = first try; >1 = §3.2 retry kicked in).
    attempts: int = 1
    #: MIGRATED/REJOINED notices received while tracking completion —
    #: one dict per copy move (rank, replica, host, remaining work).
    migrations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in (JobStatus.SUCCESS, JobStatus.DEGRADED)

    @property
    def allocation(self) -> AllocationPlan:
        """The plan; raises if the job never got one."""
        if self.plan is None:
            raise RuntimeError(f"job {self.job_id} has no allocation "
                               f"({self.status.value}: {self.failure_reason})")
        return self.plan

    def hostnames(self) -> Dict[int, List[str]]:
        """rank -> hostnames that echoed DONE (the hostname probe)."""
        out: Dict[int, List[str]] = {}
        for (rank, _replica), payload in sorted(self.completions.items()):
            out.setdefault(rank, []).append(payload["hostname"])
        return out

    def summary(self) -> str:
        base = (f"job {self.job_id} [{self.request.strategy} n={self.request.n} "
                f"r={self.request.r}] -> {self.status.value}")
        if self.plan is not None:
            base += f" | {self.plan.summary()}"
        if self.failure_reason:
            base += f" | {self.failure_reason}"
        return base
