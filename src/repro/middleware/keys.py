"""Unique reservation hash keys (§4.2 steps 3 and 7).

The submitter's RS stamps every brokering round with a unique hash key;
remote MPDs later verify that a START request carries the key their own
RS holds, which prevents a stale or foreign launch from consuming a
reservation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import count

__all__ = ["ReservationKey", "KeyFactory"]


@dataclass(frozen=True)
class ReservationKey:
    """An unforgeable-enough token identifying one brokering round."""

    value: str
    job_id: str
    submitter: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value[:16]


class KeyFactory:
    """Deterministic key generator for one submitting MPD."""

    def __init__(self, submitter: str, seed: int = 0) -> None:
        self.submitter = submitter
        self.seed = seed
        self._counter = count(1)

    def new_key(self, job_id: str) -> ReservationKey:
        n = next(self._counter)
        digest = hashlib.sha256(
            f"{self.seed}:{self.submitter}:{job_id}:{n}".encode()
        ).hexdigest()
        return ReservationKey(value=digest, job_id=job_id,
                              submitter=self.submitter)
