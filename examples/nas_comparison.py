#!/usr/bin/env python
"""Strategy impact on applications (paper §5.2, Figure 4) — plus the
future-work extensions.

Reproduces the EP and IS class-B curves under spread and concentrate,
then goes beyond the paper: the CG-like workload where neither strategy
dominates, and the *block* mixed strategy sweeping the continuum
between the two published ones.

Run:  python examples/nas_comparison.py
"""

from repro import JobRequest, build_grid5000_cluster
from repro.apps import CGLikeBenchmark, EPBenchmark, ISBenchmark
from repro.experiments.applications import run_application_experiment
from repro.experiments.report import format_series_table


def main() -> None:
    cluster = build_grid5000_cluster(seed=42)

    print("Figure 4 left — NAS EP class B (seconds):")
    ep = run_application_experiment(EPBenchmark("B"),
                                    process_counts=(32, 64, 128, 256, 512),
                                    cluster=cluster)
    print(format_series_table(ep, title="EP-B n"))

    print("\nFigure 4 right — NAS IS class B (seconds):")
    is_ = run_application_experiment(ISBenchmark("B"),
                                     process_counts=(32, 64, 128),
                                     cluster=cluster)
    print(format_series_table(is_, title="IS-B n"))

    print("\nExtension — CG-like workload (halo exchange + dot products):")
    cg = run_application_experiment(CGLikeBenchmark("B"),
                                    process_counts=(32, 64, 128),
                                    cluster=cluster)
    print(format_series_table(cg, title="CG-B n"))

    print("\nExtension — block mixed strategy on IS-B at n=64")
    print("(block=1 is spread, block>=4 behaves like concentrate):")
    for block in (1, 2, 4):
        result = cluster.submit_and_run(JobRequest(
            n=64, strategy="block", strategy_kwargs={"block": block},
            app=ISBenchmark("B")))
        print(f"  block={block}: {result.timings.makespan_s:6.2f} s "
              f"on {len(result.allocation.used_hosts())} hosts")


if __name__ == "__main__":
    main()
