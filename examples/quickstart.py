#!/usr/bin/env python
"""Quickstart: boot the paper's Grid'5000 testbed and run jobs.

This mirrors the paper's command line

    p2pmpirun -n <n> -r <r> -a <alloc> prog

through the Python API: build the simulated federation (350 hosts at 6
sites, Table 1), submit co-allocation requests from nancy, and inspect
where the middleware put the processes.

Run:  python examples/quickstart.py
"""

from repro import JobRequest, build_grid5000_cluster


def main() -> None:
    print("Booting the simulated Grid'5000 federation "
          "(6 sites, 350 hosts, 1040 cores)...")
    cluster = build_grid5000_cluster(seed=7)
    print(cluster.topology.summary())

    # 1. The paper's hostname probe under both strategies.
    for strategy in ("concentrate", "spread"):
        result = cluster.submit_and_run(JobRequest(n=150, strategy=strategy))
        plan = result.allocation
        print(f"\np2pmpirun -n 150 -a {strategy} hostname "
              f"-> {result.status.value}")
        print(f"  hosts/site: {dict(sorted(plan.hosts_by_site().items()))}")
        print(f"  cores/site: {dict(sorted(plan.cores_by_site().items()))}")
        print(f"  reservation took {result.timings.reservation_s * 1e3:.1f} ms "
              f"(simulated), {len(result.dead_peers)} dead peers detected")

    # 2. Replication: -r 2 doubles every rank on distinct hosts.
    result = cluster.submit_and_run(JobRequest(n=40, r=2, strategy="spread"))
    plan = result.allocation
    rank0 = [p.host.name for p in plan.replicas_of_rank(0)]
    print(f"\np2pmpirun -n 40 -r 2 -> {result.status.value}; "
          f"rank 0 copies on {rank0}")

    # 3. A custom topology is one Topology object away.
    from repro.cluster import P2PMPICluster
    from repro.net.topology import Cluster, Site, Topology

    lab = Topology(
        sites=[
            Site("paris", (Cluster("pa", "paris", "X", 8, 16, 32),)),
            Site("lille", (Cluster("li", "lille", "X", 8, 8, 16),)),
        ],
        site_rtt_ms={("paris", "lille"): 4.2},
    )
    small = P2PMPICluster(lab, seed=1).boot()
    result = small.submit_and_run(JobRequest(n=12, strategy="concentrate"))
    print(f"\ncustom 2-site lab, concentrate n=12 -> "
          f"{dict(sorted(result.allocation.cores_by_site().items()))}")


if __name__ == "__main__":
    main()
