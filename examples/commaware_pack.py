#!/usr/bin/env python
"""Communication-aware strategies vs the paper's, on the fig2 grid.

Sweeps all six registered strategies (concentrate / spread / block and
the Bender-et-al-style bandwidth_spread / diameter_concentrate /
topo_block) over the §5.1 demand grid and prints the placement-quality
comparison: hosts used, sites touched, latency diameter and minimum
contended bandwidth of the allocation.  Watch bandwidth_spread hold
the 0.62 Gb/s floor through n=600 where the published strategies drop
to 0.06 Gb/s the moment they touch the bordeaux backbone.

Run:  python examples/commaware_pack.py [--fast]

(Equivalent CLI: ``p2pmpirun --experiment commaware --jobs 4``.)
"""

import sys

from repro.experiments.commaware import (
    commaware_report,
    run_commaware_campaign,
)


def main() -> None:
    fast = "--fast" in sys.argv
    demands = (100, 250, 400, 600) if fast else tuple(range(100, 601, 50))
    print(f"Sweeping {list(demands)} x 6 strategies "
          f"(full middleware per cell)...")
    campaign = run_commaware_campaign(
        seed=42, demands=demands,
        with_apps=not fast, with_latratio=not fast, jobs=4)
    print()
    print(commaware_report(campaign))


if __name__ == "__main__":
    main()
