#!/usr/bin/env python
"""Replication as fault tolerance (paper §3.2).

P2P-MPI rejects checkpoint/restart (no reliable storage in a P2P
system) in favour of running ``r`` copies of every rank on distinct
hosts.  This example:

1. runs a job with r=1 and crashes a host mid-execution -> ranks lost;
2. runs the same job with r=2 and crashes the same host -> the job
   finishes (degraded but complete);
3. quantifies survival probability vs. replication degree under random
   host failures (Monte-Carlo over the real allocation).

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import JobRequest
from repro.apps import HostnameApp
from repro.cluster import P2PMPICluster
from repro.ft.replication import ReplicaSets, min_hosts_to_kill, survival_probability
from repro.middleware.config import MiddlewareConfig
from repro.net.topology import Cluster, Site, Topology


def make_small_topology() -> Topology:
    """A 10-host, 3-site demo federation."""
    sites = [
        Site("alpha", (Cluster("a1", "alpha", "X", 4, 4, 16),)),
        Site("beta", (Cluster("b1", "beta", "X", 4, 4, 8),)),
        Site("gamma", (Cluster("g1", "gamma", "X", 2, 2, 4),)),
    ]
    return Topology(
        sites=sites,
        site_rtt_ms={("alpha", "beta"): 10.0, ("alpha", "gamma"): 20.0,
                     ("beta", "gamma"): 25.0},
        hub="alpha",
    )


def run_with_midrun_crash(r: int) -> None:
    cluster = P2PMPICluster(
        make_small_topology(), seed=23,
        config=MiddlewareConfig(noise_sigma_ms=0.05, app_grace_s=2.0),
        supernode_host="a1-1.alpha",
    ).boot()
    # A slow app so the crash lands mid-execution.
    request = JobRequest(n=8, r=r, strategy="spread",
                         app=HostnameApp(startup_s=5.0))
    mpd = cluster.mpd()
    proc = cluster.sim.process(mpd.submit_job(request))

    def killer():
        yield cluster.sim.timeout(1.0)
        victim = "b1-1.beta"
        print(f"  t=1.0s: host {victim} crashes")
        cluster.network.set_down(victim, True)
        cluster.mpds[victim].on_host_down()

    cluster.sim.process(killer())
    result = cluster.sim.run_until_complete(proc)
    print(f"  r={r}: {result.status.value} — {result.failure_reason or 'all ranks completed'}")
    if result.plan is not None:
        covered = {rank for rank, _ in result.completions}
        print(f"  ranks covered: {len(covered)}/{request.n}")


def main() -> None:
    print("1) No replication (r=1), crash mid-run:")
    run_with_midrun_crash(r=1)

    print("\n2) Replication r=2, same crash:")
    run_with_midrun_crash(r=2)

    print("\n3) Survival probability vs replication degree "
          "(5% independent host failures):")
    cluster = P2PMPICluster(make_small_topology(), seed=5,
                            supernode_host="a1-1.alpha").boot()
    rng = np.random.default_rng(0)
    for r in (1, 2, 3):
        result = cluster.submit_and_run(JobRequest(n=6, r=r, strategy="spread"))
        plan = result.allocation
        prob = survival_probability(plan, p_host_fail=0.05, rng=rng,
                                    trials=20000)
        sets = ReplicaSets(plan)
        print(f"  r={r}: {len(sets.all_hosts())} hosts, "
              f"min failures to kill = {min_hosts_to_kill(plan)}, "
              f"P(survive) = {prob:.4f}")


if __name__ == "__main__":
    main()
