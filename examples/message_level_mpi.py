#!/usr/bin/env python
"""Using the MPJ-like library directly (paper §3.1).

P2P-MPI's second facet is its communication library.  This example
runs real SPMD programs — with actual values flowing through simulated
collectives — on hosts picked straight from an allocation plan, the
way the middleware wires applications.

Run:  python examples/message_level_mpi.py
"""

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.grid5000.builder import build_topology
from repro.mpi import MPIWorld, SUM
from repro.net.transport import Network
from repro.sim import Simulator


def pi_program(comm):
    """Monte-Carlo-free pi: rectangle rule split across ranks."""
    n_steps = 100_000
    h = 1.0 / n_steps
    local = 0.0
    for i in range(comm.rank, n_steps, comm.size):
        x = h * (i + 0.5)
        local += 4.0 / (1.0 + x * x)
    pi = yield from comm.allreduce(local * h, op=SUM, size_bytes=8)
    return pi


def ring_program(comm):
    """Token ring measuring per-hop simulated latency."""
    start = comm.sim.now
    token = 0
    if comm.rank == 0:
        yield from comm.send(1 % comm.size, token, size_bytes=64)
        _src, _tag, token = yield from comm.recv(
            source=comm.size - 1, tag=0)
    else:
        _src, _tag, token = yield from comm.recv(source=comm.rank - 1, tag=0)
        yield from comm.send((comm.rank + 1) % comm.size, token + 1,
                             size_bytes=64)
    yield from comm.barrier()
    return comm.sim.now - start


def main() -> None:
    sim = Simulator(seed=3)
    topology = build_topology()
    network = Network(sim, topology)

    # Allocate 8 ranks with each strategy, then run on the plan's hosts.
    slist = [ReservedHost(h, p_limit=h.cores)
             for h in topology.hosts_in_site("nancy")[:8]]
    for name in ("concentrate", "spread"):
        plan = build_plan(get_strategy(name), slist, n=8, r=1)
        world = MPIWorld(sim, network, [p.host for p in plan.placements],
                         job_id=f"pi-{name}")
        results = world.run(pi_program)
        print(f"pi via allreduce on {name} plan "
              f"({len(plan.used_hosts())} hosts): {results[0]:.6f}")

    # A WAN ring: nancy + sophia hosts, latency becomes visible.
    wan_hosts = (topology.hosts_in_site("nancy")[:2]
                 + topology.hosts_in_site("sophia")[:2])
    ring = MPIWorld(sim, network, wan_hosts, job_id="ring")
    times = ring.run(ring_program)
    print(f"4-rank nancy<->sophia token ring completed in "
          f"{max(times) * 1000:.2f} simulated ms "
          f"(RTT nancy-sophia is {topology.site_rtt_ms('nancy', 'sophia')} ms)")


if __name__ == "__main__":
    main()
