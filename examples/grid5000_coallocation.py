#!/usr/bin/env python
"""Reproduce the paper's Figures 2 and 3 (co-allocation sweeps).

Runs the §5.1 experiment — the hostname program requested with 100..600
processes under both strategies — and prints the four panels as ASCII
tables in the paper's legend order.  Expect the §5.1 narrative:

* concentrate: only nancy up to 200; 5 lyon hosts at 250; nancy pinned
  at 240 cores afterwards; sophia never used.
* spread: one process per host up to 350; all six sites from 300; the
  nancy cores "stair" at 400.

Run:  python examples/grid5000_coallocation.py [--fast]
"""

import sys

from repro.experiments.coallocation import (
    PAPER_DEMANDS,
    run_coallocation_experiment,
)
from repro.experiments.report import format_site_table, series_to_csv


def main() -> None:
    demands = (100, 250, 300, 400, 600) if "--fast" in sys.argv \
        else PAPER_DEMANDS
    print(f"Sweeping demanded processes {list(demands)} "
          f"for both strategies (full middleware per point)...")
    sweeps = run_coallocation_experiment(seed=42, demands=demands)

    for figure, strategy in (("Figure 2", "concentrate"),
                             ("Figure 3", "spread")):
        series = sweeps[strategy]
        print(f"\n{figure} left ({strategy}): allocated hosts per site")
        print(format_site_table(series, value="hosts"))
        print(f"\n{figure} right ({strategy}): allocated cores per site")
        print(format_site_table(series, value="cores"))

    # Machine-readable output for plotting.
    with open("coallocation_sweep.csv", "w", encoding="utf-8") as fh:
        for series in sweeps.values():
            fh.write(series_to_csv(series))
    print("\nWrote coallocation_sweep.csv")


if __name__ == "__main__":
    main()
