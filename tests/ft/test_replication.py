"""Replica-set analysis."""

import numpy as np
import pytest

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.ft.replication import (
    ReplicaSets,
    coverage,
    min_hosts_to_kill,
    survival_probability,
    survives,
)
from repro.net.topology import Host


def make_plan(n=4, r=2, hosts=6, p=2, strategy="spread"):
    slist = [
        ReservedHost(Host(f"h{i}.s", "s", "c", cores=p), p_limit=p,
                     latency_ms=float(i))
        for i in range(hosts)
    ]
    return build_plan(get_strategy(strategy), slist, n=n, r=r)


class TestReplicaSets:
    def test_by_rank_hosts_distinct(self):
        plan = make_plan()
        sets = ReplicaSets(plan)
        for rank in range(plan.n):
            assert len(sets.hosts_of(rank)) == plan.r

    def test_live_ranks_all_alive(self):
        plan = make_plan()
        sets = ReplicaSets(plan)
        assert sets.live_ranks([]) == list(range(plan.n))

    def test_all_hosts(self):
        plan = make_plan()
        sets = ReplicaSets(plan)
        assert sets.all_hosts() == {h.name for h in plan.used_hosts()}


class TestCoverage:
    def test_full_coverage(self):
        done = [(0, 0), (1, 0), (2, 1)]
        covered, missing = coverage(done, n=3)
        assert covered == {0, 1, 2} and not missing

    def test_missing_ranks(self):
        covered, missing = coverage([(0, 0)], n=3)
        assert missing == {1, 2}

    def test_out_of_range_ignored(self):
        covered, _ = coverage([(7, 0)], n=3)
        assert covered == set()


class TestSurvival:
    def test_single_failure_survives_with_r2(self):
        """The §3.2 claim: one host failure never kills an r=2 job."""
        plan = make_plan(r=2)
        for host in plan.used_hosts():
            assert survives(plan, [host.name]), host.name

    def test_r1_dies_on_any_used_host(self):
        plan = make_plan(n=4, r=1)
        for host in plan.used_hosts():
            assert not survives(plan, [host.name])

    def test_killing_both_copies_kills_job(self):
        plan = make_plan(r=2)
        sets = ReplicaSets(plan)
        both = list(sets.hosts_of(0))
        assert not survives(plan, both)

    def test_min_hosts_to_kill_equals_r(self):
        for r in (1, 2):
            plan = make_plan(n=3, r=r, hosts=8)
            assert min_hosts_to_kill(plan) == r

    def test_survival_probability_monotone_in_r(self):
        rng = np.random.default_rng(0)
        probs = []
        for r in (1, 2, 3):
            plan = make_plan(n=3, r=r, hosts=9, p=2)
            probs.append(survival_probability(plan, 0.2, rng, trials=3000))
        assert probs[0] < probs[1] < probs[2]

    def test_survival_probability_bounds(self):
        plan = make_plan(r=2)
        rng = np.random.default_rng(1)
        assert survival_probability(plan, 0.0, rng) == 1.0
        assert survival_probability(plan, 1.0, rng) == 0.0

    def test_invalid_probability(self):
        plan = make_plan()
        with pytest.raises(ValueError):
            survival_probability(plan, 1.5, np.random.default_rng(0))

    def test_r2_close_to_analytic_upper_bound(self):
        """With disjoint rank pairs, P(survive) <= (1 - q^2)^n."""
        plan = make_plan(n=4, r=2, hosts=8, p=1)  # 8 hosts, 1 proc each
        rng = np.random.default_rng(2)
        q = 0.1
        estimate = survival_probability(plan, q, rng, trials=20000)
        analytic = (1 - q ** 2) ** 4
        assert estimate == pytest.approx(analytic, abs=0.02)
