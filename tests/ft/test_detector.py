"""Heartbeat failure detector."""

import pytest

from repro.ft.detector import HeartbeatDetector
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def env():
    sim = Simulator(seed=6)
    topo = make_small_topology()
    net = Network(sim, topo)
    for host in topo.all_hosts():
        net.register(host.name)
    peers = ["b1-1.beta", "b1-2.beta"]
    det = HeartbeatDetector(sim, net, "a1-1.alpha", peers,
                            period_s=1.0, timeout_s=3.5)
    sim.process(det.service())
    for peer in peers:
        sim.process(det.emitter(peer))
    return sim, net, det


class TestDetector:
    def test_no_suspicion_while_alive(self, env):
        sim, net, det = env
        sim.run(until=20.0)
        assert det.suspects() == set()

    def test_crash_detected_within_timeout(self, env):
        sim, net, det = env
        sim.run(until=5.0)
        net.set_down("b1-1.beta")
        sim.run(until=5.0 + 3.5 + 1.5)
        assert det.suspects() == {"b1-1.beta"}
        crash_to_detect = det.suspicions[0][0] - 5.0
        assert crash_to_detect <= 3.5 + 1.5

    def test_revival_clears_suspicion(self, env):
        sim, net, det = env
        sim.run(until=5.0)
        net.set_down("b1-1.beta")
        sim.run(until=12.0)
        assert "b1-1.beta" in det.suspects()
        net.set_down("b1-1.beta", down=False)
        sim.run(until=15.0)
        assert "b1-1.beta" not in det.suspects()

    def test_timeout_must_exceed_period(self, env):
        sim, net, _ = env
        with pytest.raises(ValueError):
            HeartbeatDetector(sim, net, "a1-1.alpha", [], period_s=2.0,
                              timeout_s=1.0)

    def test_only_monitored_peers_tracked(self, env):
        sim, net, det = env
        net.send("g1-1.gamma", "a1-1.alpha", "heartbeat", "HB",
                 payload={}, size_bytes=64)
        sim.run(until=1.0)
        assert "g1-1.gamma" not in det.states
