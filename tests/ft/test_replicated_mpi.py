"""Replica-transparent message passing (§3.2 engine-level demo)."""

import pytest

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.ft.replicated_mpi import ReplicatedWorld
from repro.mpi.datatypes import SUM
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


def build_world(n=4, r=2, seed=9):
    sim = Simulator(seed=seed)
    topo = make_small_topology()
    net = Network(sim, topo)
    slist = [ReservedHost(h, p_limit=h.cores) for h in topo.all_hosts()]
    plan = build_plan(get_strategy("spread"), slist, n=n, r=r)
    return sim, topo, net, ReplicatedWorld(sim, net, plan, job_id="t")


def allreduce_program(comm):
    total = yield from comm.allreduce(comm.rank + 1, op=SUM, size_bytes=8)
    return total


def ring_program(comm):
    """Logical ring: rank i sends to i+1, receives from i-1."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.isend(right, f"token-{comm.rank}", size_bytes=32, tag=3)
    token = yield from comm.recv(left, tag=3)
    return token


class TestHappyPath:
    def test_allreduce_all_replicas_agree(self):
        sim, topo, net, world = build_world(n=4, r=2)
        results = world.run(allreduce_program)
        expected = 4 * 5 // 2
        for rank in range(4):
            assert results[rank] == [expected, expected]

    def test_ring_with_replication(self):
        sim, topo, net, world = build_world(n=5, r=2)
        results = world.run(ring_program)
        for rank in range(5):
            left = (rank - 1) % 5
            assert set(results[rank]) == {f"token-{left}"}

    def test_r1_degenerates_to_plain_world(self):
        sim, topo, net, world = build_world(n=4, r=1)
        results = world.run(allreduce_program)
        assert all(len(v) == 1 for v in results.values())

    def test_replica_placement_disjoint_hosts(self):
        sim, topo, net, world = build_world(n=4, r=2)
        for rank in range(4):
            h0 = world.host_of(rank, 0).name
            h1 = world.host_of(rank, 1).name
            assert h0 != h1


class TestFailures:
    def crash(self, sim, net, world, rank, replica, after_s):
        host = world.host_of(rank, replica)

        def killer():
            yield sim.timeout(after_s)
            net.set_down(host.name)
            # every copy on that host dies
            for (rk, rep), placed in world._hosts.items():
                if placed.name == host.name:
                    world.kill_copy(rk, rep)

        sim.process(killer())

    def test_single_replica_crash_job_survives(self):
        """§3.2: 'a failure of H0 or H1 leaves a fully functional set
        of processes'."""
        sim, topo, net, world = build_world(n=4, r=2)

        def slow_allreduce(comm):
            yield comm.sim.timeout(1.0)  # crash lands before comms
            total = yield from comm.allreduce(comm.rank + 1, op=SUM,
                                              size_bytes=8)
            return total

        world.spawn(slow_allreduce)
        self.crash(sim, net, world, rank=2, replica=0, after_s=0.5)
        results = world.run(slow_allreduce)
        expected = 10
        for rank in range(4):
            assert expected in results[rank]
        # rank 2 survives through its replica 1 only.
        assert len(results[2]) == 1

    def test_unreplicated_crash_kills_job(self):
        sim, topo, net, world = build_world(n=4, r=1)

        def slow_allreduce(comm):
            yield comm.sim.timeout(1.0)
            total = yield from comm.allreduce(comm.rank + 1, op=SUM,
                                              size_bytes=8)
            return total

        world.spawn(slow_allreduce)
        self.crash(sim, net, world, rank=2, replica=0, after_s=0.5)
        with pytest.raises(RuntimeError):
            world.run(slow_allreduce)

    def test_both_replicas_crash_kills_job(self):
        sim, topo, net, world = build_world(n=4, r=2)

        def slow_allreduce(comm):
            yield comm.sim.timeout(1.0)
            total = yield from comm.allreduce(comm.rank + 1, op=SUM,
                                              size_bytes=8)
            return total

        world.spawn(slow_allreduce)
        self.crash(sim, net, world, rank=2, replica=0, after_s=0.4)
        self.crash(sim, net, world, rank=2, replica=1, after_s=0.5)
        with pytest.raises(RuntimeError):
            world.run(slow_allreduce)

    def test_crash_after_completion_is_harmless(self):
        sim, topo, net, world = build_world(n=3, r=2)
        results = world.run(allreduce_program)
        world.kill_copy(0, 0)  # already finished
        assert results[0] == [6, 6]


class TestMidCollectiveFailover:
    """§3.2 under fire: a host dies *during* a collective — messages
    already in flight, the reduction half-gathered — and the job must
    still complete through the surviving replica, while the overlay's
    failure detector notices the death within its timeout.  The older
    tests only ever killed hosts before any communication started.
    """

    PERIOD_S = 0.5
    TIMEOUT_S = 1.8

    def _late_rank2_allreduce(self, comm):
        # Ranks 0/1/3 enter the collective at t=0 (their contributions
        # are on the wire immediately); rank 2 joins late, so a crash
        # at t=1 lands squarely mid-collective.
        if comm.rank == 2:
            yield comm.sim.timeout(2.0)
        total = yield from comm.allreduce(comm.rank + 1, op=SUM,
                                          size_bytes=8)
        return total

    def test_completes_and_detector_fires_within_timeout(self):
        from repro.ft.detector import HeartbeatDetector

        sim, topo, net, world = build_world(n=4, r=2)
        victim = world.host_of(2, 0)
        monitor_host = "a1-1.alpha"
        net.register(monitor_host)

        detector = HeartbeatDetector(
            sim, net, monitor_host, peers=[victim.name],
            period_s=self.PERIOD_S, timeout_s=self.TIMEOUT_S)
        sim.process(detector.service())
        sim.process(detector.emitter(victim.name))

        crash_at = 1.0

        def killer():
            yield sim.timeout(crash_at)
            net.set_down(victim.name)
            for (rank, replica), placed in world._hosts.items():
                if placed.name == victim.name:
                    world.kill_copy(rank, replica)

        sim.process(killer())
        results = world.run(self._late_rank2_allreduce)

        # The collective still converged on every rank via surviving
        # replicas; rank 2 finished on its replica 1 only.
        expected = 4 * 5 // 2
        for rank in range(4):
            assert expected in results[rank]
        assert len(results[2]) == 1

        # The job outlives the detection latency here (it finished
        # ~1 s after the crash); drive the detector loops through one
        # full timeout window before reading the verdict.
        sim.run(until=crash_at + self.TIMEOUT_S + 2 * self.PERIOD_S)

        # The heartbeat detector suspected the victim, and did so
        # within its timeout plus one sweep period of the crash.
        suspected = [(t, peer) for t, peer in detector.suspicions
                     if peer == victim.name]
        assert suspected, "detector never suspected the crashed host"
        detected_at = suspected[0][0]
        assert crash_at < detected_at
        assert detected_at - crash_at <= self.TIMEOUT_S + self.PERIOD_S

    def test_unreplicated_mid_collective_death_kills_job(self):
        sim, topo, net, world = build_world(n=4, r=1)

        def killer():
            yield sim.timeout(1.0)
            victim = world.host_of(2, 0)
            net.set_down(victim.name)
            for (rank, replica), placed in world._hosts.items():
                if placed.name == victim.name:
                    world.kill_copy(rank, replica)

        world.spawn(self._late_rank2_allreduce)
        sim.process(killer())
        with pytest.raises(RuntimeError):
            world.run(self._late_rank2_allreduce)


class TestDeduplication:
    def test_duplicate_copies_are_dropped(self):
        """Two sender replicas multicast the same logical messages;
        receivers must see each logical message exactly once."""
        sim, topo, net, world = build_world(n=2, r=2)

        def chatty(comm):
            out = []
            if comm.rank == 0:
                for _ in range(3):
                    comm.isend(1, f"m{_}", size_bytes=16, tag=5)
                yield comm.sim.timeout(0)
                return None
            for i in range(3):
                data = yield from comm.recv(0, tag=5)
                out.append(data)
            return out

        results = world.run(chatty)
        for value in results[1]:
            assert value == ["m0", "m1", "m2"]

    def test_inbox_drained_after_replicated_run(self):
        """Regression: duplicate physical copies must not accumulate.

        With r=2 every logical message arrives (up to) twice per
        receiver copy; the late duplicates used to sit in the host
        inbox forever.  After a replicated run every inbox must be
        empty of RMPI traffic — refused on arrival or purged at
        delivery time.
        """
        sim, topo, net, world = build_world(n=4, r=2)

        def chatty(comm):
            out = []
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            for i in range(3):
                comm.isend(nxt, f"r{comm.rank}m{i}", size_bytes=16, tag=5)
            for i in range(3):
                data = yield from comm.recv(prev, tag=5)
                out.append(data)
            return out

        results = world.run(chatty)
        for rank in range(4):
            prev = (rank - 1) % 4
            for value in results[rank]:
                assert value == [f"r{prev}m{i}" for i in range(3)]
        for host in {h.name for h in world._hosts.values()}:
            leftover = [m for m in net.inbox(host).items
                        if m.kind == "RMPI"]
            assert leftover == [], f"undrained duplicates on {host}"
