"""Engine-level rank migration: checkpoint / teardown / rejoin.

The load-bearing property: a migrated run produces *bit-identical*
results to an unmigrated one — the move may cost time, never
correctness.  The seq/dedup invariants of ``ReplicatedComm`` must hold
across the port re-registration even with senders mid-flight.
"""

import pytest

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.ft.migration import MigrationRecord, RankMigrator
from repro.ft.replicated_mpi import ReplicatedWorld
from repro.mpi.datatypes import SUM
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


def build_world(n=4, r=2, seed=9, job_id="t"):
    sim = Simulator(seed=seed)
    topo = make_small_topology()
    net = Network(sim, topo)
    slist = [ReservedHost(h, p_limit=h.cores) for h in topo.all_hosts()]
    plan = build_plan(get_strategy("spread"), slist, n=n, r=r)
    return sim, topo, net, ReplicatedWorld(sim, net, plan, job_id=job_id)


def free_hosts(topo, world):
    """Hosts the plan left unused (deterministic order)."""
    used = {h.name for h in world._hosts.values()}
    return [h for h in topo.all_hosts() if h.name not in used]


def two_phase(comm):
    """Ring exchange, cooperative checkpoint, then an allreduce."""
    state = comm.restored_state
    if state is None:
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.isend(right, f"tok-{comm.rank}", size_bytes=32, tag=1)
        token = yield from comm.recv(left, tag=1)
        yield comm.sim.timeout(0.5)
        comm.checkpoint({"token": token})
    else:
        token = state["token"]
    total = yield from comm.allreduce(comm.rank + 1, op=SUM, size_bytes=8)
    return (token, total)


def looped(comm):
    """Three exchange rounds with a checkpoint boundary after each."""
    state = comm.restored_state or {"i": 0, "acc": []}
    i, acc = state["i"], list(state["acc"])
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    while i < 3:
        comm.isend(right, (comm.rank, i), size_bytes=16, tag=2)
        got = yield from comm.recv(left, tag=2)
        acc.append(got)
        i += 1
        yield comm.sim.timeout(1.0)
        comm.checkpoint({"i": i, "acc": acc})
    return acc


def migrate_at(sim, migrator, at_s, rank, replica, dest):
    def trigger():
        yield sim.timeout(at_s)
        migrator.migrate(rank, replica, dest)

    sim.process(trigger())


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    @pytest.mark.parametrize("n,r", [(3, 1), (4, 1), (3, 2), (4, 2)])
    def test_migrated_run_matches_baseline(self, seed, n, r):
        """Property: across a seeded (n, r) grid, migrating one copy
        mid-run changes nothing about the delivered results."""
        _, _, _, base_world = build_world(n=n, r=r, seed=seed)
        baseline = base_world.run(two_phase)

        sim, topo, _, world = build_world(n=n, r=r, seed=seed)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 16)
        dest = free_hosts(topo, world)[0]
        world.spawn(two_phase)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=dest)
        migrated = world.run(two_phase)

        assert migrated == baseline
        assert [rec.status for rec in migrator.records] == ["done"]
        assert world.host_of(1, 0).name == dest.name

    def test_concurrent_sender_mid_migration(self):
        """Rank 0 floods rank 1 while rank 1 migrates between two of
        six receives: nothing lost, nothing duplicated, in order."""

        def flood_restartable(comm):
            state = comm.restored_state or {"got": []}
            got = list(state["got"])
            if comm.rank == 0:
                for i in range(6):
                    comm.isend(1, f"m{i}", size_bytes=16, tag=7)
                    yield comm.sim.timeout(0.3)
                return None
            while len(got) < 6:
                data = yield from comm.recv(0, tag=7)
                got.append(data)
                if len(got) == 3:
                    yield comm.sim.timeout(0.4)
                    comm.checkpoint({"got": got})
            return got

        _, _, _, base_world = build_world(n=2, r=1, seed=3)
        baseline = base_world.run(flood_restartable)
        assert baseline[1] == [[f"m{i}" for i in range(6)]]

        sim, topo, net, world = build_world(n=2, r=1, seed=3)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 14)
        dest = free_hosts(topo, world)[0]
        world.spawn(flood_restartable)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=dest)
        migrated = world.run(flood_restartable)

        assert migrated == baseline
        assert [rec.status for rec in migrator.records] == ["done"]
        # In-flight / queued messages were carried through the redirect.
        assert net.messages_forwarded + net.messages_delivered > 0

    def test_chain_migration_there_and_back(self):
        """A -> B -> back to A across successive checkpoints."""
        _, _, _, base_world = build_world(n=3, r=1, seed=4)
        baseline = base_world.run(looped)

        sim, topo, _, world = build_world(n=3, r=1, seed=4)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 14)
        home = world.host_of(1, 0)
        away = free_hosts(topo, world)[0]
        world.spawn(looped)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=away)
        migrate_at(sim, migrator, 2.5, rank=1, replica=0, dest=home)
        results = world.run(looped)

        assert results == baseline
        assert [rec.status for rec in migrator.records] == ["done", "done"]
        assert migrator.records[0].dst_host == away.name
        assert migrator.records[1].dst_host == home.name
        assert world.host_of(1, 0).name == home.name

    def test_retarget_before_checkpoint_last_destination_wins(self):
        """Two requests before any checkpoint: the drivers compose and
        the copy ends up at the *latest* destination."""
        sim, topo, _, world = build_world(n=3, r=1, seed=4)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 14)
        first, second = free_hosts(topo, world)[:2]
        world.spawn(looped)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=first)
        migrate_at(sim, migrator, 0.2, rank=1, replica=0, dest=second)
        results = world.run(looped)

        _, _, _, base_world = build_world(n=3, r=1, seed=4)
        assert results == base_world.run(looped)
        assert world.host_of(1, 0).name == second.name
        # Both drivers completed a move (via ``first`` en route).
        assert [rec.status for rec in migrator.records] == ["done", "done"]


class TestEdgeCases:
    def test_migrate_after_finish_is_noop(self):
        """No checkpoint will ever fire: the driver forwards the
        result untouched and records a noop."""
        sim, topo, _, world = build_world(n=3, r=1, seed=2)
        migrator = RankMigrator(world)
        dest = free_hosts(topo, world)[0]
        world.spawn(two_phase)
        sim.run(until=20.0)  # program long done, no migration pending
        migrator.migrate(1, 0, dest)
        results = world.run(two_phase)
        expected = 3 * 4 // 2
        assert results[1] == [("tok-0", expected)]
        assert [rec.status for rec in migrator.records] == ["noop"]
        assert world.host_of(1, 0).name != dest.name

    def test_destination_death_loses_copy_replication_absorbs(self):
        sim, topo, net, world = build_world(n=3, r=2, seed=6)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 22)
        dest = free_hosts(topo, world)[0]
        net.register(dest.name)
        net.set_down(dest.name)
        world.spawn(two_phase)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=dest)
        results = world.run(two_phase)
        # Replica 1 of rank 1 carried the job; the moved copy is gone.
        assert len(results[1]) == 1
        assert [rec.status for rec in migrator.records] == ["lost"]

    def test_destination_death_unreplicated_kills_job(self):
        sim, topo, net, world = build_world(n=3, r=1, seed=6)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 22)
        dest = free_hosts(topo, world)[0]
        net.register(dest.name)
        net.set_down(dest.name)
        world.spawn(two_phase)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=dest)
        with pytest.raises(RuntimeError):
            world.run(two_phase)
        assert [rec.status for rec in migrator.records] == ["lost"]

    def test_checkpoint_without_pending_migration_is_free(self):
        """``comm.checkpoint`` with no migrator attached (and with one
        attached but idle) never unwinds the program."""
        _, _, _, world = build_world(n=3, r=1, seed=8)
        results = world.run(looped)  # checkpoints every round, no migrator
        assert set(results) == {0, 1, 2}

        _, _, _, armed = build_world(n=3, r=1, seed=8)
        RankMigrator(armed)  # attached, nothing pending
        assert armed.run(looped) == results

    def test_records_carry_timing_and_endpoints(self):
        sim, topo, _, world = build_world(n=3, r=1, seed=4)
        migrator = RankMigrator(world, checkpoint_bytes=1 << 14)
        src = world.host_of(1, 0)
        dest = free_hosts(topo, world)[0]
        world.spawn(looped)
        migrate_at(sim, migrator, 0.1, rank=1, replica=0, dest=dest)
        world.run(looped)
        rec = migrator.records[0]
        assert isinstance(rec, MigrationRecord)
        assert rec.src_host == src.name and rec.dst_host == dest.name
        assert 0.1 <= rec.requested_at < rec.completed_at
