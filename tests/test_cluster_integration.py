"""Full-stack integration: facade, failures, replication outcomes."""

import pytest

from repro.cluster import P2PMPICluster
from repro.middleware.config import MiddlewareConfig
from repro.middleware.jobs import JobRequest, JobStatus
from tests.conftest import make_small_topology


class TestFacade:
    def test_boot_idempotent(self, small_cluster):
        before = small_cluster.sim.events_processed
        small_cluster.boot()
        assert small_cluster.sim.events_processed == before

    def test_submit_many_sequential(self, small_cluster):
        results = small_cluster.submit_many([
            JobRequest(n=4, strategy="spread"),
            JobRequest(n=4, strategy="concentrate"),
        ])
        assert [r.status for r in results] == [JobStatus.SUCCESS] * 2

    def test_monitor_records_jobs(self, small_cluster):
        small_cluster.submit_and_run(JobRequest(n=2, tag="probe"))
        records = small_cluster.monitor.select("job", tag="probe")
        assert records and records[-1].value == "success"

    def test_custom_submitter(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=2),
                                           submitter="b1-1.beta")
        assert res.job_id.startswith("b1-1.beta#")
        # beta's closest site is beta itself.
        assert res.allocation.hosts_by_site().get("beta", 0) > 0

    def test_alive_hosts_tracks_kills(self, small_cluster):
        assert len(small_cluster.alive_hosts()) == 10
        small_cluster.kill_hosts(["g1-1.gamma"])
        small_cluster.sim.run(until=small_cluster.sim.now + 0.001)
        assert len(small_cluster.alive_hosts()) == 9

    def test_unknown_anchor_rejected(self):
        with pytest.raises(KeyError):
            P2PMPICluster(make_small_topology(), supernode_host="ghost.site")

    def test_load_feedback_into_latency(self, small_cluster):
        """Busy hosts look slower to the ping (load_of wiring)."""
        mpd = small_cluster.mpds["a1-2.alpha"]
        mpd.gatekeeper.hold("k")
        mpd.gatekeeper.start_application("k", "busyjob", 4)
        assert small_cluster.latency_model.load_of("a1-2.alpha") == 4
        mpd.gatekeeper.end_application("busyjob")


class TestFailuresMidRun:
    def make_cluster(self):
        return P2PMPICluster(
            make_small_topology(),
            seed=23,
            config=MiddlewareConfig(noise_sigma_ms=0.05, app_grace_s=2.0),
            supernode_host="a1-1.alpha",
        ).boot()

    def submit_with_kill(self, cluster, request, kill_after_s, victims=None):
        """Submit and crash hosts mid-execution."""
        from repro.apps import HostnameApp

        request = JobRequest(
            n=request.n, r=request.r, strategy=request.strategy,
            app=HostnameApp(startup_s=5.0),
        )
        mpd = cluster.mpd()
        proc = cluster.sim.process(mpd.submit_job(request))

        def killer():
            yield cluster.sim.timeout(kill_after_s)
            chosen = victims
            if chosen is None:
                # Kill a host the beta-site jobs land on.
                chosen = [sorted(h.name for h in cluster.topology.all_hosts()
                                 if h.site == "beta")[0]]
            for name in chosen:
                cluster.network.set_down(name, True)
                cluster.mpds[name].on_host_down()

        cluster.sim.process(killer())
        return cluster.sim.run_until_complete(proc)

    def test_r1_loses_ranks_on_crash(self):
        cluster = self.make_cluster()
        res = self.submit_with_kill(
            cluster, JobRequest(n=10, r=1, strategy="spread"),
            kill_after_s=1.0, victims=["b1-1.beta"])
        assert res.status is JobStatus.RANKS_LOST
        assert "no surviving replica" in res.failure_reason

    def test_r2_survives_single_crash_degraded(self):
        cluster = self.make_cluster()
        res = self.submit_with_kill(
            cluster, JobRequest(n=8, r=2, strategy="spread"),
            kill_after_s=1.0, victims=["b1-1.beta"])
        assert res.status is JobStatus.DEGRADED
        covered = {rank for rank, _ in res.completions}
        assert covered == set(range(8))

    def test_crash_before_submit_routes_around(self):
        cluster = self.make_cluster()
        cluster.kill_hosts(["b1-1.beta"])
        cluster.sim.run(until=cluster.sim.now + 0.01)
        res = cluster.submit_and_run(JobRequest(n=8, r=1, strategy="spread"))
        assert res.status is JobStatus.SUCCESS
        assert "b1-1.beta" not in [h.name for h in res.allocation.used_hosts()]


class TestJobResultApi:
    def test_allocation_raises_without_plan(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=99))
        assert res.status is JobStatus.INFEASIBLE
        with pytest.raises(RuntimeError):
            _ = res.allocation

    def test_hostnames_view(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=3))
        names = res.hostnames()
        assert set(names) == {0, 1, 2}
        assert all(len(v) == 1 for v in names.values())

    def test_summary_contains_status(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=3))
        assert "success" in res.summary()
