"""Machine model and contention factor."""

import pytest

from repro.apps.machine import MachineModel, contention_factor
from repro.net.topology import Host


def host(speed=1.0):
    return Host("h.s", "s", "c", cores=4, speed=speed)


class TestContention:
    def test_single_process_no_penalty(self):
        assert contention_factor(1, 0.5) == 1.0

    def test_linear_growth(self):
        assert contention_factor(4, 0.25) == pytest.approx(1.75)

    def test_zero_beta(self):
        assert contention_factor(8, 0.0) == 1.0

    @pytest.mark.parametrize("colocated,beta", [(0, 0.1), (1, -0.1)])
    def test_invalid_inputs(self, colocated, beta):
        with pytest.raises(ValueError):
            contention_factor(colocated, beta)


class TestMachineModel:
    def test_base_time(self):
        mm = MachineModel()
        assert mm.compute_time(host(), 1000, 0.001) == pytest.approx(1.0)

    def test_speed_scales_inverse(self):
        mm = MachineModel()
        slow = mm.compute_time(host(speed=0.5), 100, 0.01)
        fast = mm.compute_time(host(speed=2.0), 100, 0.01)
        assert slow == pytest.approx(4 * fast)

    def test_contention_applied(self):
        mm = MachineModel()
        alone = mm.compute_time(host(), 100, 0.01, colocated=1, beta=0.2)
        packed = mm.compute_time(host(), 100, 0.01, colocated=4, beta=0.2)
        assert packed == pytest.approx(alone * 1.6)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            MachineModel().compute_time(host(), -1, 0.01)
