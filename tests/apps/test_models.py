"""Application models: EP, IS, CG, hostname — analytic behaviour."""

import pytest

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.apps import (
    AppEnv,
    CGLikeBenchmark,
    EPBenchmark,
    HostnameApp,
    ISBenchmark,
)
from repro.mpi.costmodel import CostParams
from tests.conftest import make_small_topology


@pytest.fixture(scope="module")
def topo():
    return make_small_topology()


@pytest.fixture(scope="module")
def env(topo):
    return AppEnv(topology=topo, cost_params=CostParams(
        msg_fixed_s=1e-3, msg_fixed_small_s=1e-4, eager_threshold_bytes=4096))


def plan_on(topo, n, strategy="spread", sites=("alpha",), r=1):
    hosts = [h for h in topo.all_hosts() if h.site in sites]
    slist = [ReservedHost(h, p_limit=h.cores) for h in hosts]
    return build_plan(get_strategy(strategy), slist, n=n, r=r)


def plan_on_hosts(topo, names, n, strategy="spread", r=1):
    slist = [ReservedHost(topo.host(name), p_limit=topo.host(name).cores)
             for name in names]
    return build_plan(get_strategy(strategy), slist, n=n, r=r)


class TestHostname:
    def test_durations_tiny(self, topo, env):
        plan = plan_on(topo, 4)
        times = HostnameApp(startup_s=0.01).predicted_rank_times(plan, env)
        assert set(times) == {(r, 0) for r in range(4)}
        assert all(t == pytest.approx(0.01) for t in times.values())

    def test_negative_startup_rejected(self):
        with pytest.raises(ValueError):
            HostnameApp(startup_s=-1)


class TestEP:
    def test_class_sizes_ordered(self):
        assert (EPBenchmark("A").pairs < EPBenchmark("B").pairs
                < EPBenchmark("C").pairs)

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            EPBenchmark("Z")

    def test_time_decreases_with_n(self, topo, env):
        ep = EPBenchmark("A")
        t4 = ep.predicted_rank_times(plan_on(topo, 4), env)[(0, 0)]
        t8 = ep.predicted_rank_times(plan_on(topo, 8), env)[(0, 0)]
        assert t8 < t4

    def test_contention_penalises_concentrate(self, topo, env):
        ep = EPBenchmark("A")
        spread = ep.predicted_rank_times(plan_on(topo, 4, "spread"), env)
        conc = ep.predicted_rank_times(plan_on(topo, 4, "concentrate"), env)
        assert conc[(0, 0)] > spread[(0, 0)]

    def test_all_ranks_same_duration(self, topo, env):
        """Final collective synchronises: one duration per replica."""
        times = EPBenchmark("A").predicted_rank_times(plan_on(topo, 6), env)
        assert len(set(times.values())) == 1

    def test_replicas_priced_separately(self, topo, env):
        plan = plan_on(topo, 3, r=2, sites=("alpha", "beta"))
        times = EPBenchmark("A").predicted_rank_times(plan, env)
        assert set(times) == {(r, c) for r in range(3) for c in range(2)}


class TestIS:
    def test_comm_heavier_than_ep(self, topo, env):
        """IS is communication bound: its comm share must exceed EP's."""
        plan = plan_on(topo, 8, sites=("alpha", "beta"))
        layout = env.costmodel.layout([p.host for p in plan.placements])
        ep, isb = EPBenchmark("A"), ISBenchmark("A")
        ep_ratio = ep.comm_time(layout, 8, env) / ep.rank_time(
            plan.placements[0].host, 8, env, 1)
        is_ratio = isb.comm_time(layout, 8, env) / isb.rank_time(
            plan.placements[0].host, 8, env, 1)
        assert is_ratio > ep_ratio

    def test_wan_placement_slower(self, topo, env):
        isb = ISBenchmark("A")
        local = isb.predicted_rank_times(plan_on(topo, 4, "spread"), env)
        remote = isb.predicted_rank_times(
            plan_on_hosts(topo, ["a1-1.alpha", "a1-2.alpha",
                                 "g1-1.gamma", "g1-2.gamma"], 4), env)
        # gamma is 20 ms away; alltoallv over WAN must dominate
        assert remote[(0, 0)] > local[(0, 0)]

    def test_iterations_scale_time(self, topo, env):
        short = ISBenchmark("A", iterations=2)
        long = ISBenchmark("A", iterations=8)
        plan = plan_on(topo, 4)
        t_short = short.predicted_rank_times(plan, env)[(0, 0)]
        t_long = long.predicted_rank_times(plan, env)[(0, 0)]
        assert t_long == pytest.approx(4 * t_short, rel=0.05)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ISBenchmark("B", iterations=0)


class TestCG:
    def test_ring_neighbour_cost_visible(self, topo, env):
        cg = CGLikeBenchmark("A")
        local = cg.predicted_rank_times(plan_on(topo, 4, "spread"), env)
        cross = cg.predicted_rank_times(
            plan_on_hosts(topo, ["a1-1.alpha", "a1-2.alpha",
                                 "g1-1.gamma", "g1-2.gamma"], 4), env)
        assert cross[(0, 0)] > local[(0, 0)]

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            CGLikeBenchmark("Q")


class TestMessagePrograms:
    """The message-level programs of each app run and return real data."""

    def run_program(self, topo, app, n=4):
        from repro.mpi import MPIWorld
        from repro.net.transport import Network
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        net = Network(sim, topo)
        hosts = [h for h in topo.all_hosts() if h.site == "alpha"]
        chosen = (hosts * 2)[:n]
        world = MPIWorld(sim, net, chosen, job_id=app.name)
        return world.run(app.program)

    def test_hostname_program(self, topo):
        results = self.run_program(topo, HostnameApp())
        assert results[0] is not None and len(results[0]) == 4

    def test_ep_program_sums(self, topo):
        results = self.run_program(topo, EPBenchmark("S"))
        assert all(r["sx"] == sum(range(1, 5)) for r in results)
        assert all(r["counts"] == (4.0, 4.0) for r in results)

    def test_is_program_checksums_agree(self, topo):
        results = self.run_program(topo, ISBenchmark("S"))
        assert len(set(results)) == 1

    def test_cg_program_converges_consistently(self, topo):
        results = self.run_program(topo, CGLikeBenchmark("S"))
        assert all(isinstance(r, float) for r in results)

    def test_base_class_program_not_implemented(self, topo):
        from repro.apps.base import Application

        class Bare(Application):
            name = "bare"

            def rank_time(self, host, n, env, colocated):  # pragma: no cover
                return 0.0

            def comm_time(self, layout, n, env):  # pragma: no cover
                return 0.0

        with pytest.raises(Exception):
            self.run_program(topo, Bare())
