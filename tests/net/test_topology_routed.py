"""Routed link-level topologies: paths, facade, validation.

The routed mode (DESIGN.md §14) replaces the flat per-site-pair table
with explicit links and shortest-RTT multi-hop routes.  These tests
pin the route selection (RTT-sum metric, bottleneck bandwidth), the
``path_metrics`` facade both wiring modes answer through, and the
constructor's mode/connectivity validation.
"""

import pytest

from repro.net.topology import Cluster, Link, PathMetrics, Site, Topology


def _site(name, hosts=2, cores=2):
    return Site(name, (Cluster(f"c-{name}", name, "X", nodes=hosts,
                               cpus=hosts, cores=hosts * cores),))


@pytest.fixture
def routed():
    """Three sites around a router, plus a slow direct shortcut.

    alpha--r1 (2 ms, 1 G), r1--beta (3 ms, 10 G), beta--gamma
    (5 ms, 2.5 G), alpha--gamma direct (20 ms, 10 G).  The direct
    alpha-gamma link loses to the 10 ms three-hop route.
    """
    return Topology(
        sites=[_site("alpha"), _site("beta"), _site("gamma")],
        links=[
            Link("alpha", "r1", rtt_ms=2.0, bandwidth_bps=1.0e9),
            Link("beta", "r1", rtt_ms=3.0, bandwidth_bps=10.0e9),
            Link("beta", "gamma", rtt_ms=5.0, bandwidth_bps=2.5e9),
            Link("alpha", "gamma", rtt_ms=20.0, bandwidth_bps=10.0e9),
        ],
        transit=("r1",),
    )


class TestRoutes:
    def test_two_hop_route_through_router(self, routed):
        pm = routed.site_path_metrics("alpha", "beta")
        assert pm == PathMetrics(
            rtt_ms=5.0, bandwidth_bps=1.0e9,
            links=(("alpha", "r1"), ("beta", "r1")))
        assert pm.hops == 2

    def test_multi_hop_beats_slow_direct_link(self, routed):
        pm = routed.site_path_metrics("alpha", "gamma")
        assert pm.rtt_ms == pytest.approx(10.0)
        assert pm.links == (("alpha", "r1"), ("beta", "r1"),
                            ("beta", "gamma"))
        assert pm.bandwidth_bps == 1.0e9  # access link bottleneck

    def test_routes_symmetric(self, routed):
        ab = routed.site_path_metrics("alpha", "gamma")
        ba = routed.site_path_metrics("gamma", "alpha")
        assert ab.rtt_ms == ba.rtt_ms
        assert ab.bandwidth_bps == ba.bandwidth_bps
        assert ab.links == tuple(reversed(ba.links))

    def test_same_site_is_lan(self, routed):
        pm = routed.site_path_metrics("alpha", "alpha")
        assert pm.rtt_ms == routed.lan_rtt_ms
        assert pm.bandwidth_bps == routed.lan_bw_bps
        assert pm.links == ()

    def test_route_links_helper(self, routed):
        assert routed.route_links("beta", "gamma") == (("beta", "gamma"),)
        assert routed.route_links("alpha", "alpha") == ()

    def test_link_bandwidth_lookup(self, routed):
        assert routed.link_bandwidth_bps(("alpha", "r1")) == 1.0e9
        assert routed.link_bandwidth_bps(("beta", "gamma")) == 2.5e9


class TestFacade:
    """Host-level legacy accessors answer through the routed paths."""

    def test_base_rtt_host_level(self, routed):
        a = routed.host("c-alpha-1.alpha")
        b = routed.host("c-beta-1.beta")
        assert routed.base_rtt_ms(a, b) == pytest.approx(5.0)
        assert routed.base_rtt_ms(a, a) == 0.0

    def test_bandwidth_nic_clamped(self, routed):
        a = routed.host("c-alpha-1.alpha")
        g = routed.host("c-gamma-1.gamma")
        # Path bottleneck 1 G equals the LAN NIC: clamp is a no-op
        # here, but backbone (unclamped) must agree with the route.
        assert routed.bandwidth_bps(a, g) == min(routed.lan_bw_bps, 1.0e9)
        assert routed.backbone_bandwidth_bps(a, g) == 1.0e9

    def test_path_metrics_host_facade(self, routed):
        a = routed.host("c-alpha-1.alpha")
        b = routed.host("c-alpha-2.alpha")
        pm = routed.path_metrics(a, b)
        assert pm.rtt_ms == routed.lan_rtt_ms
        assert routed.path_metrics(a, a).rtt_ms == 0.0

    def test_latency_diameter_spans_routes(self, routed):
        hosts = [routed.host("c-alpha-1.alpha"),
                 routed.host("c-gamma-1.gamma")]
        assert routed.latency_diameter_ms(hosts) == pytest.approx(10.0)


class TestFlatFacade:
    """The flat model answers the same facade, 1-hop per pair."""

    def test_flat_path_metrics(self, small_topology):
        pm = small_topology.site_path_metrics("alpha", "beta")
        assert pm.rtt_ms == pytest.approx(10.0)
        assert pm.hops == 1
        assert pm.links == (("alpha", "beta"),)

    def test_flat_not_routed(self, small_topology):
        assert not small_topology.routed
        assert small_topology.transit == ()


class TestValidation:
    def test_disconnected_site_rejected(self):
        with pytest.raises(ValueError, match="delta"):
            Topology(
                sites=[_site("alpha"), _site("beta"), _site("delta")],
                links=[Link("alpha", "beta", 1.0, 1e9)])

    def test_flat_tables_conflict_with_links(self):
        with pytest.raises(ValueError, match="flat"):
            Topology(
                sites=[_site("alpha"), _site("beta")],
                site_rtt_ms={("alpha", "beta"): 1.0},
                links=[Link("alpha", "beta", 1.0, 1e9)])

    def test_transit_requires_links(self):
        with pytest.raises(ValueError, match="transit"):
            Topology(sites=[_site("alpha")], transit=("r1",))

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="endpoint"):
            Topology(sites=[_site("alpha"), _site("beta")],
                     links=[Link("alpha", "nowhere", 1.0, 1e9)])

    def test_duplicate_and_self_links_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(sites=[_site("alpha"), _site("beta")],
                     links=[Link("alpha", "beta", 1.0, 1e9),
                            Link("beta", "alpha", 2.0, 1e9)])
        with pytest.raises(ValueError, match="self-link"):
            Topology(sites=[_site("alpha"), _site("beta")],
                     links=[Link("alpha", "beta", 1.0, 1e9),
                            Link("alpha", "alpha", 1.0, 1e9)])

    def test_link_key_canonical(self):
        assert Link("z", "a", 1.0, 1e9).key == ("a", "z")
