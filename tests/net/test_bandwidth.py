"""Bandwidth allocator contention accounting."""

import pytest

from repro.net.bandwidth import BandwidthAllocator
from tests.conftest import make_small_topology


@pytest.fixture
def topo():
    return make_small_topology()


@pytest.fixture
def alloc(topo):
    return BandwidthAllocator(topo)


def hosts(topo):
    return topo.host("a1-1.alpha"), topo.host("b1-1.beta")


class TestAllocator:
    def test_first_flow_full_capacity(self, topo, alloc):
        a, b = hosts(topo)
        bw = alloc.acquire(a, b)
        assert bw == pytest.approx(topo.bandwidth_bps(a, b))

    def test_contention_splits_capacity(self, topo, alloc):
        a, b = hosts(topo)
        alloc.acquire(a, b)
        second = alloc.acquire(a, b)
        assert second == pytest.approx(topo.bandwidth_bps(a, b) / 2)

    def test_release_restores(self, topo, alloc):
        a, b = hosts(topo)
        alloc.acquire(a, b)
        alloc.release(a, b)
        assert alloc.active_flows(a, b) == 0

    def test_release_without_acquire_raises(self, topo, alloc):
        a, b = hosts(topo)
        with pytest.raises(RuntimeError):
            alloc.release(a, b)

    def test_direction_agnostic_domain(self, topo, alloc):
        a, b = hosts(topo)
        alloc.acquire(a, b)
        assert alloc.active_flows(b, a) == 1

    def test_lan_and_wan_domains_independent(self, topo, alloc):
        a, b = hosts(topo)
        a2 = topo.host("a1-2.alpha")
        alloc.acquire(a, b)          # WAN alpha-beta
        bw_lan = alloc.acquire(a, a2)  # LAN alpha
        assert bw_lan == pytest.approx(topo.lan_bw_bps)

    def test_effective_bandwidth_preview(self, topo, alloc):
        a, b = hosts(topo)
        before = alloc.effective_bandwidth_bps(a, b)
        alloc.acquire(a, b)
        after = alloc.effective_bandwidth_bps(a, b)
        assert after == pytest.approx(before / 2)
        assert alloc.active_flows(a, b) == 1  # preview did not register

    def test_snapshot_only_active(self, topo, alloc):
        a, b = hosts(topo)
        alloc.acquire(a, b)
        alloc.release(a, b)
        assert alloc.snapshot() == {}

    def test_total_flows_cumulative(self, topo, alloc):
        a, b = hosts(topo)
        alloc.acquire(a, b)
        alloc.release(a, b)
        alloc.acquire(a, b)
        assert alloc.total_flows[alloc.domain(a, b)] == 2
