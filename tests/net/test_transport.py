"""Message transport: delivery timing, drops, ports."""

import pytest

from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def net():
    simulator = Simulator(seed=1)
    topo = make_small_topology()
    network = Network(simulator, topo)  # noiseless by default
    for host in topo.all_hosts():
        network.register(host.name)
    return network


def recv_one(net, host, port):
    def body(net):
        msg = yield net.receive(host, port)
        return msg

    return net.sim.process(body(net))


class TestDelivery:
    def test_zero_byte_latency_only(self, net):
        proc = recv_one(net, "b1-1.beta", "svc")
        net.send("a1-1.alpha", "b1-1.beta", "svc", "K")
        msg = net.sim.run_until_complete(proc)
        # one-way 5 ms + software overhead
        assert msg.delivered_at == pytest.approx(0.005 + net.sw_overhead_s)

    def test_bytes_add_serialisation_time(self, net):
        proc = recv_one(net, "b1-1.beta", "svc")
        nbytes = 10_000_000  # 10 MB over 1 Gb/s = 80 ms
        net.send("a1-1.alpha", "b1-1.beta", "svc", "K", size_bytes=nbytes)
        msg = net.sim.run_until_complete(proc)
        expected = 0.005 + net.sw_overhead_s + nbytes * 8.0 / 1.0e9
        assert msg.delivered_at == pytest.approx(expected, rel=1e-6)

    def test_self_send_works(self, net):
        proc = recv_one(net, "a1-1.alpha", "loop")
        net.send("a1-1.alpha", "a1-1.alpha", "loop", "K")
        msg = net.sim.run_until_complete(proc)
        assert msg.delivered_at == pytest.approx(net.sw_overhead_s)

    def test_fifo_per_port(self, net):
        got = []

        def body(net):
            for _ in range(3):
                msg = yield net.receive("b1-1.beta", "svc")
                got.append(msg.payload)

        proc = net.sim.process(body(net))
        for i in range(3):
            net.send("a1-1.alpha", "b1-1.beta", "svc", "K", payload=i)
        net.sim.run_until_complete(proc)
        assert got == [0, 1, 2]

    def test_kind_filtering(self, net):
        def body(net):
            msg = yield net.receive("b1-1.beta", "svc", kind="WANTED")
            return msg.kind

        proc = net.sim.process(body(net))
        net.send("a1-1.alpha", "b1-1.beta", "svc", "OTHER")
        net.send("a1-1.alpha", "b1-1.beta", "svc", "WANTED")
        assert net.sim.run_until_complete(proc) == "WANTED"

    def test_message_counter(self, net):
        proc = recv_one(net, "b1-1.beta", "svc")
        net.send("a1-1.alpha", "b1-1.beta", "svc", "K")
        net.sim.run_until_complete(proc)
        assert net.messages_delivered == 1


class TestFailures:
    def test_down_destination_drops(self, net):
        net.set_down("b1-1.beta")
        net.send("a1-1.alpha", "b1-1.beta", "svc", "K")
        net.sim.run()
        assert net.messages_dropped == 1
        assert net.messages_delivered == 0

    def test_down_source_cannot_send(self, net):
        net.set_down("a1-1.alpha")
        net.send("a1-1.alpha", "b1-1.beta", "svc", "K")
        net.sim.run()
        assert net.messages_dropped == 1

    def test_down_at_delivery_time_drops(self, net):
        # Message in flight when destination dies.
        net.send("a1-1.alpha", "g1-1.gamma", "svc", "K")  # 10 ms one way

        def killer(net):
            yield net.sim.timeout(0.001)
            net.set_down("g1-1.gamma")

        net.sim.process(killer(net))
        net.sim.run()
        assert net.messages_dropped == 1

    def test_revival_restores_delivery(self, net):
        net.set_down("b1-1.beta")
        net.set_down("b1-1.beta", down=False)
        proc = recv_one(net, "b1-1.beta", "svc")
        net.send("a1-1.alpha", "b1-1.beta", "svc", "K")
        msg = net.sim.run_until_complete(proc)
        assert msg.kind == "K"

    def test_unregistered_destination_drops(self, net):
        # gamma-2 deliberately never registered on a fresh network
        sim2 = Simulator()
        topo = make_small_topology()
        net2 = Network(sim2, topo)
        net2.register("a1-1.alpha")
        net2.send("a1-1.alpha", "g1-2.gamma", "svc", "K")
        sim2.run()
        assert net2.messages_dropped == 1

    def test_set_down_unknown_host_raises(self, net):
        with pytest.raises(KeyError):
            net.set_down("nosuch.host")

    def test_register_unknown_host_raises(self, net):
        with pytest.raises(KeyError):
            net.register("nosuch.host")


class TestContention:
    def test_concurrent_flows_slow_each_other(self, net):
        t_alone = net.transfer_time_s(
            net.topology.host("a1-1.alpha"), net.topology.host("b1-1.beta"),
            1_000_000)
        # Occupy the link with another flow.
        net.bandwidth.acquire(net.topology.host("a1-2.alpha"),
                              net.topology.host("b1-2.beta"))
        t_contended = net.transfer_time_s(
            net.topology.host("a1-1.alpha"), net.topology.host("b1-1.beta"),
            1_000_000)
        assert t_contended > t_alone
