"""Application-level ping: probe vs analytic estimate."""

import numpy as np
import pytest

from repro.net.latency import LatencyModel
from repro.net.ping import PingService
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


def build(sigma=0.0, seed=0):
    sim = Simulator(seed=seed)
    topo = make_small_topology()
    latency = LatencyModel(topo, sim.rng.stream("net.latency"),
                           noise_sigma_ms=sigma)
    net = Network(sim, topo, latency=latency)
    for host in topo.all_hosts():
        net.register(host.name)
    return sim, topo, net, latency


class TestProbe:
    def test_probe_measures_rtt(self):
        sim, topo, net, latency = build()
        src, dst = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        svc_src = PingService(net, latency, src)
        svc_dst = PingService(net, latency, dst)
        sim.process(svc_dst.responder())

        def body():
            rtt = yield from svc_src.probe(dst)
            return rtt

        rtt = sim.run_until_complete(sim.process(body()))
        # base RTT 10 ms + 4 software overheads (2 sends x 2 endpoints)
        assert rtt == pytest.approx(10.0 + 4 * net.sw_overhead_s * 1000,
                                    rel=0.05)

    def test_probe_timeout_on_dead_host(self):
        sim, topo, net, latency = build()
        src, dst = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        svc = PingService(net, latency, src)
        net.set_down(dst.name)

        def body():
            rtt = yield from svc.probe(dst, timeout_s=0.5)
            return rtt

        assert sim.run_until_complete(sim.process(body())) is None
        assert sim.now == pytest.approx(0.5)

    def test_estimate_matches_probe_statistics(self):
        """The analytic fast path must agree with real round trips."""
        sigma = 0.8
        sim, topo, net, latency = build(sigma=sigma, seed=3)
        src, dst = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        svc_src = PingService(net, latency, src)
        svc_dst = PingService(net, latency, dst)
        sim.process(svc_dst.responder())

        def many_probes():
            values = []
            for _ in range(300):
                rtt = yield from svc_src.probe(dst)
                values.append(rtt)
            return values

        probed = np.array(sim.run_until_complete(sim.process(many_probes())))
        estimated = np.array([
            svc_src.estimate(dst, samples=1).value_ms for _ in range(300)
        ])
        assert probed.mean() == pytest.approx(estimated.mean(), rel=0.1)
        assert probed.std() == pytest.approx(estimated.std(), rel=0.5)

    def test_estimate_deterministic_given_stream(self):
        sim, topo, net, latency = build(sigma=1.0, seed=5)
        src, dst = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        svc = PingService(net, latency, src)
        first = svc.estimate(dst, samples=3).value_ms

        sim2, topo2, net2, latency2 = build(sigma=1.0, seed=5)
        svc2 = PingService(net2, latency2, topo2.host("a1-1.alpha"))
        second = svc2.estimate(topo2.host("b1-1.beta"), samples=3).value_ms
        assert first == second
