"""Latency model statistics and estimates."""

import numpy as np
import pytest

from repro.net.latency import LatencyEstimate, LatencyModel
from tests.conftest import make_small_topology


@pytest.fixture
def topo():
    return make_small_topology()


def make_model(topo, sigma=0.0, load_of=None, seed=0):
    return LatencyModel(topo, np.random.default_rng(seed),
                        noise_sigma_ms=sigma, load_of=load_of)


class TestSampling:
    def test_noiseless_equals_base(self, topo):
        model = make_model(topo, sigma=0.0)
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        assert model.sample_rtt_ms(a, b) == pytest.approx(10.0)

    def test_noise_is_additive_positive(self, topo):
        model = make_model(topo, sigma=1.0)
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        samples = model.sample_many(a, b, 500)
        assert (samples >= 10.0).all()
        assert samples.std() > 0.1

    def test_load_penalty(self, topo):
        model = make_model(topo, sigma=0.0, load_of=lambda name: 4)
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        assert model.sample_rtt_ms(a, b) == pytest.approx(10.0 + 4 * 0.05)

    def test_negative_sigma_rejected(self, topo):
        with pytest.raises(ValueError):
            make_model(topo, sigma=-1.0)

    def test_sample_many_matches_scalar_stats(self, topo):
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        batch = make_model(topo, sigma=0.5, seed=1).sample_many(a, b, 4000)
        scalars = np.array([
            make_model(topo, sigma=0.5, seed=2).sample_rtt_ms(a, b)
            for _ in range(4000)
        ])
        assert batch.mean() == pytest.approx(scalars.mean(), rel=0.05)

    def test_one_way_delay_is_half_rtt_seconds(self, topo):
        model = make_model(topo, sigma=0.0)
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        assert model.base_one_way_delay_s(a, b) == pytest.approx(0.005)


class TestEstimates:
    def test_estimate_mean_of_samples(self, topo):
        model = make_model(topo, sigma=0.0)
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        est = model.estimate(a, b, samples=5)
        assert est.value_ms == pytest.approx(10.0)
        assert est.n_samples == 5

    def test_more_samples_reduce_error(self, topo):
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        errs = {}
        for k in (1, 30):
            model = make_model(topo, sigma=2.0, seed=3)
            vals = [model.estimate(a, b, samples=k).value_ms
                    for _ in range(200)]
            errs[k] = np.std(vals)
        assert errs[30] < errs[1]

    def test_invalid_samples(self, topo):
        model = make_model(topo)
        a, b = topo.host("a1-1.alpha"), topo.host("b1-1.beta")
        with pytest.raises(ValueError):
            model.estimate(a, b, samples=0)

    def test_ewma_update(self, topo):
        est = LatencyEstimate(host=topo.host("a1-1.alpha"), value_ms=0.0,
                              ewma_alpha=0.5)
        est.update(10.0)
        est.update(20.0)
        assert est.value_ms == pytest.approx(15.0)

    def test_plain_mean_update(self, topo):
        est = LatencyEstimate(host=topo.host("a1-1.alpha"), value_ms=0.0)
        for v in (10.0, 20.0, 30.0):
            est.update(v)
        assert est.value_ms == pytest.approx(20.0)
