"""Topology invariants."""

import pytest

from repro.net.topology import Cluster, Site, Topology


class TestCluster:
    def test_cores_per_node(self):
        c = Cluster("c", "s", "X", nodes=4, cpus=8, cores=16)
        assert c.cores_per_node == 4

    def test_indivisible_cores_rejected(self):
        c = Cluster("c", "s", "X", nodes=3, cpus=3, cores=4)
        with pytest.raises(ValueError):
            _ = c.cores_per_node

    def test_hosts_materialisation(self):
        c = Cluster("c", "s", "X", nodes=2, cpus=2, cores=4, speed=1.5)
        hosts = c.hosts()
        assert [h.name for h in hosts] == ["c-1.s", "c-2.s"]
        assert all(h.cores == 2 and h.speed == 1.5 for h in hosts)


class TestTopology:
    def test_counts(self, small_topology):
        assert small_topology.n_hosts == 10
        assert small_topology.n_cores == 28

    def test_site_counts(self, small_topology):
        assert small_topology.sites["alpha"].n_hosts == 4
        assert small_topology.sites["alpha"].n_cores == 16

    def test_duplicate_site_rejected(self):
        site = Site("s", (Cluster("c", "s", "X", 1, 1, 1),))
        with pytest.raises(ValueError):
            Topology(sites=[site, site])

    def test_base_rtt_same_host_zero(self, small_topology):
        h = small_topology.host("a1-1.alpha")
        assert small_topology.base_rtt_ms(h, h) == 0.0

    def test_base_rtt_lan(self, small_topology):
        a = small_topology.host("a1-1.alpha")
        b = small_topology.host("a1-2.alpha")
        assert small_topology.base_rtt_ms(a, b) == pytest.approx(0.1)

    def test_base_rtt_wan(self, small_topology):
        a = small_topology.host("a1-1.alpha")
        b = small_topology.host("b1-1.beta")
        assert small_topology.base_rtt_ms(a, b) == pytest.approx(10.0)

    def test_rtt_symmetric(self, small_topology):
        a = small_topology.host("a1-1.alpha")
        b = small_topology.host("g1-1.gamma")
        assert (small_topology.base_rtt_ms(a, b)
                == small_topology.base_rtt_ms(b, a))

    def test_hub_fills_missing_pairs(self):
        sites = [
            Site("hub", (Cluster("h", "hub", "X", 1, 1, 1),)),
            Site("s1", (Cluster("c1", "s1", "X", 1, 1, 1),)),
            Site("s2", (Cluster("c2", "s2", "X", 1, 1, 1),)),
        ]
        topo = Topology(
            sites=sites,
            site_rtt_ms={("hub", "s1"): 5.0, ("hub", "s2"): 7.0},
            hub="hub",
        )
        assert topo.site_rtt_ms("s1", "s2") == pytest.approx(12.0)

    def test_missing_rtt_raises(self):
        sites = [
            Site("s1", (Cluster("c1", "s1", "X", 1, 1, 1),)),
            Site("s2", (Cluster("c2", "s2", "X", 1, 1, 1),)),
        ]
        topo = Topology(sites=sites)
        a, b = topo.host("c1-1.s1"), topo.host("c2-1.s2")
        with pytest.raises(KeyError):
            topo.base_rtt_ms(a, b)

    def test_bandwidth_lan_bounds_wan(self, small_topology):
        a = small_topology.host("a1-1.alpha")
        b = small_topology.host("b1-1.beta")
        assert (small_topology.bandwidth_bps(a, b)
                <= small_topology.lan_bw_bps)

    def test_bandwidth_same_host_infinite(self, small_topology):
        h = small_topology.host("a1-1.alpha")
        assert small_topology.bandwidth_bps(h, h) == float("inf")

    def test_all_hosts_deterministic_order(self, small_topology):
        names = [h.name for h in small_topology.all_hosts()]
        assert names == sorted(names, key=lambda n: (n.split(".")[1], n))
        assert len(names) == 10

    def test_link_key_canonical(self, small_topology):
        a = small_topology.host("a1-1.alpha")
        b = small_topology.host("b1-1.beta")
        assert (small_topology.link_key(a, b)
                == small_topology.link_key(b, a))

    def test_summary_mentions_all_sites(self, small_topology):
        text = small_topology.summary()
        for site in ("alpha", "beta", "gamma"):
            assert site in text

    def test_unknown_site_query_raises(self, small_topology):
        with pytest.raises(KeyError):
            small_topology.hosts_in_site("nowhere")
