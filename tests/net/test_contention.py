"""Property tests of the plan-dependent WAN contention model.

The four ISSUE-mandated properties:

* the pair score is symmetric in pair order;
* it is monotonically non-increasing in the crossing-pair count;
* a plan crossing no backbone link reduces to the NIC-clamped
  path bandwidth;
* with exactly 16 crossing pairs it agrees with the deprecated
  fixed-16 score.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.commaware import contended_pair_bw_bps
from repro.grid5000.builder import build_topology
from repro.net.contention import (WAN_CONTENTION_FACTOR, ContentionModel,
                                  PlanContention)

TOPO = build_topology()
HOSTS = TOPO.all_hosts()
MODEL = ContentionModel(TOPO)


@st.composite
def plans(draw, min_size=2, max_size=40):
    """A random plan: host indices with repetition (co-located copies)."""
    idx = draw(st.lists(st.integers(0, len(HOSTS) - 1),
                        min_size=min_size, max_size=max_size))
    return [HOSTS[i] for i in idx]


class TestCountingRule:
    def test_site_counts_count_copies(self):
        nancy = TOPO.hosts_in_site("nancy")[:2]
        lyon = TOPO.hosts_in_site("lyon")[0]
        plan = [nancy[0], nancy[0], nancy[1], lyon]
        assert ContentionModel.site_counts(plan) == {"nancy": 3, "lyon": 1}

    def test_crossing_pairs_is_concurrency_bound(self):
        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        plan = [h for h in nancy[:4]] + [h for h in lyon[:2]]
        crossing = MODEL.crossing_pairs(plan)
        # min(4, 2): a pairwise round keeps each copy in one flow.
        assert crossing[("lyon", "nancy")] == 2

    def test_link_contention_reports_backbone(self):
        nancy = TOPO.hosts_in_site("nancy")[:16]
        bordeaux = TOPO.hosts_in_site("bordeaux")[:16]
        links = MODEL.plan(nancy + bordeaux).links()
        assert len(links) == 1
        (link,) = links
        assert link.link == ("bordeaux", "nancy")
        assert link.backbone_bps == 1.0e9  # the paper's slow link
        assert link.crossing_pairs == 16
        assert link.per_pair_bps == pytest.approx(1.0e9 / 16)

    def test_plan_snapshot_roundtrip(self):
        plan = MODEL.plan([TOPO.hosts_in_site("nancy")[0],
                           TOPO.hosts_in_site("lyon")[0]])
        assert isinstance(plan, PlanContention)
        assert plan.counts() == {"nancy": 1, "lyon": 1}
        assert plan.max_crossing_pairs() == 1
        assert MODEL.plan([HOSTS[0]]).max_crossing_pairs() == 0


class TestPairScoreProperties:
    @given(plan=plans())
    @settings(max_examples=60, deadline=None)
    def test_symmetric_in_pair_order(self, plan):
        snap = MODEL.plan(plan)
        a, b = plan[0], plan[-1]
        assert snap.pair_bw_bps(a, b) == snap.pair_bw_bps(b, a)

    @given(plan=plans(), extra=st.integers(1, 24))
    @settings(max_examples=60, deadline=None)
    def test_monotone_nonincreasing_in_crossing_count(self, plan, extra):
        """Growing the plan (more crossing pairs on every link) never
        raises any pair's contended bandwidth."""
        grown = plan + (HOSTS * ((extra // len(HOSTS)) + 1))[:extra]
        small, big = MODEL.plan(plan), MODEL.plan(grown)
        for link, pairs in small.crossing_pairs().items():
            assert big.crossing_pairs()[link] >= pairs
        a, b = plan[0], plan[-1]
        assert big.pair_bw_bps(a, b) <= small.pair_bw_bps(a, b)

    @given(idx=st.lists(st.integers(0, 59), min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_no_crossing_reduces_to_nic_clamp(self, idx):
        """A single-site plan crosses no backbone: every pair keeps
        the NIC-clamped path bandwidth."""
        nancy = TOPO.hosts_in_site("nancy")
        plan = [nancy[i] for i in idx]
        snap = MODEL.plan(plan)
        assert snap.max_crossing_pairs() == 0
        a, b = plan[0], plan[-1]
        assert snap.pair_bw_bps(a, b) == TOPO.bandwidth_bps(a, b)

    def test_single_crossing_flow_stays_nic_bound(self):
        """One lone crossing pair gets the whole backbone — i.e. the
        NIC-clamped path rate, same as an idle link."""
        a = TOPO.hosts_in_site("nancy")[0]
        b = TOPO.hosts_in_site("lyon")[0]
        assert MODEL.pair_bw_bps([a, b], a, b) == TOPO.bandwidth_bps(a, b)

    def test_sixteen_crossing_pairs_agree_with_fixed_score(self):
        """The deprecated constant is the special case the calibration
        generalises: exactly 16 crossing pairs -> identical score."""
        nancy = TOPO.hosts_in_site("nancy")[:16]
        lyon = TOPO.hosts_in_site("lyon")[:16]
        plan = nancy + lyon
        a, b = nancy[0], lyon[0]
        plan_score = contended_pair_bw_bps(TOPO, a, b, plan_hosts=plan)
        fixed_score = contended_pair_bw_bps(TOPO, a, b)
        assert plan_score == pytest.approx(fixed_score)
        assert plan_score == pytest.approx(
            TOPO.backbone_bandwidth_bps(a, b) / WAN_CONTENTION_FACTOR)

    def test_fixed_fallback_unchanged_without_plan(self):
        """Scoring before a plan exists keeps the legacy behaviour."""
        a = TOPO.hosts_in_site("nancy")[0]
        b = TOPO.hosts_in_site("bordeaux")[0]
        assert contended_pair_bw_bps(TOPO, a, b) == pytest.approx(
            1.0e9 / WAN_CONTENTION_FACTOR)
        same = TOPO.hosts_in_site("nancy")[:2]
        assert contended_pair_bw_bps(TOPO, *same) == TOPO.lan_bw_bps
        assert contended_pair_bw_bps(TOPO, a, a) == float("inf")
