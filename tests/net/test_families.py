"""Generated topology families: determinism, structure, failures.

Property tests over seeds (DESIGN.md §14): every family must be a pure
function of its parameters plus ``topo_seed``, always connected, and
exhibit its defining structural signature — hubs for ``scale_free``,
high clustering with short paths for ``small_world``, a router core
that survives ``failed`` exclusions for ``fat_sites``.
"""

import networkx as nx
import pytest

from repro.net.families import (GENERATED_FAMILIES, derive_seed,
                                fat_sites_topology, scale_free_topology,
                                small_world_topology)

SEEDS = (0, 1, 7)

BUILDERS = {
    "scale_free": scale_free_topology,
    "small_world": small_world_topology,
    "fat_sites": fat_sites_topology,
}


def link_fingerprint(topo):
    """Canonical (a, b, rtt, bw) tuples — the full wiring identity."""
    return sorted((k[0], k[1], topo._links[k].rtt_ms,
                   topo._links[k].bandwidth_bps) for k in topo._links)


class TestDeterminism:
    @pytest.mark.parametrize("family", GENERATED_FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_topology(self, family, seed):
        a = BUILDERS[family](sites=16, topo_seed=seed)
        b = BUILDERS[family](sites=16, topo_seed=seed)
        assert sorted(a.sites) == sorted(b.sites)
        assert link_fingerprint(a) == link_fingerprint(b)
        assert a.transit == b.transit

    @pytest.mark.parametrize("family", GENERATED_FAMILIES)
    def test_different_seeds_differ(self, family):
        a = BUILDERS[family](sites=16, topo_seed=0)
        b = BUILDERS[family](sites=16, topo_seed=1)
        assert link_fingerprint(a) != link_fingerprint(b)

    def test_derive_seed_is_stable(self):
        # Cross-process stability is the whole point: pin one value.
        assert derive_seed("x", 1) == derive_seed("x", 1)
        assert derive_seed("x", 1) != derive_seed("x", 2)
        assert derive_seed("scale_free", 20, 2, 0) == 16609914579970336824


class TestConnectivity:
    @pytest.mark.parametrize("family", GENERATED_FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("sites", (8, 25))
    def test_every_site_pair_routes(self, family, seed, sites):
        topo = BUILDERS[family](sites=sites, topo_seed=seed)
        names = sorted(topo.sites)
        assert len(names) == sites
        for b in names[1:]:
            pm = topo.site_path_metrics(names[0], b)
            assert pm.rtt_ms > 0
            assert pm.bandwidth_bps > 0
            assert len(pm.links) >= 1


class TestScaleFree:
    def test_degree_distribution_has_hubs(self):
        """BA graphs are heavy-tailed: the busiest site must carry
        several times the median degree once the graph is large."""
        topo = scale_free_topology(sites=60, m=2, topo_seed=3)
        degrees = sorted(d for _, d in topo.graph.degree(topo.sites))
        median = degrees[len(degrees) // 2]
        assert degrees[-1] >= 3 * median
        assert degrees[0] >= 2  # every site brought m edges

    def test_edge_count_matches_attachment(self):
        topo = scale_free_topology(sites=30, m=2, topo_seed=0)
        assert len(topo._links) == (30 - 2) * 2  # (n - m) * m

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            scale_free_topology(sites=1)
        with pytest.raises(ValueError):
            scale_free_topology(sites=10, m=10)


class TestSmallWorld:
    def test_clustering_beats_degree_matched_random(self):
        """The WS signature: clustering well above the Erdős–Rényi
        expectation C ≈ k/n at low rewiring probability."""
        sites, k = 40, 6
        topo = small_world_topology(sites=sites, k=k, rewire_p=0.1,
                                    topo_seed=2)
        c = nx.average_clustering(topo.graph)
        assert c > 3 * (k / sites)

    def test_rewire_extremes_valid(self):
        ring = small_world_topology(sites=12, k=4, rewire_p=0.0,
                                    topo_seed=0)
        assert len(ring._links) == 12 * 2  # pristine k/2-neighbour ring
        random_ws = small_world_topology(sites=12, k=4, rewire_p=1.0,
                                         topo_seed=0)
        assert nx.is_connected(random_ws.graph)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            small_world_topology(sites=3)
        with pytest.raises(ValueError):
            small_world_topology(sites=10, k=1)
        with pytest.raises(ValueError):
            small_world_topology(sites=10, rewire_p=1.5)


class TestFatSites:
    def test_routers_are_transit_not_sites(self):
        topo = fat_sites_topology(sites=20, router_groups=4, topo_seed=0)
        assert len(topo.sites) == 20
        assert set(topo.transit) == {"r00", "r01", "r02", "r03"}
        # Sites only home onto routers: no site-site links.
        for a, b in topo._links:
            assert a.startswith("r") or b.startswith("r")

    def test_multi_hop_routes_cross_the_core(self):
        topo = fat_sites_topology(sites=20, router_groups=4, topo_seed=0)
        pm = topo.site_path_metrics("s000", "s002")
        assert len(pm.links) >= 3  # access + core + access

    def test_failed_router_drops_no_site(self):
        """Dual homing: losing one router reroutes, never strands."""
        whole = fat_sites_topology(sites=20, router_groups=4, topo_seed=0)
        degraded = fat_sites_topology(sites=20, router_groups=4,
                                      topo_seed=0, failed=("r01",))
        assert sorted(degraded.sites) == sorted(whole.sites)
        assert "r01" not in degraded.transit

    def test_failed_site_excluded(self):
        topo = fat_sites_topology(sites=20, router_groups=4, topo_seed=0,
                                  failed=("s003",))
        assert "s003" not in topo.sites
        assert len(topo.sites) == 19

    def test_stranded_sites_pruned_to_largest_component(self):
        # s000 homes onto exactly r00 and r01; killing both strands it.
        topo = fat_sites_topology(sites=8, router_groups=4, topo_seed=0,
                                  failed=("r00", "r01"))
        assert "s000" not in topo.sites
        assert len(topo.sites) >= 2

    def test_unknown_failed_name_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            fat_sites_topology(sites=10, failed=("nancy",))

    def test_all_sites_failed_rejected(self):
        with pytest.raises(ValueError, match="every site"):
            fat_sites_topology(sites=2, router_groups=2,
                               failed=("s000", "s001"))

    def test_hundreds_of_sites(self):
        topo = fat_sites_topology(sites=300, router_groups=12,
                                  topo_seed=5)
        assert len(topo.sites) == 300
        assert topo.n_hosts == 300
