"""Per-link routed contention, and the flat model's bit-exact pin.

Routed topologies count crossing flows on every link a route
traverses, so one router chord aggregates the load of all site pairs
sharing it; a pair's contended bandwidth is the narrowest per-flow
slice along its route.  The flat Grid'5000 model must keep producing
*exactly* the numbers it produced before routing existed — each flat
pair owns a private 1-hop link, so per-link counting degenerates to
the old per-pair counting bit for bit (pinned against literals below).
"""

import random

import pytest

from repro.grid5000.builder import build_topology
from repro.net.contention import (ContentionModel, IncrementalPlanScore,
                                  PlanContention)
from repro.net.topology import Cluster, Link, Site, Topology


def _site(name, hosts=4, cores=2):
    return Site(name, (Cluster(f"c-{name}", name, "X", nodes=hosts,
                               cpus=hosts, cores=hosts * cores),))


@pytest.fixture
def star():
    """Three sites homed onto one router — every route shares links."""
    return Topology(
        sites=[_site("x"), _site("y"), _site("z")],
        links=[Link("x", "r", 1.0, 10.0e9),
               Link("y", "r", 1.0, 10.0e9),
               Link("z", "r", 1.0, 2.0e9)],
        transit=("r",))


def _plan(topo, census):
    hosts = []
    for site, n in census.items():
        pool = topo.hosts_in_site(site)
        hosts += [pool[i % len(pool)] for i in range(n)]
    return hosts


class TestRoutedPlanContention:
    def test_link_loads_aggregate_routes(self, star):
        plan = _plan(star, {"x": 2, "y": 3, "z": 1})
        contention = ContentionModel(star).plan(plan)
        # Pair flows: x-y min(2,3)=2, x-z min(2,1)=1, y-z min(3,1)=1.
        assert contention.link_loads() == {
            ("r", "x"): 3, ("r", "y"): 3, ("r", "z"): 2}
        assert contention.max_crossing_pairs() == 3

    def test_pair_bw_is_narrowest_slice(self, star):
        plan = _plan(star, {"x": 2, "y": 3, "z": 1})
        contention = ContentionModel(star).plan(plan)
        a = star.hosts_in_site("x")[0]
        b = star.hosts_in_site("y")[0]
        c = star.hosts_in_site("z")[0]
        # x-y: min over x-r (10G/3) and y-r (10G/3), NIC-clamped to 1G.
        assert contention.pair_bw_bps(a, b) == min(1.0e9, 10.0e9 / 3)
        # x-z: the 2 G access link divided by its 2 flows is the
        # bottleneck (and matches the NIC clamp exactly).
        assert contention.pair_bw_bps(a, c) == min(1.0e9, 2.0e9 / 2)

    def test_links_report_sorted(self, star):
        plan = _plan(star, {"x": 1, "y": 1})
        report = ContentionModel(star).plan(plan).links()
        assert [lc.link for lc in report] == [("r", "x"), ("r", "y")]
        assert all(lc.crossing_pairs == 1 for lc in report)
        assert report[0].backbone_bps == 10.0e9

    def test_lone_flow_keeps_nic_rate(self, star):
        plan = _plan(star, {"x": 1, "z": 1})
        contention = ContentionModel(star).plan(plan)
        a = star.hosts_in_site("x")[0]
        c = star.hosts_in_site("z")[0]
        assert contention.pair_bw_bps(a, c) == star.bandwidth_bps(a, c)


class TestRoutedIncremental:
    def test_matches_batch_under_add_remove(self, star):
        rng = random.Random(11)
        all_hosts = star.all_hosts()
        model = ContentionModel(star)
        score = IncrementalPlanScore(star)
        bag = []
        for _step in range(150):
            if bag and rng.random() < 0.4:
                host = bag.pop(rng.randrange(len(bag)))
                score.remove(host)
            else:
                host = rng.choice(all_hosts)
                bag.append(host)
                score.add(host)
            batch = model.plan(bag)
            assert score.snapshot() == batch
            assert score.link_loads() == batch.link_loads()
            assert score.max_crossing_pairs() == batch.max_crossing_pairs()
            if len(bag) >= 2:
                a, b = rng.sample(bag, 2)
                assert score.pair_bw_bps(a, b) == batch.pair_bw_bps(a, b)

    def test_multi_copy_counts(self, star):
        x = star.hosts_in_site("x")[0]
        y = star.hosts_in_site("y")[0]
        score = IncrementalPlanScore(star)
        score.add(x, 8)
        score.add(y, 4)
        assert score.link_loads() == {("r", "x"): 4, ("r", "y"): 4}
        score.remove(y, 4)
        assert score.link_loads() == {}


class TestFlatGrid5000Pin:
    """Bit-identity: the flat paper testbed before == after routing.

    The literals are the pre-routing implementation's outputs for one
    representative §5.1-style plan; any arithmetic drift in the shared
    code paths fails exact equality.
    """

    def _contention(self):
        topo = build_topology()
        plan = ([h for h in topo.hosts_in_site("nancy")[:10]
                 for _ in range(4)]
                + [h for h in topo.hosts_in_site("lyon")[:5]
                   for _ in range(4)]
                + [h for h in topo.hosts_in_site("bordeaux")[:3]])
        return topo, ContentionModel(topo).plan(plan)

    def test_crossing_pairs_exact(self):
        _, contention = self._contention()
        assert contention.crossing == (
            (("bordeaux", "lyon"), 3),
            (("bordeaux", "nancy"), 3),
            (("lyon", "nancy"), 20),
        )
        assert contention.max_crossing_pairs() == 20
        # Flat: per-link loads ARE the per-pair crossing counts.
        assert contention.link_loads() == dict(contention.crossing)

    def test_pair_bw_exact(self):
        topo, contention = self._contention()
        nancy = topo.hosts_in_site("nancy")
        lyon = topo.hosts_in_site("lyon")[0]
        bordeaux = topo.hosts_in_site("bordeaux")[0]
        assert contention.pair_bw_bps(nancy[0], lyon) == 500000000.0
        assert contention.pair_bw_bps(nancy[0], bordeaux) == 3e9 / 9
        assert contention.pair_bw_bps(lyon, bordeaux) == 3e9 / 9
        assert contention.pair_bw_bps(nancy[0], nancy[1]) == 1000000000.0

    def test_flat_is_one_hop_special_case(self):
        """A flat topology rebuilt as explicit private links produces
        identical contention — the reduction the refactor relies on."""
        topo, contention = self._contention()
        sites = [s for s in sorted(topo.sites)]
        links = [Link(a, b, rtt_ms=topo.site_rtt_ms(a, b),
                      bandwidth_bps=topo.link_bandwidth_bps((a, b)))
                 for i, a in enumerate(sites) for b in sites[i + 1:]]
        rebuilt = Topology(
            sites=[topo.sites[s] for s in sites], links=links,
            lan_rtt_ms=topo.lan_rtt_ms, lan_bw_bps=topo.lan_bw_bps)
        plan = ([h for h in rebuilt.hosts_in_site("nancy")[:10]
                 for _ in range(4)]
                + [h for h in rebuilt.hosts_in_site("lyon")[:5]
                   for _ in range(4)]
                + [h for h in rebuilt.hosts_in_site("bordeaux")[:3]])
        routed = ContentionModel(rebuilt).plan(plan)
        assert routed.link_loads() == contention.link_loads()
        for a, b in [("nancy", "lyon"), ("nancy", "bordeaux"),
                     ("lyon", "bordeaux")]:
            assert (routed.pair_bw_bps(rebuilt.hosts_in_site(a)[0],
                                       rebuilt.hosts_in_site(b)[0])
                    == contention.pair_bw_bps(topo.hosts_in_site(a)[0],
                                              topo.hosts_in_site(b)[0]))
