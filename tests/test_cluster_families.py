"""The TopologyFamily registry: schema validation, builders, shims.

The api_redesign contract (DESIGN.md §14): cluster recipes are
declarative families with a parameter schema, a misspelled parameter
fails at *spec-construction* time with the accepted names in the
message, generated families build deterministically from ``topo_seed``,
and the legacy ``register_cluster_kind``/``cluster_kinds`` entry
points keep working behind a one-shot stderr deprecation note.
"""

import pytest

from repro.cluster import (ClusterSpec, FamilyParam, TopologyFamily,
                           build_fat_sites_cluster,
                           build_scale_free_cluster,
                           build_small_world_cluster, cluster_kinds,
                           family_names, get_family, register_cluster_kind,
                           register_family)
from repro.net.families import GENERATED_FAMILIES


class TestRegistry:
    def test_builtin_families_registered(self):
        names = family_names()
        for kind in ("grid5000", "grid5000-latratio", "small",
                     "scale_free", "small_world", "fat_sites"):
            assert kind in names

    def test_family_declares_schema(self):
        family = get_family("scale_free")
        assert set(family.param_names()) == {
            "sites", "m", "hosts_per_site", "cores_per_host", "topo_seed"}
        assert family.defaults()["sites"] == 20

    def test_unknown_family_lookup(self):
        with pytest.raises(KeyError):
            get_family("quake")


class TestSpecValidation:
    def test_unknown_param_fails_at_construction(self):
        with pytest.raises(ValueError, match="rewire"):
            ClusterSpec(kind="scale_free", params=(("rewire_p", 0.1),))

    def test_error_names_family_and_accepted_params(self):
        with pytest.raises(ValueError, match="scale_free.*accepted"):
            ClusterSpec(kind="scale_free", params=(("bogus", 1),))

    def test_unknown_family_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown topology family"):
            ClusterSpec(kind="quake")

    def test_valid_generated_spec_builds(self):
        spec = ClusterSpec(kind="small_world", boot=False,
                           params=(("sites", 6),))
        cluster = spec.build(seed=1)
        assert len(cluster.topology.sites) == 6

    def test_with_params_revalidates(self):
        spec = ClusterSpec(kind="fat_sites", boot=False)
        with pytest.raises(ValueError, match="fat_sites"):
            spec.with_params(m=3)


class TestGeneratedBuilders:
    @pytest.mark.parametrize("family", GENERATED_FAMILIES)
    def test_spec_build_deterministic(self, family):
        spec = ClusterSpec(kind=family, boot=False,
                           params=(("sites", 8), ("topo_seed", 4)))
        a, b = spec.build(seed=0), spec.build(seed=0)
        assert sorted(a.topology.sites) == sorted(b.topology.sites)
        assert (sorted(a.topology._links)
                == sorted(b.topology._links))

    def test_builders_route_and_boot(self):
        cluster = build_scale_free_cluster(sites=6, topo_seed=1)
        assert cluster.topology.routed
        assert cluster._booted
        assert len(cluster.mpds) == cluster.topology.n_hosts
        small = build_small_world_cluster(sites=6, boot=False)
        assert not small._booted
        fat = build_fat_sites_cluster(sites=6, router_groups=2,
                                      boot=False)
        assert fat.topology.transit

    def test_topo_seed_changes_topology_not_simulation_seed(self):
        a = build_scale_free_cluster(sites=10, topo_seed=0, boot=False)
        b = build_scale_free_cluster(sites=10, topo_seed=1, boot=False,
                                     seed=99)
        c = build_scale_free_cluster(sites=10, topo_seed=0, boot=False,
                                     seed=99)
        assert sorted(a.topology._links) != sorted(b.topology._links)
        assert sorted(a.topology._links) == sorted(c.topology._links)


class TestDeprecatedShims:
    def test_register_cluster_kind_still_registers(self, capsys):
        calls = {}

        def legacy_builder(seed=0, config=None, boot=True, **kw):
            calls["kw"] = kw
            return ClusterSpec(kind="small", boot=False).build(seed=seed)

        register_cluster_kind("legacy-test-kind", legacy_builder)
        err = capsys.readouterr().err
        assert ("deprecated" in err
                or "register_cluster_kind" not in err)  # note is one-shot
        # Legacy registrations skip schema validation (params=None):
        # any kwarg reaches the builder.
        spec = ClusterSpec(kind="legacy-test-kind",
                           params=(("whatever", 3),))
        spec.build(seed=0)
        assert calls["kw"] == {"whatever": 3}

    def test_cluster_kinds_matches_family_names(self, capsys):
        assert cluster_kinds() == family_names()
        capsys.readouterr()

    def test_note_printed_once_per_process(self, capsys):
        cluster_kinds()
        cluster_kinds()
        err = capsys.readouterr().err
        assert err.count("cluster_kinds() is deprecated") <= 1


class TestFamilyDataclass:
    def test_validate_accepts_declared(self):
        family = TopologyFamily(
            name="t", builder=lambda **kw: None,
            params=(FamilyParam("x", 1),))
        family.validate({"x": 2})
        with pytest.raises(ValueError, match="accepted"):
            family.validate({"y": 2})

    def test_build_passes_through(self):
        seen = {}

        def builder(seed=0, config=None, boot=True, **params):
            seen.update(seed=seed, boot=boot, **params)
            return "cluster"

        family = TopologyFamily(name="t", builder=builder,
                                params=(FamilyParam("x", 1),))
        assert family.build(seed=5, boot=False, x=9) == "cluster"
        assert seen == {"seed": 5, "boot": False, "x": 9}
