"""Paper Table 1 fidelity."""

import pytest

from repro.grid5000.resources import (
    CLUSTERS,
    CPU_SPEEDS,
    cluster_by_name,
    total_cores,
    total_hosts,
)

#: (site, cluster, cpu, nodes, cpus, cores) — Table 1 verbatim.
TABLE1 = [
    ("nancy", "grelon", "Intel Xeon 5110", 60, 120, 240),
    ("lyon", "capricorn", "AMD Opteron 246", 50, 100, 100),
    ("rennes", "paravent", "AMD Opteron 246", 90, 180, 180),
    ("bordeaux", "bordereau", "AMD Opteron 2218", 60, 120, 240),
    ("grenoble", "idpot", "Intel Xeon IA32", 8, 16, 16),
    ("grenoble", "idcalc", "Intel Itanium 2", 12, 24, 48),
    ("sophia", "azur", "AMD Opteron 246", 32, 64, 64),
    ("sophia", "sol", "AMD Opteron 2218", 38, 76, 152),
]


class TestTable1:
    def test_row_count(self):
        assert len(CLUSTERS) == 8

    @pytest.mark.parametrize("site,name,cpu,nodes,cpus,cores", TABLE1)
    def test_rows_verbatim(self, site, name, cpu, nodes, cpus, cores):
        c = cluster_by_name(name)
        assert (c.site, c.cpu_model, c.nodes, c.cpus, c.cores) == (
            site, cpu, nodes, cpus, cores)

    def test_totals(self):
        """The paper's §5.1 narrative: 350 hosts overall."""
        assert total_hosts() == 350
        assert total_cores() == 1040

    def test_cores_per_node_match_paper_p_settings(self):
        expected = {"grelon": 4, "capricorn": 2, "paravent": 2,
                    "bordereau": 4, "idpot": 2, "idcalc": 4,
                    "azur": 2, "sol": 4}
        for name, per_node in expected.items():
            assert cluster_by_name(name).cores_per_node == per_node

    def test_unknown_cluster_raises(self):
        with pytest.raises(KeyError):
            cluster_by_name("nosuch")

    def test_all_cpus_have_speeds(self):
        for c in CLUSTERS:
            assert c.cpu_model in CPU_SPEEDS
            assert 0.3 < CPU_SPEEDS[c.cpu_model] <= 1.5
