"""Built Grid'5000 topology: legend values, RTT matrix, bandwidths."""

import pytest

from repro.grid5000.builder import build_topology, paper_site_legend
from repro.grid5000.sites import (
    SITE_ORDER,
    SITE_RTT_MS_FROM_NANCY,
    site_rtt_matrix,
    wan_bandwidth_bps,
)

#: Figure-legend rows: (site, RTT ms, hosts, cores).
LEGEND = {
    "nancy": (0.087, 60, 240),
    "lyon": (10.576, 50, 100),
    "rennes": (11.612, 90, 180),
    "bordeaux": (12.674, 60, 240),
    "grenoble": (13.204, 20, 64),
    "sophia": (17.167, 70, 216),
}


@pytest.fixture(scope="module")
def topo():
    return build_topology()


class TestLegend:
    def test_site_totals(self, topo):
        for site, (_rtt, hosts, cores) in LEGEND.items():
            assert topo.sites[site].n_hosts == hosts, site
            assert topo.sites[site].n_cores == cores, site

    def test_legend_rows_sorted_by_descending_rtt(self, topo):
        rows = paper_site_legend(topo)
        rtts = [row[1] for row in rows]
        assert rtts == sorted(rtts, reverse=True)
        assert rows[-1][0] == "nancy"

    def test_rtt_to_nancy_values(self, topo):
        nancy = topo.host("grelon-1.nancy")
        for site, (rtt, _h, _c) in LEGEND.items():
            if site == "nancy":
                continue
            other = topo.hosts_in_site(site)[0]
            assert topo.base_rtt_ms(nancy, other) == pytest.approx(rtt)

    def test_site_order_matches_rtt_ranking(self):
        rtts = [SITE_RTT_MS_FROM_NANCY[s] for s in SITE_ORDER]
        assert rtts == sorted(rtts)


class TestNetworkModel:
    def test_bordeaux_links_at_1gbps(self):
        for other in ("nancy", "lyon", "rennes", "grenoble", "sophia"):
            assert wan_bandwidth_bps("bordeaux", other) == pytest.approx(1e9)

    def test_backbone_at_10gbps(self):
        assert wan_bandwidth_bps("nancy", "sophia") == pytest.approx(10e9)

    def test_same_site_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            wan_bandwidth_bps("nancy", "nancy")

    def test_rtt_matrix_complete(self):
        matrix = site_rtt_matrix()
        names = [s for s in SITE_ORDER]
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                key = (a, b) if (a, b) in matrix else (b, a)
                assert key in matrix

    def test_overlap_keeps_triangle_inequality_to_nancy(self):
        """site-to-site must not be cheaper than |r_a - r_b| (physics)."""
        matrix = site_rtt_matrix()
        for (a, b), rtt in matrix.items():
            if "nancy" in (a, b):
                continue
            ra = SITE_RTT_MS_FROM_NANCY[a]
            rb = SITE_RTT_MS_FROM_NANCY[b]
            assert rtt >= abs(ra - rb) - 1e-9

    def test_lan_rtt_is_nancy_legend_value(self, topo):
        a = topo.host("grelon-1.nancy")
        b = topo.host("grelon-2.nancy")
        assert topo.base_rtt_ms(a, b) == pytest.approx(0.087)

    def test_custom_cluster_subset(self):
        from repro.grid5000.resources import CLUSTERS

        topo = build_topology(clusters=[c for c in CLUSTERS
                                        if c.site in ("nancy", "lyon")])
        assert set(topo.sites) == {"nancy", "lyon"}
        assert topo.n_hosts == 110
