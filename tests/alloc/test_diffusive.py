"""Diffusive rebalancing decision functions (pure, deterministic)."""

from repro.alloc import get_strategy
from repro.alloc.diffusive import (DiffusivePolicy, DiffusiveStrategy,
                                   diffusive_moves, neighbor_map)
from tests.conftest import make_small_topology


class TestNeighborMap:
    def test_k_nearest_by_rtt(self):
        topo = make_small_topology()
        names = [h.name for h in topo.all_hosts()]
        nmap = neighbor_map(topo, names, k=3)
        # An alpha host's three nearest peers are the other alpha
        # hosts: the LAN beats every 10/20 ms cross-site path.
        assert all(nb.endswith(".alpha") for nb in nmap["a1-1.alpha"])
        assert "a1-1.alpha" not in nmap["a1-1.alpha"]
        assert len(nmap["a1-1.alpha"]) == 3

    def test_k_larger_than_peer_set(self):
        topo = make_small_topology()
        names = [h.name for h in topo.all_hosts()][:4]
        nmap = neighbor_map(topo, names, k=99)
        assert all(len(nbs) == 3 for nbs in nmap.values())

    def test_k_zero_and_determinism(self):
        topo = make_small_topology()
        names = [h.name for h in topo.all_hosts()]
        assert all(nbs == [] for nbs in neighbor_map(topo, names, 0).values())
        assert neighbor_map(topo, names, 2) == neighbor_map(topo, names, 2)


class TestDiffusiveMoves:
    def test_hot_host_sheds_to_coldest_neighbor(self):
        loads = {"a": 2.0, "b": 0.0, "c": 0.5}
        neighbors = {"a": ["b", "c"], "b": ["a"], "c": ["a"]}
        moves = diffusive_moves(loads, neighbors, threshold=0.5, max_moves=2)
        assert moves == [("a", "b")]

    def test_threshold_gates_marginal_gradients(self):
        loads = {"a": 1.0, "b": 0.6}
        neighbors = {"a": ["b"], "b": ["a"]}
        assert diffusive_moves(loads, neighbors, 0.5, 2) == []
        assert diffusive_moves(loads, neighbors, 0.3, 2) == [("a", "b")]

    def test_working_copy_prevents_dogpiling(self):
        """Two hot hosts must not both dump onto the same cold one:
        the first move's load bump makes the gradient vanish."""
        loads = {"a": 2.0, "b": 2.0, "c": 0.0}
        neighbors = {h: [o for o in "abc" if o != h] for h in "abc"}
        moves = diffusive_moves(loads, neighbors, threshold=1.5, max_moves=4)
        assert moves == [("a", "c")]

    def test_max_moves_cap_and_empty_inputs(self):
        loads = {"a": 3.0, "b": 3.0, "c": 0.0, "d": 0.0}
        neighbors = {h: [o for o in "abcd" if o != h] for h in "abcd"}
        assert len(diffusive_moves(loads, neighbors, 0.5, 1)) == 1
        assert diffusive_moves(loads, neighbors, 0.5, 0) == []
        assert diffusive_moves({}, {}, 0.5, 2) == []
        assert diffusive_moves(loads, {}, 0.5, 2) == []

    def test_no_same_tick_ping_pong(self):
        """Regression: a recipient must not shed within the same tick.
        The +1.0 working bump would otherwise manufacture a reverse
        gradient and the copy would bounce straight back."""
        loads = {"a": 1.0, "b": 0.6}
        neighbors = {"a": ["b"], "b": ["a"]}
        assert diffusive_moves(loads, neighbors, 0.3, 4) == [("a", "b")]

    def test_unknown_neighbors_are_skipped(self):
        loads = {"a": 2.0, "b": 0.0}
        neighbors = {"a": ["ghost", "b"]}
        assert diffusive_moves(loads, neighbors, 0.5, 2) == [("a", "b")]


class TestStrategy:
    def test_registered_and_needs_topology(self):
        strategy = get_strategy("diffusive")
        assert isinstance(strategy, DiffusiveStrategy)
        assert strategy.needs_topology is True

    def test_placement_matches_spread(self):
        """Submit-time placement is plain spread; the diffusion
        happens at runtime through the balancer, not the plan."""
        spread = get_strategy("spread").distribute([4, 4, 2, 2], n=6, r=1)
        diffusive = get_strategy("diffusive").distribute([4, 4, 2, 2],
                                                         n=6, r=1)
        assert diffusive == spread


class TestPolicy:
    def test_defaults(self):
        policy = DiffusivePolicy()
        assert policy.period_s == 30.0
        assert policy.neighbor_k == 3
        assert policy.threshold == 0.75
        assert policy.max_moves_per_tick == 2
