"""Site-affine and auto strategies (future-work extensions)."""

import pytest

from repro.alloc import (
    AutoStrategy,
    ConcentrateStrategy,
    ReservedHost,
    SiteAffineStrategy,
    SpreadStrategy,
    build_plan,
    choose_strategy_for_app,
    get_strategy,
)
from repro.net.topology import Host


def rh(i, p, site="s"):
    return ReservedHost(Host(f"h{i}.{site}", site, "c", cores=p), p_limit=p,
                        latency_ms=float(i))


class TestSiteAffine:
    def test_packs_local_then_spreads(self):
        # 2 local quad-cores + 4 remote duals, n=12.
        caps = [4, 4, 2, 2, 2, 2]
        u = SiteAffineStrategy(local_hosts=2).distribute(caps, 12, 1)
        assert u[:2] == [4, 4]              # local packed
        assert u[2:] == [1, 1, 1, 1]        # remainder spread

    def test_all_local_fits(self):
        u = SiteAffineStrategy(local_hosts=3).distribute([4, 4, 4], 8, 1)
        assert u == [4, 4, 0]

    def test_no_local_is_pure_spread(self):
        caps = [2, 2, 2, 2]
        affine = SiteAffineStrategy(local_hosts=0).distribute(caps, 6, 1)
        spread = SpreadStrategy().distribute(caps, 6, 1)
        assert affine == spread

    def test_all_local_is_pure_concentrate(self):
        caps = [2, 2, 2, 2]
        affine = SiteAffineStrategy(local_hosts=4).distribute(caps, 6, 1)
        conc = ConcentrateStrategy().distribute(caps, 6, 1)
        assert affine == conc

    def test_exhaustion_raises(self):
        with pytest.raises(Exception):
            SiteAffineStrategy(local_hosts=1).distribute([1, 1], 5, 1)

    def test_negative_local_rejected(self):
        with pytest.raises(ValueError):
            SiteAffineStrategy(local_hosts=-1)

    def test_registered(self):
        strat = get_strategy("site-affine", local_hosts=2)
        assert isinstance(strat, SiteAffineStrategy)

    def test_plan_valid_with_replication(self):
        slist = [rh(i, 4) for i in range(4)]
        plan = build_plan(SiteAffineStrategy(local_hosts=2), slist, n=4, r=2)
        plan.validate()


class TestAuto:
    def test_comm_bound_chooses_concentrate(self):
        assert choose_strategy_for_app(2.0, beta=0.3) == "concentrate"

    def test_compute_bound_chooses_spread(self):
        assert choose_strategy_for_app(0.05, beta=0.15) == "spread"

    def test_delegation_matches_choice(self):
        caps = [4, 4, 4]
        auto_c = AutoStrategy(comm_compute_ratio=3.0)
        assert auto_c.chosen == "concentrate"
        assert (auto_c.distribute(caps, 6, 1)
                == ConcentrateStrategy().distribute(caps, 6, 1))
        auto_s = AutoStrategy(comm_compute_ratio=0.01)
        assert auto_s.chosen == "spread"
        assert (auto_s.distribute(caps, 6, 1)
                == SpreadStrategy().distribute(caps, 6, 1))

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            AutoStrategy(comm_compute_ratio=-1)

    def test_registered(self):
        strat = get_strategy("auto", comm_compute_ratio=5.0)
        assert strat.chosen == "concentrate"


class TestAppProfiles:
    """The auto rule encodes §5.2: IS -> concentrate, EP -> spread."""

    def test_is_profile_selects_concentrate(self, small_topology):
        """At the paper's scales (n >= 64) IS is communication bound."""
        from repro.apps import AppEnv, ISBenchmark
        from repro.mpi.costmodel import CostParams

        env = AppEnv(topology=small_topology,
                     cost_params=CostParams(msg_fixed_s=3.5e-3))
        hosts = (small_topology.all_hosts() * 7)[:64]
        ratio = ISBenchmark("B").comm_compute_ratio(hosts, 64, env)
        assert choose_strategy_for_app(ratio, 0.25) == "concentrate"

    def test_ep_profile_selects_spread(self, small_topology):
        from repro.apps import AppEnv, EPBenchmark
        from repro.mpi.costmodel import CostParams

        env = AppEnv(topology=small_topology,
                     cost_params=CostParams(msg_fixed_small_s=3e-4))
        hosts = [h for h in small_topology.all_hosts()][:8]
        ratio = EPBenchmark("B").comm_compute_ratio(hosts, 8, env)
        assert choose_strategy_for_app(ratio, 0.15) == "spread"


class TestMiddlewareIntegration:
    def test_site_affine_via_middleware(self, small_cluster):
        from repro.middleware.jobs import JobRequest, JobStatus

        res = small_cluster.submit_and_run(
            JobRequest(n=18, strategy="site-affine"))
        assert res.status is JobStatus.SUCCESS
        # alpha (submitter site, 4x4 cores) packed first.
        assert res.allocation.cores_by_site()["alpha"] == 16
        # Remainder spread one-per-host beyond the site.
        remote = {s: c for s, c in res.allocation.cores_by_site().items()
                  if s != "alpha"}
        assert sum(remote.values()) == 2
