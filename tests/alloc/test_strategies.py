"""Spread / concentrate / block distribution semantics (paper §4.3)."""

import pytest

from repro.alloc import (
    AllocationError,
    BlockStrategy,
    ConcentrateStrategy,
    SpreadStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.alloc.base import Strategy


class TestSpread:
    def test_one_process_per_host_first_pass(self):
        u = SpreadStrategy().distribute([4, 4, 4, 4], n=4, r=1)
        assert u == [1, 1, 1, 1]

    def test_round_robin_second_pass(self):
        u = SpreadStrategy().distribute([4, 4, 4], n=5, r=1)
        assert u == [2, 2, 1]

    def test_respects_capacity(self):
        u = SpreadStrategy().distribute([1, 1, 4], n=5, r=1)
        assert u == [1, 1, 3]

    def test_paper_stair_shape(self):
        """More processes than hosts: closest hosts double up first."""
        capacities = [4] * 10
        u = SpreadStrategy().distribute(capacities, n=13, r=1)
        assert u == [2, 2, 2, 1, 1, 1, 1, 1, 1, 1]

    def test_capacity_exhaustion_raises(self):
        with pytest.raises(AllocationError):
            SpreadStrategy().distribute([1, 1], n=3, r=1)

    def test_replication_multiplies_total(self):
        u = SpreadStrategy().distribute([4, 4, 4], n=3, r=2)
        assert sum(u) == 6


class TestConcentrate:
    def test_fills_first_host_first(self):
        u = ConcentrateStrategy().distribute([4, 4, 4], n=6, r=1)
        assert u == [4, 2, 0]

    def test_exact_fit(self):
        u = ConcentrateStrategy().distribute([4, 4], n=8, r=1)
        assert u == [4, 4]

    def test_single_host_enough(self):
        u = ConcentrateStrategy().distribute([8, 8], n=4, r=1)
        assert u == [4, 0]

    def test_capacity_exhaustion_raises(self):
        with pytest.raises(AllocationError):
            ConcentrateStrategy().distribute([2, 2], n=5, r=1)

    def test_prefers_low_latency_prefix(self):
        """All processes land in the shortest prefix of slist."""
        u = ConcentrateStrategy().distribute([2, 2, 2, 2, 2], n=6, r=1)
        assert u == [2, 2, 2, 0, 0]


class TestBlock:
    def test_block_one_is_spread(self):
        caps = [4, 2, 4, 1]
        assert (BlockStrategy(block=1).distribute(caps, 7, 1)
                == SpreadStrategy().distribute(caps, 7, 1))

    def test_big_block_is_concentrate(self):
        caps = [4, 2, 4, 1]
        assert (BlockStrategy(block=99).distribute(caps, 7, 1)
                == ConcentrateStrategy().distribute(caps, 7, 1))

    def test_intermediate_block(self):
        u = BlockStrategy(block=2).distribute([4, 4, 4], n=8, r=1)
        assert u == [4, 2, 2]

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            BlockStrategy(block=0)

    def test_exhaustion_raises(self):
        with pytest.raises(AllocationError):
            BlockStrategy(block=2).distribute([1], n=2, r=1)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"spread", "concentrate", "block"} <= set(available_strategies())

    def test_get_strategy_with_kwargs(self):
        strat = get_strategy("block", block=3)
        assert strat.block == 3

    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("nope")

    def test_register_requires_name(self):
        class Anonymous(Strategy):
            name = ""

            def distribute(self, capacities, n, r):  # pragma: no cover
                return []

        with pytest.raises(ValueError):
            register_strategy(Anonymous)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            @register_strategy
            class Fake(Strategy):
                name = "spread"

                def distribute(self, capacities, n, r):  # pragma: no cover
                    return []
