"""The communication-aware strategy family (Bender et al. spirit).

Covers the three ISSUE-mandated properties:

* ``diameter_concentrate`` relaxes its bound *only* when §4.2
  feasibility would fail, and records the bound it actually used;
* ``bandwidth_spread`` is deterministic under equal-bandwidth ties
  (lowest slist index wins);
* every registered strategy satisfies the §4.2/§4.3 capacity
  invariants on randomized clusters (plan.validate() cross-check).
"""

import pytest

from repro.alloc import (
    BandwidthSpreadStrategy,
    ConcentrateStrategy,
    DiameterConcentrateStrategy,
    ReservedHost,
    SpreadStrategy,
    TopoBlockStrategy,
    available_strategies,
    build_plan,
    dominant_group_size,
    get_strategy,
)
from repro.alloc.commaware import WAN_CONTENTION_FACTOR, contended_pair_bw_bps
from repro.net.topology import Cluster, Site, Topology


def make_topology(lan_bw=1.0e9, bordeaux_bw=1.0e9, wan_bw=10.0e9):
    """Paper-shaped 4-site topology: near/far/slow-link sites."""
    sites = [
        Site("nancy", (Cluster("n1", "nancy", "X", 4, 4, 16),)),
        Site("lyon", (Cluster("l1", "lyon", "X", 4, 4, 16),)),
        Site("rennes", (Cluster("r1", "rennes", "X", 4, 4, 16),)),
        Site("bordeaux", (Cluster("b1", "bordeaux", "X", 4, 4, 16),)),
    ]
    return Topology(
        sites=sites,
        site_rtt_ms={("lyon", "nancy"): 10.0, ("nancy", "rennes"): 12.0,
                     ("bordeaux", "nancy"): 13.0, ("lyon", "rennes"): 14.0,
                     ("bordeaux", "lyon"): 16.0, ("bordeaux", "rennes"): 18.0},
        site_bw_bps={("bordeaux", "nancy"): bordeaux_bw,
                     ("bordeaux", "lyon"): bordeaux_bw,
                     ("bordeaux", "rennes"): bordeaux_bw},
        lan_rtt_ms=0.1,
        lan_bw_bps=lan_bw,
        default_wan_bw_bps=wan_bw,
    )


def slist_for(topology, sites=("nancy", "lyon", "rennes", "bordeaux"),
              per_site=4, p_limit=4):
    """Reserved hosts in latency order (nancy first), like the MPD."""
    rtt = {"nancy": 0.1, "lyon": 10.0, "rennes": 12.0, "bordeaux": 13.0}
    out = []
    for site in sites:
        for host in topology.hosts_in_site(site)[:per_site]:
            out.append(ReservedHost(host=host, p_limit=p_limit,
                                    latency_ms=rtt[site]))
    return out


@pytest.fixture
def topology():
    return make_topology()


class TestPairwiseMetrics:
    def test_latency_diameter(self, topology):
        hosts = [topology.hosts_in_site("nancy")[0],
                 topology.hosts_in_site("lyon")[0],
                 topology.hosts_in_site("rennes")[0]]
        assert topology.latency_diameter_ms(hosts) == 14.0
        assert topology.latency_diameter_ms(hosts[:1]) == 0.0
        same_site = topology.hosts_in_site("nancy")[:2]
        assert topology.latency_diameter_ms(same_site) == 0.1

    def test_min_bandwidth(self, topology):
        nancy = topology.hosts_in_site("nancy")[0]
        bordeaux = topology.hosts_in_site("bordeaux")[0]
        assert topology.min_bandwidth_bps([nancy, bordeaux]) == 1.0e9
        assert topology.min_bandwidth_bps([nancy]) == float("inf")

    def test_backbone_ignores_nic_clamp(self, topology):
        nancy = topology.hosts_in_site("nancy")[0]
        lyon = topology.hosts_in_site("lyon")[0]
        # Bottleneck is NIC-clamped to the LAN rate; backbone is not.
        assert topology.bandwidth_bps(nancy, lyon) == 1.0e9
        assert topology.backbone_bandwidth_bps(nancy, lyon) == 10.0e9

    def test_contended_score_ranks_lan_fastwan_slowwan(self, topology):
        nancy = topology.hosts_in_site("nancy")
        lyon = topology.hosts_in_site("lyon")[0]
        bordeaux = topology.hosts_in_site("bordeaux")[0]
        lan = contended_pair_bw_bps(topology, nancy[0], nancy[1])
        fast = contended_pair_bw_bps(topology, nancy[0], lyon)
        slow = contended_pair_bw_bps(topology, nancy[0], bordeaux)
        assert lan > fast > slow
        assert fast == 10.0e9 / WAN_CONTENTION_FACTOR

    def test_site_representatives_dedupe(self, topology):
        host = topology.hosts_in_site("nancy")[0]
        other = topology.hosts_in_site("nancy")[1]
        reps, same_site_pair = topology.site_representatives([host, host])
        assert reps == [host] and not same_site_pair
        reps, same_site_pair = topology.site_representatives([host, other])
        assert reps == [host] and same_site_pair


class TestBandwidthSpread:
    def test_avoids_slow_backbone_site(self, topology):
        """16 procs fit on nancy+lyon+rennes; bordeaux must stay idle
        even though it is closer (latency) than rennes."""
        strategy = BandwidthSpreadStrategy(topology=topology)
        slist = slist_for(topology)
        plan = build_plan(strategy, slist, n=16, r=2)
        assert plan.cores_by_site().get("bordeaux", 0) == 0
        assert plan.total_processes == 32

    def test_spreads_round_robin_over_selection(self, topology):
        """Selection stops at sufficient capacity (2 hosts for n=6);
        the round-robin then balances within the selection."""
        strategy = BandwidthSpreadStrategy(topology=topology)
        slist = slist_for(topology, sites=("nancy",), per_site=4)
        u = strategy.distribute_over(slist, [4, 4, 4, 4], n=6, r=1)
        assert u == [3, 3, 0, 0]

    def test_deterministic_under_equal_bandwidth_ties(self, topology):
        """All-LAN candidates tie on bandwidth: selection must follow
        slist order, run after run."""
        strategy = BandwidthSpreadStrategy(topology=topology)
        slist = slist_for(topology, sites=("nancy",), per_site=4)
        runs = [strategy.distribute_over(slist, [2, 2, 2, 2], n=5, r=1)
                for _ in range(5)]
        assert all(u == runs[0] for u in runs)
        # Lowest slist indices are selected on a tie; the remainder
        # lands on the earliest of them.
        assert runs[0] == [2, 2, 1, 0]

    def test_needs_more_hosts_than_capacity_minimum_for_replicas(
            self, topology):
        """r forces the selection past the capacity stop rule."""
        strategy = BandwidthSpreadStrategy(topology=topology)
        slist = slist_for(topology, sites=("nancy",), per_site=4, p_limit=4)
        plan = build_plan(strategy, slist, n=2, r=3)
        assert len(plan.used_hosts()) >= 3

    def test_fallback_without_slist_is_spread(self):
        caps = [4, 2, 4, 1]
        assert (BandwidthSpreadStrategy().distribute(caps, 7, 1)
                == SpreadStrategy().distribute(caps, 7, 1))


class TestDiameterConcentrate:
    def test_respects_bound_when_feasible(self, topology):
        """Demand fits nancy+lyon (diameter 10); rennes adds nothing."""
        strategy = DiameterConcentrateStrategy(diameter_ms=10.0,
                                               topology=topology)
        slist = slist_for(topology)
        plan = build_plan(strategy, slist, n=24, r=1)
        assert set(plan.cores_by_site()) == {"nancy", "lyon"}
        assert strategy.effective_diameter_ms == 10.0

    def test_relaxes_only_on_feasibility_failure(self, topology):
        """n=40 > nancy+lyon capacity (32): the bound must move up to
        the next distinct pairwise RTT that admits enough capacity —
        and no further."""
        strategy = DiameterConcentrateStrategy(diameter_ms=10.0,
                                               topology=topology)
        slist = slist_for(topology)
        plan = build_plan(strategy, slist, n=40, r=1)
        assert plan.total_processes == 40
        assert strategy.effective_diameter_ms > 10.0
        # nancy/lyon/rennes (diameter 14) suffice; bordeaux stays out.
        assert plan.cores_by_site().get("bordeaux", 0) == 0
        assert strategy.effective_diameter_ms == 14.0

    def test_zero_bound_packs_single_site(self, topology):
        strategy = DiameterConcentrateStrategy(diameter_ms=0.2,
                                               topology=topology)
        slist = slist_for(topology)
        plan = build_plan(strategy, slist, n=16, r=1)
        assert set(plan.cores_by_site()) == {"nancy"}
        assert strategy.effective_diameter_ms == 0.2

    def test_matches_concentrate_when_bound_unbinding(self, topology):
        strategy = DiameterConcentrateStrategy(diameter_ms=1e9,
                                               topology=topology)
        slist = slist_for(topology)
        caps = [r.capacity(40) for r in slist]
        assert (strategy.distribute_over(slist, caps, 40, 1)
                == ConcentrateStrategy().distribute(caps, 40, 1))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            DiameterConcentrateStrategy(diameter_ms=-1.0)

    def test_fallback_without_slist_is_concentrate(self):
        caps = [4, 2, 4, 1]
        assert (DiameterConcentrateStrategy().distribute(caps, 7, 1)
                == ConcentrateStrategy().distribute(caps, 7, 1))


class TestTopoBlock:
    def test_dominant_group_size(self):
        assert dominant_group_size(1) == 1
        assert dominant_group_size(4) == 2
        assert dominant_group_size(16) == 4
        assert dominant_group_size(100) == 8
        assert dominant_group_size(512) == 16
        with pytest.raises(ValueError):
            dominant_group_size(0)

    def test_whole_blocks_per_cluster(self, topology):
        """With g=4, every cluster's load is a multiple of 4 (plus at
        most one remainder tail)."""
        strategy = TopoBlockStrategy(group=4, topology=topology)
        slist = slist_for(topology)
        plan = build_plan(strategy, slist, n=26, r=1)
        by_cluster = {}
        for reserved, used in zip(plan.slist, plan.usage):
            key = (reserved.host.site, reserved.host.cluster)
            by_cluster[key] = by_cluster.get(key, 0) + used
        tails = [load % 4 for load in by_cluster.values() if load]
        assert tails.count(0) >= len(tails) - 1

    def test_group_derived_from_n(self, topology):
        strategy = TopoBlockStrategy(topology=topology)
        assert strategy.group_size(100) == 8
        assert TopoBlockStrategy(group=2).group_size(100) == 2

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            TopoBlockStrategy(group=0)

    def test_latency_order_preserved(self, topology):
        """First cluster in latency order fills first."""
        strategy = TopoBlockStrategy(group=4, topology=topology)
        slist = slist_for(topology)
        plan = build_plan(strategy, slist, n=16, r=1)
        assert plan.cores_by_site() == {"nancy": 16}


class TestRegistryAndMiddlewareContract:
    def test_family_registered(self):
        assert {"bandwidth_spread", "diameter_concentrate",
                "topo_block"} <= set(available_strategies())

    def test_needs_topology_flag(self):
        for name in ("bandwidth_spread", "diameter_concentrate",
                     "topo_block"):
            strategy = get_strategy(name)
            assert strategy.needs_topology
            assert strategy.topology is None
        assert not get_strategy("spread").needs_topology

    def test_bind_topology(self, topology):
        strategy = get_strategy("bandwidth_spread")
        strategy.bind_topology(topology)
        assert strategy.topology is topology


class TestCapacityInvariantsRandomized:
    """Every registered strategy, randomized clusters, §4.2 invariants.

    ``build_plan`` runs ``plan.validate()`` (n*r placements, no replica
    collision, u_i <= c_i); we assert it passes for every strategy the
    registry knows, over randomized capacity vectors and topologies.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_all_strategies_validate_on_random_clusters(self, seed):
        import random

        rng = random.Random(seed)
        sites = ["nancy", "lyon", "rennes", "bordeaux"]
        topology = make_topology()
        slist = []
        for site in sites:
            hosts = topology.hosts_in_site(site)
            for host in hosts[:rng.randint(1, 4)]:
                slist.append(ReservedHost(
                    host=host, p_limit=rng.randint(1, 6),
                    latency_ms=rng.uniform(0.1, 20.0)))
        rng.shuffle(slist)
        n = rng.randint(2, 12)
        r = rng.randint(1, 2)
        # Shrink an over-ambitious draw down to a feasible job instead
        # of skipping: every seed must exercise the strategies.  With
        # >= 4 hosts of p_limit >= 1 the loop always terminates at a
        # feasible (n, r), so infeasibility here is a real failure.
        while n > 2 and (sum(res.capacity(n) for res in slist) < n * r
                         or len(slist) < r):
            n -= 1
        assert sum(res.capacity(n) for res in slist) >= n * r, \
            "draw remained infeasible after shrinking n"
        assert len(slist) >= r, "fewer reserved hosts than replicas"
        for name in available_strategies():
            kwargs = {}
            if name == "site-affine":
                kwargs = {"local_hosts": rng.randint(0, len(slist))}
            strategy = get_strategy(name, **kwargs)
            strategy.bind_topology(topology)
            plan = build_plan(strategy, slist, n=n, r=r)  # validates
            assert plan.total_processes == n * r
            assert sum(plan.usage) == n * r
