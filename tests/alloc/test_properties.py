"""Property-based tests (hypothesis) for the §4.3 invariants.

The paper claims, implicitly or explicitly:

* a strategy maps exactly ``n*r`` processes, never beyond host
  capacities (``u_i <= c_i``);
* concentrate uses the shortest possible prefix of ``slist``;
* spread's per-host loads differ by at most 1 among hosts that still
  had headroom;
* cyclic rank assignment never places two copies of a rank on a host
  and gives every rank exactly ``r`` copies;
* block(1) == spread and block(max) == concentrate.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import (
    BlockStrategy,
    ConcentrateStrategy,
    ReservedHost,
    SpreadStrategy,
    build_plan,
    capacities as capacity_vector,
    is_feasible,
)
from repro.net.topology import Host


def make_slist(p_limits):
    return [
        ReservedHost(Host(f"h{i}.s", "s", "c", cores=p), p_limit=p,
                     latency_ms=float(i))
        for i, p in enumerate(p_limits)
    ]


# A feasible (slist, n, r) triple generator.
feasible_cases = st.integers(1, 12).flatmap(
    lambda n: st.integers(1, 3).flatmap(
        lambda r: st.lists(st.integers(1, 8), min_size=r, max_size=20)
        .map(lambda ps: (ps, n, r))
        .filter(lambda case: sum(min(p, case[1]) for p in case[0])
                >= case[1] * case[2])
    )
)

strategy_instances = st.sampled_from([
    SpreadStrategy(),
    ConcentrateStrategy(),
    BlockStrategy(block=1),
    BlockStrategy(block=2),
    BlockStrategy(block=5),
])


@given(case=feasible_cases, strategy=strategy_instances)
@settings(max_examples=200, deadline=None)
def test_distribution_invariants(case, strategy):
    p_limits, n, r = case
    slist = make_slist(p_limits)
    caps = capacity_vector(slist, n)
    usage = strategy.distribute(caps, n, r)
    assert len(usage) == len(slist)
    assert sum(usage) == n * r
    assert all(0 <= u <= c for u, c in zip(usage, caps))


@given(case=feasible_cases)
@settings(max_examples=200, deadline=None)
def test_concentrate_uses_shortest_prefix(case):
    p_limits, n, r = case
    slist = make_slist(p_limits)
    caps = capacity_vector(slist, n)
    usage = ConcentrateStrategy().distribute(caps, n, r)
    # Once a host is not filled to capacity, every later host is empty.
    seen_partial = False
    for u, c in zip(usage, caps):
        if seen_partial:
            assert u == 0
        if u < c:
            seen_partial = True


@given(case=feasible_cases)
@settings(max_examples=200, deadline=None)
def test_spread_is_balanced(case):
    p_limits, n, r = case
    slist = make_slist(p_limits)
    caps = capacity_vector(slist, n)
    usage = SpreadStrategy().distribute(caps, n, r)
    # Hosts below their capacity must be within 1 of the maximum load:
    # round-robin never skips a host with headroom.
    max_u = max(usage)
    for u, c in zip(usage, caps):
        if u < c:
            assert u >= max_u - 1


@given(case=feasible_cases, strategy=strategy_instances)
@settings(max_examples=200, deadline=None)
def test_rank_assignment_invariants(case, strategy):
    p_limits, n, r = case
    slist = make_slist(p_limits)
    plan = build_plan(strategy, slist, n, r)
    # Every rank exactly r copies.
    per_rank = defaultdict(list)
    for placement in plan.placements:
        per_rank[placement.rank].append(placement)
    assert set(per_rank) == set(range(n))
    for rank, copies in per_rank.items():
        assert len(copies) == r
        hosts = [p.host.name for p in copies]
        assert len(set(hosts)) == r, f"rank {rank} replicas collide"
        assert sorted(p.replica for p in copies) == list(range(r))
    # Cancelled = unused slist hosts.
    used_names = {p.host.name for p in plan.placements}
    for reserved, u in zip(plan.slist, plan.usage):
        if u == 0:
            assert reserved.host.name not in used_names
            assert reserved in plan.cancelled


@given(case=feasible_cases)
@settings(max_examples=150, deadline=None)
def test_block_degenerate_equivalences(case):
    p_limits, n, r = case
    slist = make_slist(p_limits)
    caps = capacity_vector(slist, n)
    assert (BlockStrategy(block=1).distribute(caps, n, r)
            == SpreadStrategy().distribute(caps, n, r))
    big = max(caps) if caps else 1
    assert (BlockStrategy(block=big).distribute(caps, n, r)
            == ConcentrateStrategy().distribute(caps, n, r))


@given(
    p_limits=st.lists(st.integers(1, 8), min_size=1, max_size=20),
    n=st.integers(1, 12),
    r=st.integers(1, 3),
)
@settings(max_examples=200, deadline=None)
def test_feasibility_decision_is_sound(p_limits, n, r):
    """is_feasible == True iff some assignment exists; strategies must
    succeed exactly on feasible inputs."""
    slist = make_slist(p_limits)
    ok, _reason = is_feasible(slist, n, r)
    if ok:
        plan = build_plan(SpreadStrategy(), slist, n, r)
        plan.validate()
    else:
        with pytest.raises(Exception):
            build_plan(SpreadStrategy(), slist, n, r)
