"""Feasibility conditions (a) and (b) of §4.2 step 6."""

import pytest

from repro.alloc import (
    InfeasibleAllocation,
    ReservedHost,
    capacities,
    check_feasible,
    is_feasible,
)
from repro.net.topology import Host


def rh(i: int, p: int) -> ReservedHost:
    return ReservedHost(Host(f"h{i}.s", "s", "c", cores=p), p_limit=p)


class TestCapacities:
    def test_c_is_min_p_n(self):
        slist = [rh(0, 2), rh(1, 10)]
        assert capacities(slist, n=4) == [2, 4]

    def test_paper_rationale_p_greater_than_n(self):
        """P > n must clamp: two copies of a rank would share the host."""
        assert capacities([rh(0, 100)], n=3) == [3]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            capacities([rh(0, 1)], n=0)


class TestConditions:
    def test_feasible(self):
        ok, reason = is_feasible([rh(0, 4), rh(1, 4)], n=6, r=1)
        assert ok and reason == "feasible"

    def test_condition_a_fails(self):
        ok, reason = is_feasible([rh(0, 8)], n=2, r=2)
        assert not ok and "(a)" in reason

    def test_condition_b_fails(self):
        ok, reason = is_feasible([rh(0, 1), rh(1, 1)], n=3, r=1)
        assert not ok and "(b)" in reason

    def test_condition_b_counts_clamped_capacity(self):
        # Three hosts, P = [10, 1, 1], n=3, r=2: sum c = 3+1+1 = 5 < 6
        # even though raw P sums to 12 — the min(P, n) clamp binds.
        ok, reason = is_feasible([rh(0, 10), rh(1, 1), rh(2, 1)], n=3, r=2)
        assert not ok and "(b)" in reason

    def test_exact_boundary_feasible(self):
        ok, _ = is_feasible([rh(0, 2), rh(1, 2)], n=2, r=2)
        assert ok

    def test_check_raises(self):
        with pytest.raises(InfeasibleAllocation):
            check_feasible([], n=1, r=1)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            is_feasible([rh(0, 1)], n=1, r=0)

    def test_replication_example_from_paper(self):
        """p2pmpirun -n 3 -r 2 needs at least two hosts (§3.2)."""
        one_host = [rh(0, 6)]
        ok, reason = is_feasible(one_host, n=3, r=2)
        assert not ok
        two_hosts = [rh(0, 3), rh(1, 3)]
        ok, _ = is_feasible(two_hosts, n=3, r=2)
        assert ok
