"""Cyclic rank assignment and plan construction (§4.3)."""

import pytest

from repro.alloc import (
    AllocationError,
    ReservedHost,
    assign_ranks,
    build_plan,
    get_strategy,
)
from repro.net.topology import Host


def rh(i: int, p: int, site: str = "s") -> ReservedHost:
    return ReservedHost(Host(f"h{i}.{site}", site, "c", cores=p),
                        p_limit=p, latency_ms=float(i))


class TestAssignRanks:
    def test_cyclic_numbering(self):
        slist = [rh(0, 3), rh(1, 3)]
        placements = assign_ranks(slist, [3, 3], n=3, r=2)
        assert [(p.rank, p.replica, p.host.name) for p in placements] == [
            (0, 0, "h0.s"), (1, 0, "h0.s"), (2, 0, "h0.s"),
            (0, 1, "h1.s"), (1, 1, "h1.s"), (2, 1, "h1.s"),
        ]

    def test_paper_example_n3_r2(self):
        """§3.2: P0..P2 on H0, replicas on H1."""
        slist = [rh(0, 3), rh(1, 3)]
        placements = assign_ranks(slist, [3, 3], n=3, r=2)
        h0_ranks = sorted(p.rank for p in placements if p.host.name == "h0.s")
        h1_ranks = sorted(p.rank for p in placements if p.host.name == "h1.s")
        assert h0_ranks == h1_ranks == [0, 1, 2]

    def test_wrap_across_hosts(self):
        slist = [rh(0, 2), rh(1, 2), rh(2, 2)]
        placements = assign_ranks(slist, [2, 2, 2], n=3, r=2)
        by_rank = {}
        for p in placements:
            by_rank.setdefault(p.rank, []).append(p.host.name)
        for rank, hosts in by_rank.items():
            assert len(hosts) == 2
            assert len(set(hosts)) == 2, f"rank {rank} collided"

    def test_total_mismatch_raises(self):
        with pytest.raises(AllocationError):
            assign_ranks([rh(0, 4)], [3], n=2, r=1)

    def test_u_exceeding_n_raises(self):
        with pytest.raises(AllocationError):
            assign_ranks([rh(0, 10), rh(1, 10)], [6, 2], n=4, r=2)

    def test_length_mismatch_raises(self):
        with pytest.raises(AllocationError):
            assign_ranks([rh(0, 4)], [2, 2], n=4, r=1)


class TestBuildPlan:
    def test_cancelled_hosts_listed(self):
        slist = [rh(i, 4) for i in range(4)]
        plan = build_plan(get_strategy("concentrate"), slist, n=4, r=1)
        assert plan.usage == [4, 0, 0, 0]
        assert [r.host.name for r in plan.cancelled] == ["h1.s", "h2.s", "h3.s"]

    def test_plan_validates(self):
        slist = [rh(i, 2) for i in range(5)]
        plan = build_plan(get_strategy("spread"), slist, n=6, r=1)
        plan.validate()  # no raise

    def test_infeasible_raises_before_strategy(self):
        with pytest.raises(Exception) as exc:
            build_plan(get_strategy("spread"), [rh(0, 1)], n=5, r=1)
        assert "condition (b)" in str(exc.value)

    def test_aggregations(self):
        slist = [rh(0, 4, "x"), rh(1, 4, "x"), rh(2, 4, "y")]
        plan = build_plan(get_strategy("concentrate"), slist, n=10, r=1)
        assert plan.hosts_by_site() == {"x": 2, "y": 1}
        assert plan.cores_by_site() == {"x": 8, "y": 2}
        assert plan.total_processes == 10

    def test_ranks_on_host(self):
        slist = [rh(0, 4), rh(1, 4)]
        plan = build_plan(get_strategy("concentrate"), slist, n=6, r=1)
        assert plan.ranks_on_host("h0.s") == [0, 1, 2, 3]
        assert plan.ranks_on_host("h1.s") == [4, 5]

    def test_replicas_of_rank(self):
        slist = [rh(0, 2), rh(1, 2), rh(2, 2)]
        plan = build_plan(get_strategy("spread"), slist, n=3, r=2)
        for rank in range(3):
            copies = plan.replicas_of_rank(rank)
            assert len(copies) == 2
            assert len({p.host.name for p in copies}) == 2

    def test_strategy_returning_bad_usage_caught(self):
        from repro.alloc.base import Strategy

        class Bogus(Strategy):
            name = "bogus-test-only"

            def distribute(self, capacities, n, r):
                return [n * r]  # ignores other hosts, might exceed cap

        slist = [rh(0, 2), rh(1, 2)]
        with pytest.raises(AllocationError):
            build_plan(Bogus(), slist, n=4, r=1)

    def test_summary_mentions_strategy(self):
        slist = [rh(0, 4)]
        plan = build_plan(get_strategy("concentrate"), slist, n=2, r=1)
        assert "concentrate" in plan.summary()
