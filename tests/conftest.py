"""Shared fixtures: small topologies and booted clusters."""

from __future__ import annotations

import pytest

from repro.cluster import P2PMPICluster, build_grid5000_cluster
from repro.net.topology import Cluster, Site, Topology
from repro.sim.core import Simulator


def make_small_topology(lan_rtt_ms: float = 0.1) -> Topology:
    """Three sites, 10 hosts, 24 cores — fast protocol tests.

    alpha: 4 hosts x 4 cores (close), beta: 4 x 2 (10 ms),
    gamma: 2 x 2 (20 ms).
    """
    sites = [
        Site("alpha", (Cluster("a1", "alpha", "X", 4, 4, 16),)),
        Site("beta", (Cluster("b1", "beta", "X", 4, 4, 8),)),
        Site("gamma", (Cluster("g1", "gamma", "X", 2, 2, 4),)),
    ]
    return Topology(
        sites=sites,
        site_rtt_ms={("alpha", "beta"): 10.0, ("alpha", "gamma"): 20.0,
                     ("beta", "gamma"): 25.0},
        hub="alpha",
        lan_rtt_ms=lan_rtt_ms,
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=7)


@pytest.fixture
def small_topology() -> Topology:
    return make_small_topology()


@pytest.fixture
def small_cluster(small_topology) -> P2PMPICluster:
    """Booted 10-host cluster with deterministic, low-noise latency."""
    from repro.middleware.config import MiddlewareConfig

    cluster = P2PMPICluster(
        small_topology,
        seed=11,
        config=MiddlewareConfig(noise_sigma_ms=0.05),
        supernode_host="a1-1.alpha",
        default_submitter="a1-1.alpha",
    )
    return cluster.boot()


@pytest.fixture(scope="session")
def grid5000_cluster() -> P2PMPICluster:
    """One booted full-scale testbed shared by experiment tests."""
    return build_grid5000_cluster(seed=42)
