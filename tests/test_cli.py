"""CLI surface."""

import functools

import pytest

import repro.cli as cli
from repro.cli import build_parser, main, make_app
from repro.cluster import ClusterSpec
from repro.experiments.coallocation import coallocation_spec


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["-n", "8"])
        assert args.n == 8 and args.r == 1 and args.alloc == "spread"
        assert args.prog == "hostname"

    def test_paper_invocation(self):
        args = build_parser().parse_args(
            ["-n", "100", "-r", "2", "-a", "concentrate", "ep"])
        assert (args.n, args.r, args.alloc, args.prog) == (
            100, 2, "concentrate", "ep")

    def test_experiment_flag(self):
        args = build_parser().parse_args(["--experiment", "table1"])
        assert args.experiment == "table1"


class TestMakeApp:
    @pytest.mark.parametrize("name", ["hostname", "ep", "is", "cg"])
    def test_known_programs(self, name):
        assert make_app(name) is not None

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            make_app("quake")


class TestMain:
    def test_missing_n_errors(self, capsys):
        assert main([]) == 2
        assert "-n is mandatory" in capsys.readouterr().err

    def test_single_run(self, capsys):
        code = main(["-n", "8", "-a", "concentrate", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "success" in out and "nancy" in out

    def test_table1(self, capsys):
        assert main(["--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "grelon" in out and "sol" in out and "17.167" in out


class TestEngineFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["--experiment", "fig2"])
        assert args.jobs == 1 and args.out is None and not args.force

    def test_campaign_choice(self):
        args = build_parser().parse_args(
            ["--experiment", "all", "--jobs", "4", "--out", "/tmp/r",
             "--force"])
        assert args.experiment == "all"
        assert (args.jobs, args.out, args.force) == (4, "/tmp/r", True)

    @pytest.fixture
    def fast_fig2(self, monkeypatch):
        """Shrink fig2 to a 2-cell sweep on the small testbed."""
        import repro.experiments.coallocation as coallocation_mod

        monkeypatch.setattr(
            coallocation_mod, "coallocation_spec", functools.partial(
                coallocation_spec, demands=(4, 8),
                cluster_spec=ClusterSpec(kind="small")))

    def test_fig2_runs_stores_and_caches(self, fast_fig2, tmp_path, capsys):
        argv = ["--experiment", "fig2", "--jobs", "2",
                "--out", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[engine] sweep fig2: 2 cells (2 executed, 0 cached)" in first
        assert "concentrate:cores" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(0 executed, 2 cached)" in second

        assert main(argv + ["--force"]) == 0
        third = capsys.readouterr().out
        assert "(2 executed, 0 cached)" in third

    def test_fig2_without_store(self, fast_fig2, capsys):
        assert main(["--experiment", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "[engine] sweep fig2" in out and ".jsonl" not in out


class TestGridOverrides:
    def test_coallocation_small_grid(self, tmp_path, capsys):
        argv = ["--experiment", "coallocation", "--cluster", "small",
                "--demands", "4,8", "--jobs", "2", "--out", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "coallocation: 4 cells (4 executed" in out
        assert "concentrate:hosts" in out and "spread:hosts" in out
        stored = list(tmp_path.glob("coallocation-*.jsonl"))
        assert len(stored) == 1 and stored[0].stat().st_size > 0

    def test_bad_demands_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "coallocation", "--demands", "4,x"])

    def test_commaware_small_report(self, capsys):
        argv = ["--experiment", "commaware", "--cluster", "small",
                "--demands", "4,8"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # All six strategies, and only deterministic report text (the
        # acceptance criterion diffs --jobs 1 against --jobs 2 runs).
        for strategy in ("concentrate", "spread", "block",
                         "bandwidth_spread", "diameter_concentrate",
                         "topo_block"):
            assert strategy in out
        assert " s " not in out.splitlines()[0]

    def test_commaware_byte_identical_across_jobs(self, capsys):
        argv = ["--experiment", "commaware", "--cluster", "small",
                "--demands", "4,8"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestShardedCampaign:
    """--shard K/N plus the merge/aggregate verbs, end to end."""

    def shard_argv(self, k, n, out):
        return ["--experiment", "coallocation", "--cluster", "small",
                "--demands", "4,8", "--shard", f"{k}/{n}", "--out", out]

    def test_parser_accepts_shard(self):
        args = build_parser().parse_args(
            ["--experiment", "commaware", "--shard", "2/3", "--out", "/x"])
        assert args.shard == (2, 3)

    def test_bad_shard_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--shard", "0/3"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--shard", "nope"])

    def test_shard_requires_experiment_and_out(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["-n", "4", "--shard", "1/2", "--out", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["--experiment", "coallocation", "--shard", "1/2"])
        with pytest.raises(SystemExit):
            main(["--experiment", "table1", "--shard", "1/2",
                  "--out", str(tmp_path)])

    def test_shard_with_force_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--experiment", "coallocation", "--shard", "1/2",
                  "--out", str(tmp_path), "--force"])

    def test_fully_cached_shard_reports_no_checkpoint(self, tmp_path,
                                                      capsys):
        out = str(tmp_path)
        assert main(["--experiment", "coallocation", "--cluster", "small",
                     "--demands", "4,8", "--out", out]) == 0
        capsys.readouterr()
        assert main(self.shard_argv(1, 2, out)) == 0
        text = capsys.readouterr().out
        assert "no checkpoint written" in text
        assert ".partial" not in text

    def test_shard_merge_reproduces_unsharded_store(self, tmp_path, capsys):
        ref = tmp_path / "ref"
        assert main(["--experiment", "coallocation", "--cluster", "small",
                     "--demands", "4,8", "--out", str(ref)]) == 0
        capsys.readouterr()
        for k in (1, 2):
            out = tmp_path / f"shard{k}"
            assert main(self.shard_argv(k, 2, str(out))) == 0
            text = capsys.readouterr().out
            assert f"[shard {k}/2]" in text
            # Shard mode prints the engine line only — no report tables.
            assert "concentrate:hosts" not in text
            assert ".jsonl.partial" in text
        partials = sorted(tmp_path.glob("shard*/coallocation-*.partial"))
        assert len(partials) == 2
        assert not list(tmp_path.glob("shard*/coallocation-*[!l].jsonl"))
        merged = tmp_path / "merged"
        argv = ["merge"] + [str(p) for p in partials] + [
            "--out", str(merged), "--require-complete"]
        assert main(argv) == 0
        assert "[merge]" in capsys.readouterr().out
        reference = next(ref.glob("coallocation-*.jsonl"))
        produced = next(merged.glob("coallocation-*.jsonl"))
        assert produced.read_bytes() == reference.read_bytes()

        assert main(["aggregate", str(merged)]) == 0
        report = capsys.readouterr().out
        assert "campaign aggregate: 1 sweep(s)" in report
        assert "coallocation" in report and "complete" in report

    def test_merge_conflict_exits_nonzero(self, tmp_path, capsys):
        import json

        ref = tmp_path / "ref"
        assert main(["--experiment", "coallocation", "--cluster", "small",
                     "--demands", "4,8", "--out", str(ref)]) == 0
        capsys.readouterr()
        original = next(ref.glob("coallocation-*.jsonl"))
        tampered = tmp_path / "tampered.jsonl"
        lines = original.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["value"]["total_hosts"] = 9999
        lines[1] = json.dumps(rec, sort_keys=True)
        tampered.write_text("\n".join(lines) + "\n")
        code = main(["merge", str(original), str(tampered),
                     "--out", str(tmp_path / "merged")])
        err = capsys.readouterr().err
        assert code == 1
        assert "merge conflict" in err and "divergent" in err

    def test_merge_incomplete_without_flag_writes_partial(self, tmp_path,
                                                          capsys):
        out = tmp_path / "shard1"
        assert main(self.shard_argv(1, 2, str(out))) == 0
        partial = next(out.glob("coallocation-*.partial"))
        merged = tmp_path / "merged"
        assert main(["merge", str(partial), "--out", str(merged)]) == 0
        assert list(merged.glob("*.jsonl.partial"))
        assert main(["merge", str(partial), "--out", str(merged),
                     "--require-complete"]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_merge_destination_conflict_exits_nonzero(self, tmp_path,
                                                      capsys):
        import json

        out = tmp_path / "shard1"
        assert main(self.shard_argv(1, 2, str(out))) == 0
        capsys.readouterr()
        partial = next(out.glob("coallocation-*.partial"))
        dest = tmp_path / "dest"
        assert main(["merge", str(partial), "--out", str(dest)]) == 0
        capsys.readouterr()
        lurking = next(dest.glob("*.partial"))
        lines = lurking.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["value"]["total_hosts"] = 777
        lines[1] = json.dumps(rec, sort_keys=True)
        lurking.write_text("\n".join(lines) + "\n")
        assert main(["merge", str(partial), "--out", str(dest)]) == 1
        assert "merge conflict" in capsys.readouterr().err

    def test_aggregate_missing_dir_errors(self, tmp_path, capsys):
        assert main(["aggregate", str(tmp_path / "no-such-dir")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_aggregate_conflicted_store_exits_nonzero(self, tmp_path,
                                                      capsys):
        import json

        ref = tmp_path / "ref"
        assert main(["--experiment", "coallocation", "--cluster", "small",
                     "--demands", "4,8", "--out", str(ref)]) == 0
        capsys.readouterr()
        canonical = next(ref.glob("coallocation-*.jsonl"))
        divergent = canonical.with_suffix(".jsonl.partial")
        lines = canonical.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["value"]["total_hosts"] = 123456
        divergent.write_text(
            "\n".join([lines[0], json.dumps(rec, sort_keys=True)]) + "\n")
        assert main(["aggregate", str(ref)]) == 1
        captured = capsys.readouterr()
        assert "CONFLICTED" in captured.out
        assert "conflicting store files" in captured.err


class TestJobsFlag:
    def test_negative_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "coallocation", "--jobs", "-1"])

    def test_zero_auto_sizes(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.coallocation as coallocation_mod

        seen = {}
        real = coallocation_mod.coallocation_sweep

        def spy(*args, **kwargs):
            seen["jobs"] = kwargs.get("jobs")
            return real(*args, **kwargs)

        monkeypatch.setattr(coallocation_mod, "coallocation_sweep", spy)
        monkeypatch.setattr("os.cpu_count", lambda: 3)
        assert main(["--experiment", "coallocation", "--cluster", "small",
                     "--demands", "4", "--jobs", "0"]) == 0
        assert seen["jobs"] == 3


class TestChurnload:
    SMOKE = ["--experiment", "churnload", "--cluster", "small",
             "--users", "2", "--horizon", "120", "--failures", "0.006"]

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["--experiment", "churnload", "--users", "3",
             "--horizon", "90", "--failures", "0,0.01"])
        assert args.experiment == "churnload"
        assert (args.users, args.horizon, args.failures) == (3, 90.0, "0,0.01")

    def test_bad_failures_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "churnload", "--failures", "0.1,x"])
        with pytest.raises(SystemExit):
            main(["--experiment", "churnload", "--failures", "-0.1"])

    def test_bad_horizon_and_users_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "churnload", "--horizon", "0"])
        with pytest.raises(SystemExit):
            main(["--experiment", "churnload", "--users", "0"])

    def test_smoke_report_byte_identical_across_jobs(self, capsys):
        assert main(self.SMOKE + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.SMOKE + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "== churn under load:" in serial
        for strategy in ("spread", "concentrate", "bandwidth_spread"):
            assert strategy in serial

    def test_smoke_stores_and_caches(self, tmp_path, capsys):
        argv = self.SMOKE + ["--jobs", "2", "--out", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        stored = list(tmp_path.glob("churnload-*.jsonl"))
        assert len(stored) == 1 and stored[0].stat().st_size > 0
        assert main(argv) == 0  # cache replay renders identical text
        assert capsys.readouterr().out == first


class TestApplatency:
    SMOKE = ["--experiment", "applatency", "--demands", "32",
             "--ratios", "1,1000"]

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["--experiment", "applatency", "--ratios", "1,121.6"])
        assert args.experiment == "applatency"
        assert args.ratios == "1,121.6"

    def test_bad_ratios_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "applatency", "--ratios", "1,x"])
        with pytest.raises(SystemExit):
            main(["--experiment", "applatency", "--ratios", "0"])
        with pytest.raises(SystemExit):
            main(["--experiment", "applatency", "--ratios", ""])
        with pytest.raises(SystemExit):
            main(["--experiment", "applatency", "--demands", ""])
        with pytest.raises(SystemExit):
            main(["--experiment", "applatency", "--demands", "0"])

    def test_smoke_report_byte_identical_across_jobs(self, capsys):
        assert main(self.SMOKE + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.SMOKE + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "applatency: IS.B wall-clock" in serial
        assert "fig4 crossover calibration" in serial
        for strategy in ("spread", "concentrate", "bandwidth_spread",
                         "topo_block"):
            assert strategy in serial

    def test_shard_slice_writes_partial_only(self, tmp_path, capsys):
        argv = self.SMOKE + ["--shard", "1/2", "--jobs", "2",
                             "--out", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[shard 1/2]" in out
        partials = sorted(p.name for p in tmp_path.glob("*.partial"))
        assert len(partials) == 2  # one checkpoint per application panel
        assert not list(tmp_path.glob("applatency-*.jsonl"))


class TestProfile:
    def test_parser_flag(self):
        args = build_parser().parse_args(
            ["--experiment", "coallocation", "--profile"])
        assert args.profile is True
        assert build_parser().parse_args(["-n", "4"]).profile is False

    def test_profile_requires_experiment(self):
        with pytest.raises(SystemExit):
            main(["-n", "4", "--profile"])
        with pytest.raises(SystemExit):
            main(["--experiment", "table1", "--profile"])

    def test_profile_dumps_pstats_next_to_store(self, tmp_path, capsys):
        argv = ["--experiment", "coallocation", "--cluster", "small",
                "--demands", "4", "--profile", "--out", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        dump = tmp_path / "profile-coallocation.pstats"
        assert dump.exists() and dump.stat().st_size > 0
        assert str(dump) in out
        assert "cumulative" in out  # top-20 pstats table printed

        import pstats
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0


class TestSubcommands:
    """The verb CLI and the legacy --experiment shim pin to each other."""

    ARGS = ["coallocation", "--cluster", "small", "--demands", "4,8"]

    def test_run_verb_matches_legacy_output_and_store(self, tmp_path,
                                                      capsys):
        legacy_out = tmp_path / "legacy"
        run_out = tmp_path / "run"
        assert main(["--experiment"] + self.ARGS
                    + ["--out", str(legacy_out)]) == 0
        legacy = capsys.readouterr()
        assert "deprecated" in legacy.err
        assert "p2pmpirun run coallocation" in legacy.err
        assert main(["run"] + self.ARGS + ["--out", str(run_out)]) == 0
        sub = capsys.readouterr()
        assert sub.err == ""

        def report_lines(text):
            # the [engine] line carries wall-clock timing; the report
            # tables below it are the deterministic part
            return [line for line in text.splitlines()
                    if not line.startswith("[engine]")]

        assert report_lines(legacy.out) == report_lines(sub.out)
        reference = next(legacy_out.glob("coallocation-*.jsonl"))
        produced = next(run_out.glob("coallocation-*.jsonl"))
        assert produced.name == reference.name
        assert produced.read_bytes() == reference.read_bytes()

    def test_legacy_and_run_share_one_store(self, tmp_path, capsys):
        out = str(tmp_path)
        assert main(["run"] + self.ARGS + ["--out", out]) == 0
        capsys.readouterr()
        assert main(["--experiment"] + self.ARGS + ["--out", out]) == 0
        assert "(0 executed, 4 cached)" in capsys.readouterr().out

    def test_experiment_equals_form_rewritten(self, capsys):
        assert main(["--experiment=table1"]) == 0
        captured = capsys.readouterr()
        assert "grelon" in captured.out
        assert "run table1" in captured.err

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "quake"])

    def test_run_parser_validations(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "coallocation", "--shard", "1/2"])  # no --out
        with pytest.raises(SystemExit):
            main(["run", "table1", "--shard", "1/2", "--out",
                  str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["run", "coallocation", "--jobs", "-1"])
        with pytest.raises(SystemExit):
            main(["run", "table1", "--profile"])


class TestMergeCleanup:
    """Promoting merges remove the shard checkpoints that fed them."""

    def shard_argv(self, k, n, out):
        return ["run", "coallocation", "--cluster", "small",
                "--demands", "4,8", "--shard", f"{k}/{n}", "--out", out]

    def _partials(self, tmp_path, capsys):
        for k in (1, 2):
            assert main(self.shard_argv(
                k, 2, str(tmp_path / f"shard{k}"))) == 0
        capsys.readouterr()
        return sorted(tmp_path.glob("shard*/coallocation-*.partial"))

    def test_promoting_merge_removes_inputs(self, tmp_path, capsys):
        partials = self._partials(tmp_path, capsys)
        assert len(partials) == 2
        merged = tmp_path / "merged"
        assert main(["merge"] + [str(p) for p in partials]
                    + ["--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "removed 2 superseded .partial input(s)" in out
        assert not any(p.exists() for p in partials)
        assert list(merged.glob("coallocation-*.jsonl"))

    def test_keep_partial_retains_inputs(self, tmp_path, capsys):
        partials = self._partials(tmp_path, capsys)
        merged = tmp_path / "merged"
        assert main(["merge"] + [str(p) for p in partials]
                    + ["--out", str(merged), "--keep-partial"]) == 0
        assert "removed" not in capsys.readouterr().out
        assert all(p.exists() for p in partials)

    def test_incomplete_merge_keeps_inputs(self, tmp_path, capsys):
        partials = self._partials(tmp_path, capsys)
        merged = tmp_path / "merged"
        assert main(["merge", str(partials[0]),
                     "--out", str(merged)]) == 0
        assert partials[0].exists()
        assert list(merged.glob("*.jsonl.partial"))


class TestOrchestrateParser:
    def test_requires_out(self):
        with pytest.raises(SystemExit):
            main(["orchestrate", "coallocation"])

    def test_rejects_unshardable(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["orchestrate", "table1", "--out", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["orchestrate", "ablations", "--out", str(tmp_path)])

    def test_rejects_bad_knobs(self, tmp_path):
        out = ["--out", str(tmp_path)]
        with pytest.raises(SystemExit):
            main(["orchestrate", "coallocation", "--workers", "0"] + out)
        with pytest.raises(SystemExit):
            main(["orchestrate", "coallocation", "--shards", "0"] + out)
        with pytest.raises(SystemExit):
            main(["orchestrate", "coallocation", "--retries", "-1"] + out)
        with pytest.raises(SystemExit):
            main(["orchestrate", "coallocation", "--inject-kill", "0"]
                 + out)

    def test_defaults(self):
        from repro.cli import build_orchestrate_parser

        args = build_orchestrate_parser().parse_args(
            ["commaware", "--out", "/tmp/x"])
        assert args.workers == 2 and args.shards is None
        assert args.retries == 2 and args.stall_timeout == 300.0
        assert not args.keep_partial and args.inject_kill is None
