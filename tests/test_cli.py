"""CLI surface."""

import pytest

from repro.cli import build_parser, main, make_app


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["-n", "8"])
        assert args.n == 8 and args.r == 1 and args.alloc == "spread"
        assert args.prog == "hostname"

    def test_paper_invocation(self):
        args = build_parser().parse_args(
            ["-n", "100", "-r", "2", "-a", "concentrate", "ep"])
        assert (args.n, args.r, args.alloc, args.prog) == (
            100, 2, "concentrate", "ep")

    def test_experiment_flag(self):
        args = build_parser().parse_args(["--experiment", "table1"])
        assert args.experiment == "table1"


class TestMakeApp:
    @pytest.mark.parametrize("name", ["hostname", "ep", "is", "cg"])
    def test_known_programs(self, name):
        assert make_app(name) is not None

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            make_app("quake")


class TestMain:
    def test_missing_n_errors(self, capsys):
        assert main([]) == 2
        assert "-n is mandatory" in capsys.readouterr().err

    def test_single_run(self, capsys):
        code = main(["-n", "8", "-a", "concentrate", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "success" in out and "nancy" in out

    def test_table1(self, capsys):
        assert main(["--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "grelon" in out and "sol" in out and "17.167" in out
