"""Workload generation and stream replay."""

import numpy as np
import pytest

from repro.workloads import (
    JobMix,
    WorkloadSpec,
    generate_stream,
    replay_stream,
)


def spec(submitters, rate=0.5, horizon=60.0, mixes=None, max_jobs=100):
    return WorkloadSpec(
        arrival_rate_per_s=rate,
        horizon_s=horizon,
        mixes=tuple(mixes or (JobMix(n=4), JobMix(n=6, strategy="concentrate",
                                                  weight=0.5))),
        submitters=tuple(submitters),
        max_jobs=max_jobs,
    )


class TestGenerator:
    def test_deterministic(self):
        s = spec(["h1", "h2"])
        a = generate_stream(s, np.random.default_rng(5))
        b = generate_stream(s, np.random.default_rng(5))
        assert a == b

    def test_arrival_times_sorted_within_horizon(self):
        jobs = generate_stream(spec(["h1"]), np.random.default_rng(1))
        times = [j.at_s for j in jobs]
        assert times == sorted(times)
        assert all(0 < t < 60.0 for t in times)

    def test_rate_controls_count(self):
        low = generate_stream(spec(["h1"], rate=0.1),
                              np.random.default_rng(2))
        high = generate_stream(spec(["h1"], rate=2.0),
                               np.random.default_rng(2))
        assert len(high) > len(low)

    def test_max_jobs_cap(self):
        jobs = generate_stream(spec(["h1"], rate=10.0, max_jobs=7),
                               np.random.default_rng(3))
        assert len(jobs) == 7

    def test_mix_shapes_respected(self):
        jobs = generate_stream(spec(["h1"], rate=2.0),
                               np.random.default_rng(4))
        shapes = {(j.request.n, j.request.strategy) for j in jobs}
        assert shapes <= {(4, "spread"), (6, "concentrate")}
        assert len(shapes) == 2  # both mixes appear at this rate

    @pytest.mark.parametrize("kwargs", [
        dict(rate=0.0), dict(horizon=0.0),
        dict(mixes=()), dict(submitters=[]),
    ])
    def test_invalid_spec(self, kwargs):
        base = dict(rate=1.0, horizon=10.0, mixes=(JobMix(n=2),),
                    submitters=("h1",))
        base.update(kwargs)
        with pytest.raises(ValueError):
            WorkloadSpec(
                arrival_rate_per_s=base["rate"],
                horizon_s=base["horizon"],
                mixes=tuple(base["mixes"]),
                submitters=tuple(base["submitters"]),
            )

    def test_invalid_mix(self):
        with pytest.raises(ValueError):
            JobMix(n=0)
        with pytest.raises(ValueError):
            JobMix(n=1, weight=0)


class TestReplay:
    def test_light_load_all_accepted(self, small_cluster):
        jobs = generate_stream(
            spec(["a1-1.alpha", "b1-1.beta"], rate=0.05, horizon=100.0,
                 mixes=(JobMix(n=3),)),
            np.random.default_rng(6))
        assert jobs, "stream must not be empty for this test"
        stats = replay_stream(small_cluster, jobs)
        assert stats.n_jobs == len(jobs)
        assert stats.acceptance_rate == 1.0
        assert stats.mean_reservation_s() > 0

    def test_same_submitter_serialised(self, small_cluster):
        """Burst from one submitter must not trip the concurrency guard."""
        jobs = generate_stream(
            spec(["a1-1.alpha"], rate=5.0, horizon=2.0, mixes=(JobMix(n=2),),
                 max_jobs=6),
            np.random.default_rng(7))
        stats = replay_stream(small_cluster, jobs)
        assert stats.acceptance_rate == 1.0

    def test_overload_reports_failures_not_crashes(self, small_cluster):
        """Long overlapping demands beyond capacity must surface as
        retries or infeasible verdicts — never crashes."""
        from repro.apps import HostnameApp

        slow = HostnameApp(startup_s=30.0)  # jobs overlap for 30 s
        jobs = generate_stream(
            spec(["a1-1.alpha", "b1-1.beta", "g1-1.gamma"], rate=3.0,
                 horizon=3.0,
                 mixes=(JobMix(n=14, strategy="concentrate", app=slow),),
                 max_jobs=6),
            np.random.default_rng(12))
        submitters = {j.submitter for j in jobs}
        assert len(submitters) >= 2, "need cross-submitter overlap"
        stats = replay_stream(small_cluster, jobs)
        hist = stats.status_histogram()
        assert sum(hist.values()) == stats.n_jobs
        assert stats.accepted >= 1
        # A 28-core grid cannot run overlapping 14-process jobs:
        assert stats.total_retries() > 0 or hist.get("infeasible", 0) > 0

    def test_cores_served_accounting(self, small_cluster):
        jobs = generate_stream(
            spec(["a1-1.alpha"], rate=0.1, horizon=30.0, mixes=(JobMix(n=4),)),
            np.random.default_rng(9))
        stats = replay_stream(small_cluster, jobs)
        served = stats.cores_served_by_site()
        assert sum(served.values()) == 4 * stats.accepted

    def test_summary_text(self, small_cluster):
        jobs = generate_stream(
            spec(["a1-1.alpha"], rate=0.1, horizon=20.0, mixes=(JobMix(n=2),)),
            np.random.default_rng(10))
        stats = replay_stream(small_cluster, jobs)
        assert "acceptance" in stats.summary()

    def test_empty_stream(self, small_cluster):
        stats = replay_stream(small_cluster, [])
        assert stats.n_jobs == 0 and stats.acceptance_rate == 1.0
