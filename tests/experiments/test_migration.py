"""Migration campaign: round semantics, determinism, report pinning.

The acceptance claim lives here: on at least one swept cell under
sustained churn, diffusive rebalancing beats static placement on
availability — and the whole sweep is byte-identical across serial,
pooled and shard/merge execution.
"""

import pytest

from repro.cluster import ClusterSpec, build_small_cluster
from repro.experiments.engine import ResultStore, SweepRunner
from repro.experiments.migration import (MIGRATION_MODES, migration_report,
                                         migration_spec, run_migration_round)
from repro.experiments.multiuser import default_submitters


def tiny_spec(seed=0, failures=(0.0, 0.01), modes=MIGRATION_MODES,
              name="migration-test"):
    """4-cell sweep on the small testbed with the CLI's default round
    shape (horizon 120 is enough for several jobs and several kills)."""
    return migration_spec(
        arrivals=(0.04,), failures=failures, modes=modes,
        users=2, n=4, horizon_s=120.0, downtime_s=60.0,
        work_s=40.0, quantum_s=5.0, j_limit=2,
        rebalance_period_s=10.0, neighbor_k=3, threshold=0.6,
        max_moves=2, seed=seed,
        cluster_spec=ClusterSpec(kind="small", boot=False), name=name)


class TestRound:
    def test_quiet_round_all_jobs_complete(self):
        cluster = build_small_cluster(seed=2, boot=False)
        submitters = default_submitters(cluster, 2)
        ledger, balancer = run_migration_round(
            cluster, submitters, horizon_s=120.0, arrival_rate_s=0.05,
            n=4, mode="static", failure_rate_s=0.0)
        assert balancer is None
        assert ledger.jobs_submitted > 0
        assert ledger.availability() == 1.0
        assert ledger.summary()["migrations"] == 0

    def test_j_limit_widens_owner_prefs(self):
        cluster = build_small_cluster(seed=2, boot=False)
        submitters = default_submitters(cluster, 2)
        run_migration_round(cluster, submitters, horizon_s=30.0,
                            arrival_rate_s=0.05, n=4, mode="static",
                            failure_rate_s=0.0, j_limit=2)
        assert all(mpd.prefs.j_limit == 2
                   for mpd in cluster.mpds.values())
        assert all(mpd.gatekeeper.prefs.j_limit == 2
                   for mpd in cluster.mpds.values())

    def test_diffusive_round_attaches_balancer(self):
        cluster = build_small_cluster(seed=2, boot=False)
        submitters = default_submitters(cluster, 2)
        ledger, balancer = run_migration_round(
            cluster, submitters, horizon_s=120.0, arrival_rate_s=0.05,
            n=4, mode="diffusive", failure_rate_s=0.004)
        assert balancer is not None
        assert ledger.crashes, "churn never fired"
        # Controller loop stopped with the round.
        assert balancer._proc is None or not balancer._proc.is_alive

    def test_unknown_mode_rejected(self):
        cluster = build_small_cluster(seed=2, boot=False)
        with pytest.raises(ValueError):
            run_migration_round(cluster, ["a1-1.alpha"], mode="teleport")


class TestSpec:
    def test_axes_and_meta(self):
        spec = tiny_spec()
        axes = dict(spec.axes)
        assert set(axes) == {"arrival", "fail", "mode"}
        assert axes["mode"] == MIGRATION_MODES
        assert spec.cell_count() == 4
        for key in ("users", "n", "horizon_s", "work_s", "quantum_s",
                    "j_limit", "rebalance_period_s", "neighbor_k",
                    "threshold", "max_moves"):
            assert key in spec.meta

    def test_registered_with_cli(self):
        from repro.experiments import registry

        assert "migration" in registry.MANIFEST
        record = registry.get("migration")
        assert record.cli_axes == ("cluster", "churn", "migration")


class TestDeterminism:
    def test_serial_and_parallel_stores_byte_identical(self, tmp_path):
        spec = tiny_spec()
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")
        res_s = SweepRunner(spec, jobs=1, store=serial).run()
        res_p = SweepRunner(spec, jobs=2, store=parallel).run()
        assert res_s.executed == res_p.executed == spec.cell_count()
        assert (serial.path_for(spec).read_bytes()
                == parallel.path_for(spec).read_bytes())

    def test_shard_halves_merge_to_serial_bytes(self, tmp_path):
        from repro.experiments.aggregate import merge_into

        spec = tiny_spec()
        whole = ResultStore(tmp_path / "whole")
        SweepRunner(spec, store=whole).run()
        merged_root = tmp_path / "merged"
        for index in (1, 2):
            shard_store = ResultStore(tmp_path / f"shard{index}")
            SweepRunner(spec, store=shard_store,
                        shard=(index, 2)).run()
            _, written = merge_into(
                merged_root, [shard_store.partial_path_for(spec)])
        assert written.read_bytes() == whole.path_for(spec).read_bytes()

    def test_report_identical_across_cache_replay(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        first = migration_report(SweepRunner(spec, store=store).run())
        replay = SweepRunner(spec, store=store).run()
        assert replay.executed == 0 and replay.cached == spec.cell_count()
        assert migration_report(replay) == first


class TestReportStory:
    @pytest.fixture(scope="class")
    def sweep(self):
        return SweepRunner(tiny_spec()).run()

    def test_diffusive_wins_availability_under_churn(self, sweep):
        """Acceptance pin: under sustained churn, diffusive placement
        completes jobs static placement loses (r=1, so a dead copy
        host is fatal unless the balancer resurrects it)."""
        static = sweep.value(fail=0.01, mode="static")
        diffusive = sweep.value(fail=0.01, mode="diffusive")
        assert diffusive["availability"] > static["availability"]
        assert diffusive["rejoins"] + diffusive["moves"] > 0

    def test_quiet_cells_are_equivalent(self, sweep):
        """Without churn both modes deliver everything."""
        for mode in MIGRATION_MODES:
            assert sweep.value(fail=0.0, mode=mode)["availability"] == 1.0

    def test_static_mode_never_moves(self, sweep):
        for fail in (0.0, 0.01):
            value = sweep.value(fail=fail, mode="static")
            assert value["moves"] == 0
            assert value["migrations"] == 0

    def test_report_greppable_lines(self, sweep):
        report = migration_report(sweep)
        assert "== rank migration under churn:" in report
        assert "avail@fail" in report
        assert "completion_s@fail" in report
        assert "moves@fail" in report
        assert "-- diffusive vs static --" in report
        assert "win availability" in report
